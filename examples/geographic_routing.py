#!/usr/bin/env python
"""Geographic-routing scenario: localization attacks vs packet delivery.

Geographic routing forwards packets toward the neighbour whose *believed*
location is closest to the destination, so corrupted locations break
delivery.  This example measures greedy-forwarding delivery rate in three
configurations:

1. honest locations (every node localises correctly);
2. attacked locations (a fraction of nodes hold D-anomaly locations);
3. attacked locations, but nodes whose LAD check fails fall back to their
   beaconless location estimate instead of the spoofed one.

Run with::

    python examples/geographic_routing.py
"""

from __future__ import annotations

import numpy as np

import repro.localization
from repro import (
    DisplacementAttack,
    LADDetector,
    NeighborIndex,
    NetworkGenerator,
    UnitDiskRadio,
    collect_training_data,
    paper_deployment_model,
)
from repro.applications.routing import evaluate_routing

ATTACKED_FRACTION = 0.35
DEGREE_OF_DAMAGE = 250.0
NUM_FLOWS = 40


def main() -> None:
    rng = np.random.default_rng(29)

    model = paper_deployment_model()
    generator = NetworkGenerator(model, group_size=40, radio=UnitDiskRadio(100.0))
    network = generator.generate(rng)
    knowledge = generator.knowledge()
    index = NeighborIndex(network)
    print(f"network: {network.num_nodes} sensors, radio range 100 m")

    # Train the detector and the fallback localizer.
    training = collect_training_data(
        generator, num_samples=150, samples_per_network=75, rng=31
    )
    detector = LADDetector.from_training_data(
        knowledge,
        training,
        metric="diff",
        tau=0.99,
    )
    localizer = repro.localization.create("beaconless")

    # Honest believed locations = true positions (idealised localization).
    honest_positions = network.positions.copy()

    # Attack a fraction of the nodes' believed locations.
    attacked_positions = honest_positions.copy()
    attacked_nodes = rng.choice(
        network.num_nodes,
        size=int(ATTACKED_FRACTION * network.num_nodes),
        replace=False,
    )
    attacked_positions[attacked_nodes] = DisplacementAttack(
        DEGREE_OF_DAMAGE
    ).spoof_locations(network.positions[attacked_nodes], rng, region=network.region)

    # LAD-protected locations: every node checks its believed location
    # against its observation; on an alarm it re-localises with the
    # beaconless scheme (which only uses its own honest observation).
    observations = index.observations_of_nodes(np.arange(network.num_nodes))
    alarms = detector.detect_batch(attacked_positions, observations)
    protected_positions = attacked_positions.copy()
    flagged = np.flatnonzero(alarms)
    if flagged.size:
        protected_positions[flagged] = localizer.localize_observations(
            knowledge, observations[flagged]
        )
    print(
        f"attacked sensors: {attacked_nodes.size}; LAD alarms: {flagged.size} "
        f"({alarms[attacked_nodes].mean():.0%} of attacked, "
        f"{np.delete(alarms, attacked_nodes).mean():.1%} of honest)"
    )

    # Random source -> destination flows shared by all three configurations.
    sources = rng.choice(network.num_nodes, size=NUM_FLOWS, replace=False)
    destinations = rng.uniform(100.0, 900.0, size=(NUM_FLOWS, 2))
    flows = list(zip(sources.tolist(), destinations))

    print()
    print(f"{'configuration':<28} {'delivery':>9} {'mean hops':>10} {'path (m)':>10}")
    for label, believed in (
        ("honest locations", honest_positions),
        ("attacked locations", attacked_positions),
        ("attacked + LAD fallback", protected_positions),
    ):
        stats = evaluate_routing(network, believed, flows)
        print(
            f"{label:<28} {stats.delivery_rate:>9.0%} "
            f"{stats.mean_hops:>10.1f} {stats.mean_path_length:>10.1f}"
        )


if __name__ == "__main__":
    main()
