#!/usr/bin/env python
"""Beacon-based baselines under compromised anchors, and LAD as a second line.

The paper argues (Section 6.3) that existing beacon-based localization
schemes are easy to mislead — a single compromised anchor declaring a false
position can introduce an arbitrarily large error — and that LAD remains a
valuable second line of defence regardless of which localization scheme is
in use.  This example demonstrates both claims:

1. localise a set of sensors with the Centroid and the MMSE-multilateration
   schemes, first with honest anchors and then with a lying anchor;
2. run the LAD consistency check (deployment knowledge + group observation)
   on the resulting estimates and show that the grossly wrong ones are
   flagged.

Run with::

    python examples/beacon_attack_resilience.py
"""

from __future__ import annotations

import numpy as np

import repro.localization
from repro import (
    BeaconInfrastructure,
    LADDetector,
    NeighborIndex,
    NetworkGenerator,
    UnitDiskRadio,
    collect_training_data,
    localization_errors,
    paper_deployment_model,
)
from repro.attacks.localization_attacks import BeaconLieAttack
from repro.localization.base import LocalizationContext

NUM_SENSORS = 40
BEACON_LIE_DISPLACEMENT = 500.0


def _localize_all(scheme, beacons, network, nodes, rng):
    """Run a beacon-based scheme for every node in *nodes*."""
    estimates = np.empty((nodes.size, 2))
    for row, node in enumerate(nodes):
        true_position = network.positions[node]
        audible = beacons.audible_from(true_position)
        distances = beacons.measured_distances(
            true_position,
            rng=rng,
            noise_std=3.0,
        )[audible]
        context = LocalizationContext(
            beacons=beacons,
            audible_beacons=audible,
            measured_distances=distances,
            true_position=true_position,
        )
        estimates[row] = scheme.localize(context, rng=rng).position
    return estimates


def main() -> None:
    rng = np.random.default_rng(47)

    model = paper_deployment_model()
    generator = NetworkGenerator(model, group_size=60, radio=UnitDiskRadio(100.0))
    network = generator.generate(rng)
    knowledge = generator.knowledge()
    index = NeighborIndex(network)

    # Beacon infrastructure: a 4 x 4 grid of anchors with long-range radios.
    xs = np.linspace(125.0, 875.0, 4)
    gx, gy = np.meshgrid(xs, xs)
    beacons = BeaconInfrastructure(
        positions=np.column_stack([gx.ravel(), gy.ravel()]), transmit_range=400.0
    )

    # Train LAD (scheme-independent: it only needs deployment knowledge).
    training = collect_training_data(
        generator, num_samples=200, samples_per_network=100, rng=53
    )
    detector = LADDetector.from_training_data(
        knowledge,
        training,
        metric="diff",
        tau=0.99,
    )

    nodes = rng.choice(network.num_nodes, size=NUM_SENSORS, replace=False)
    observations = index.observations_of_nodes(nodes)
    truths = network.positions[nodes]

    # A single compromised anchor lies about its position.
    lying = BeaconLieAttack(displacement=BEACON_LIE_DISPLACEMENT).apply(
        beacons, compromised=[5], rng=rng, region=network.region
    )

    schemes = {
        # Baselines are created through the localizer registry by name.
        "centroid": repro.localization.create("centroid"),
        "mmse-multilateration": repro.localization.create("mmse"),
    }

    print(f"{NUM_SENSORS} sensors, 16 anchors, one lying anchor displaced by "
          f"{BEACON_LIE_DISPLACEMENT:.0f} m\n")
    print(f"{'scheme':<22}{'anchors':<12}{'mean err (m)':>13}{'max err (m)':>13}"
          f"{'LAD alarms':>12}")
    for name, scheme in schemes.items():
        for label, infra in (("honest", beacons), ("1 lying", lying)):
            estimates = _localize_all(scheme, infra, network, nodes, rng)
            errors = localization_errors(estimates, truths)
            alarms = detector.detect_batch(estimates, observations)
            print(
                f"{name:<22}{label:<12}{errors.mean():>13.1f}{errors.max():>13.1f}"
                f"{alarms.mean():>12.0%}"
            )

    print(
        "\nExpected shape: the lying anchor inflates the localization error of both\n"
        "beacon-based schemes, and the LAD alarm rate rises with that error —\n"
        "the detector catches misled estimates without knowing anything about\n"
        "the localization scheme or the anchors."
    )


if __name__ == "__main__":
    main()
