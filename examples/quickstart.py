#!/usr/bin/env python
"""Quickstart: deploy a sensor network, localize, attack, and detect with LAD.

This walks through the whole pipeline of the paper on a single network:

1. deploy a paper-style network (10 x 10 deployment grid, Gaussian landing
   distribution, unit-disk radio);
2. let a sensor localize itself with the beaconless MLE scheme;
3. train the LAD detection threshold on benign simulated deployments;
4. simulate a localization attack (a D-anomaly) plus a greedy Dec-Bounded
   adversary tainting the victim's observation;
5. run the LAD detector on both the benign and the attacked case.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro.localization
import repro.metrics
from repro import (
    AttackBudget,
    DisplacementAttack,
    GreedyMetricMinimizer,
    LADDetector,
    NeighborIndex,
    NetworkGenerator,
    UnitDiskRadio,
    collect_training_data,
    localization_error,
    paper_deployment_model,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------ deploy
    # A smaller group size than the paper's m=300 keeps the example snappy.
    model = paper_deployment_model(sigma=50.0)
    generator = NetworkGenerator(model, group_size=100, radio=UnitDiskRadio(100.0))
    network = generator.generate(rng)
    knowledge = generator.knowledge()
    index = NeighborIndex(network)
    print(f"deployed {network.num_nodes} sensors in {network.n_groups} groups")

    # ---------------------------------------------------------------- localize
    victim = int(rng.integers(network.num_nodes))
    observation = index.observation_of_node(victim)
    # Components are plugged in by registered name; see
    # repro.localization.available() / repro.metrics.available().
    localizer = repro.localization.create("beaconless")
    estimate = localizer.localize_observations(knowledge, observation)[0]
    true_position = network.positions[victim]
    print(
        f"victim {victim}: true position {np.round(true_position, 1)}, "
        f"beaconless estimate {np.round(estimate, 1)} "
        f"(error {localization_error(estimate, true_position):.1f} m)"
    )

    # ------------------------------------------------------------------- train
    training = collect_training_data(
        generator, num_samples=200, samples_per_network=100, rng=11
    )
    detector = LADDetector.from_training_data(
        knowledge, training, metric=repro.metrics.create("diff"), tau=0.99
    )
    print(
        f"trained Diff-metric threshold: {detector.threshold:.1f} "
        f"(tau=99%, benign localization error "
        f"{training.localization_errors().mean():.1f} m on average)"
    )

    # ------------------------------------------------------- benign detection
    benign_report = detector.detect(estimate, observation)
    print(
        f"benign check: score {benign_report.score:.1f} vs threshold "
        f"{benign_report.threshold:.1f} -> anomalous={benign_report.anomalous}"
    )

    # ------------------------------------------------------------------ attack
    # The adversary forces a D=120 m localization error and controls 10% of
    # the victim's neighbours, which it uses to minimise the Diff metric.
    degree_of_damage = 120.0
    spoofed = DisplacementAttack(degree_of_damage).spoof_location(
        true_position, rng, region=network.region
    )
    expected_at_spoofed = knowledge.expected_observation(spoofed[None, :])[0]
    budget = AttackBudget.from_fraction(int(observation.sum()), 0.10)
    adversary = GreedyMetricMinimizer(metric="diff", attack_class="dec_bounded")
    tainted = adversary.taint(
        observation, expected_at_spoofed, budget, group_size=knowledge.group_size
    )
    print(
        f"attack: spoofed location {np.round(spoofed, 1)} "
        f"(D={degree_of_damage:.0f} m), "
        f"{budget.compromised_nodes} compromised neighbours"
    )

    # ---------------------------------------------------------- LAD detection
    attack_report = detector.detect(spoofed, tainted)
    print(
        f"attacked check: score {attack_report.score:.1f} vs threshold "
        f"{attack_report.threshold:.1f} -> anomalous={attack_report.anomalous}"
    )
    if attack_report.anomalous:
        print("LAD correctly flagged the spoofed location.")
    else:
        print("the attack evaded detection this time (small-D attacks sometimes do).")


if __name__ == "__main__":
    main()
