#!/usr/bin/env python
"""Compare the three LAD metrics and the two attack classes (mini Figures 4-6).

Runs a scaled-down version of the paper's ROC experiments and prints, for a
grid of degrees of damage, the detection rate each metric achieves at a 1 %
false-positive budget against the greedy Dec-Bounded adversary, plus the
Dec-Bounded vs Dec-Only comparison for the Diff metric.

Run with::

    python examples/metric_comparison.py
"""

from __future__ import annotations

from repro.experiments.config import SimulationConfig
from repro.experiments.harness import LadSimulation

DEGREES = (40.0, 80.0, 120.0, 160.0)
FRACTION = 0.10
FALSE_POSITIVE = 0.01


def main() -> None:
    config = SimulationConfig(
        group_size=150,
        num_training_samples=250,
        training_samples_per_network=125,
        num_victims=250,
        victims_per_network=125,
        seed=5,
    )
    sim = LadSimulation(config)
    print(
        f"m={config.group_size}, x={FRACTION:.0%}, FP budget {FALSE_POSITIVE:.0%}, "
        f"benign localization error {sim.benign_localization_error():.1f} m"
    )

    print()
    print("Detection rate at 1% FP, greedy Dec-Bounded adversary (cf. Figure 4):")
    header = f"{'D (m)':>8}" + "".join(
        f"{m:>14}" for m in ("diff", "add_all", "probability")
    )
    print(header)
    for degree in DEGREES:
        row = [f"{degree:>8.0f}"]
        for metric in ("diff", "add_all", "probability"):
            rate, _ = sim.detection_rate(
                metric,
                "dec_bounded",
                degree_of_damage=degree,
                compromised_fraction=FRACTION,
                false_positive_rate=FALSE_POSITIVE,
            )
            row.append(f"{rate:>14.3f}")
        print("".join(row))

    print()
    print("Diff metric, Dec-Bounded vs Dec-Only adversary (cf. Figures 5-6):")
    print(f"{'D (m)':>8}{'dec_bounded':>14}{'dec_only':>14}")
    for degree in DEGREES:
        row = [f"{degree:>8.0f}"]
        for attack in ("dec_bounded", "dec_only"):
            rate, _ = sim.detection_rate(
                "diff",
                attack,
                degree_of_damage=degree,
                compromised_fraction=FRACTION,
                false_positive_rate=FALSE_POSITIVE,
            )
            row.append(f"{rate:>14.3f}")
        print("".join(row))

    print()
    print(
        "Expected shape: the Diff metric dominates, detection rises with D, and\n"
        "the Dec-Bounded adversary is the harder one to catch at small D."
    )


if __name__ == "__main__":
    main()
