#!/usr/bin/env python
"""Compare the three LAD metrics and the two attack classes (mini Figures 4-6).

This is the declarative-API version of the comparison: the whole experiment
is one :class:`~repro.experiments.scenario.ScenarioSpec` (every metric x
both attack classes x a grid of degrees of damage) compiled onto a
:class:`~repro.experiments.session.LadSession` sweep.  The spec could
equally live in a TOML file and run via ``lad-repro sweep`` — here it is
built inline so the table formatting can live next to it.

Run with::

    python examples/metric_comparison.py
"""

from __future__ import annotations

from repro import LadSession, ScenarioSpec, SimulationConfig
from repro.experiments.sweep import SweepPoint

SPEC = ScenarioSpec(
    name="metric_comparison",
    description="All metrics x both attack classes on a damage grid",
    metrics=("diff", "add_all", "probability"),
    attacks=("dec_bounded", "dec_only"),
    degrees=(40.0, 80.0, 120.0, 160.0),
    fractions=(0.10,),
    false_positive_rate=0.01,
    config=SimulationConfig(
        group_size=150,
        num_training_samples=250,
        training_samples_per_network=125,
        num_victims=250,
        victims_per_network=125,
        seed=5,
    ),
)


def main() -> None:
    session: LadSession = SPEC.session()
    fraction = SPEC.fractions[0]
    print(
        f"m={SPEC.config.group_size}, x={fraction:.0%}, "
        f"FP budget {SPEC.false_positive_rate:.0%}, "
        f"benign localization error {session.benign_localization_error():.1f} m"
    )

    # One sweep covers the whole spec grid; the session's caches make the
    # per-point cost just the greedy adversary plus metric scoring.
    rates = session.sweep().detection_rates(
        SPEC.points(), false_positive_rate=SPEC.false_positive_rate
    )

    def rate(metric: str, attack: str, degree: float) -> float:
        return rates[SweepPoint(metric, attack, degree, fraction)][0]

    print()
    print("Detection rate at 1% FP, greedy Dec-Bounded adversary (cf. Figure 4):")
    print(f"{'D (m)':>8}" + "".join(f"{m:>14}" for m in SPEC.metrics))
    for degree in SPEC.degrees:
        row = [f"{degree:>8.0f}"]
        row += [f"{rate(m, 'dec_bounded', degree):>14.3f}" for m in SPEC.metrics]
        print("".join(row))

    print()
    print("Diff metric, Dec-Bounded vs Dec-Only adversary (cf. Figures 5-6):")
    print(f"{'D (m)':>8}{'dec_bounded':>14}{'dec_only':>14}")
    for degree in SPEC.degrees:
        print(
            f"{degree:>8.0f}"
            f"{rate('diff', 'dec_bounded', degree):>14.3f}"
            f"{rate('diff', 'dec_only', degree):>14.3f}"
        )

    print()
    print(
        "Expected shape: the Diff metric dominates, detection rises with D, and\n"
        "the Dec-Bounded adversary is the harder one to catch at small D."
    )


if __name__ == "__main__":
    main()
