#!/usr/bin/env python
"""Battlefield-surveillance scenario: how LAD protects event reporting.

The paper motivates LAD with battlefield surveillance: sensors report events
tagged with their own derived location, and an adversary who displaces those
locations sends the response to the wrong place.  This example quantifies
that damage and shows the benefit of suppressing reports from sensors whose
location fails the LAD consistency check:

* deploy a network and corrupt a fraction of the sensors' derived locations
  with D-anomaly attacks (the adversary also taints those sensors'
  observations with the greedy Dec-Bounded procedure);
* scatter hazardous events over the field and collect the position-tagged
  reports;
* compare the report position error with no defence vs with LAD filtering.

Run with::

    python examples/battlefield_surveillance.py
"""

from __future__ import annotations

import numpy as np

import repro.attacks
import repro.metrics
from repro import (
    AttackBudget,
    DisplacementAttack,
    GreedyMetricMinimizer,
    LADDetector,
    NeighborIndex,
    NetworkGenerator,
    UnitDiskRadio,
    collect_training_data,
    paper_deployment_model,
)
from repro.applications.surveillance import SurveillanceField

ATTACKED_FRACTION = 0.30  # fraction of sensors whose localization is attacked
DEGREE_OF_DAMAGE = 200.0  # metres
COMPROMISED_NEIGHBORS = 0.10
NUM_EVENTS = 60


def main() -> None:
    rng = np.random.default_rng(13)

    model = paper_deployment_model()
    generator = NetworkGenerator(model, group_size=60, radio=UnitDiskRadio(100.0))
    network = generator.generate(rng)
    knowledge = generator.knowledge()
    index = NeighborIndex(network)

    training = collect_training_data(
        generator, num_samples=200, samples_per_network=100, rng=21
    )
    detector = LADDetector.from_training_data(
        knowledge, training, metric=repro.metrics.create("diff"), tau=0.99
    )
    print(
        f"network: {network.num_nodes} sensors; "
        f"Diff threshold {detector.threshold:.1f}"
    )

    # --- adversary corrupts a subset of the sensors' derived locations -----
    believed = network.positions.copy()
    observations = index.observations_of_nodes(np.arange(network.num_nodes))
    num_attacked = int(ATTACKED_FRACTION * network.num_nodes)
    attacked_nodes = rng.choice(network.num_nodes, size=num_attacked, replace=False)

    displacement = DisplacementAttack(DEGREE_OF_DAMAGE)
    believed[attacked_nodes] = displacement.spoof_locations(
        network.positions[attacked_nodes], rng, region=network.region
    )
    adversary = GreedyMetricMinimizer(
        repro.metrics.create("diff"), repro.attacks.create("dec_bounded")
    )
    expected = knowledge.expected_observation(believed[attacked_nodes])
    budgets = [
        AttackBudget.from_fraction(int(observations[node].sum()), COMPROMISED_NEIGHBORS)
        for node in attacked_nodes
    ]
    observations[attacked_nodes] = adversary.taint_batch(
        observations[attacked_nodes], expected, budgets, group_size=knowledge.group_size
    )
    print(
        f"adversary displaced {num_attacked} sensors by {DEGREE_OF_DAMAGE:.0f} m and "
        f"tainted their observations"
    )

    # --- every sensor runs LAD on its own derived location ------------------
    alarms = detector.detect_batch(believed, observations)
    flagged_attacked = alarms[attacked_nodes].mean()
    flagged_honest = np.delete(alarms, attacked_nodes).mean()
    print(
        f"LAD flagged {flagged_attacked:.0%} of the attacked sensors and "
        f"{flagged_honest:.1%} of the honest sensors (false alarms)"
    )

    # --- event reporting with and without LAD filtering ---------------------
    events = rng.uniform(100.0, 900.0, size=(NUM_EVENTS, 2))

    unprotected = SurveillanceField(network, believed, sensing_range=60.0)
    stats_unprotected = unprotected.report_events(events)

    protected = SurveillanceField(network, believed, sensing_range=60.0)
    protected.suppress_sensors(np.flatnonzero(alarms))
    stats_protected = protected.report_events(events)

    print()
    print(f"{'':<26} {'no defence':>12} {'with LAD':>12}")
    print(
        f"{'events detected':<26} "
        f"{stats_unprotected.detection_fraction:>12.0%} "
        f"{stats_protected.detection_fraction:>12.0%}"
    )
    print(
        f"{'mean report error (m)':<26} "
        f"{stats_unprotected.mean_report_error:>12.1f} "
        f"{stats_protected.mean_report_error:>12.1f}"
    )
    print(
        f"{'worst report error (m)':<26} "
        f"{stats_unprotected.max_report_error:>12.1f} "
        f"{stats_protected.max_report_error:>12.1f}"
    )
    print(
        f"{'reports suppressed':<26} "
        f"{stats_unprotected.suppressed_fraction:>12.0%} "
        f"{stats_protected.suppressed_fraction:>12.0%}"
    )


if __name__ == "__main__":
    main()
