#!/usr/bin/env python
"""The legacy ``LadSimulation`` / ``get_metric`` API, kept on purpose.

Everything here still works — ``LadSimulation`` is now a thin shim over
:class:`repro.LadSession` and ``get_metric`` forwards to the metric
registry — but both emit a :class:`DeprecationWarning` and will be removed
after one release.  This example exists to exercise that deprecation path
(CI runs it) and to show that the shim's numbers are identical to the new
API's, so migrating is purely mechanical:

====================================  ====================================
legacy                                replacement
====================================  ====================================
``LadSimulation(config)``             ``LadSession(config)``
``get_metric("diff")``                ``repro.metrics.create("diff")``
bespoke sweep drivers                 ``ScenarioSpec`` + ``lad-repro sweep``
====================================  ====================================

Run with::

    python examples/legacy_simulation.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import LadSession, SimulationConfig, get_metric
from repro.experiments.harness import LadSimulation

CONFIG = SimulationConfig(
    group_size=60,
    num_training_samples=60,
    training_samples_per_network=30,
    num_victims=60,
    victims_per_network=30,
    seed=17,
)


def main() -> None:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        legacy = LadSimulation(CONFIG)
        metric = get_metric("diff")
    print("deprecation warnings emitted by the legacy API:")
    for warning in caught:
        print(f"  - {warning.message}")

    modern = LadSession(CONFIG)
    legacy_rate, _ = legacy.detection_rate(
        metric, "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
    )
    modern_rate, _ = modern.detection_rate(
        "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
    )
    print(f"legacy LadSimulation detection rate @1% FP: {legacy_rate:.3f}")
    print(f"modern LadSession   detection rate @1% FP: {modern_rate:.3f}")
    np.testing.assert_array_equal(
        legacy.benign_scores("diff"), modern.benign_scores("diff")
    )
    assert legacy_rate == modern_rate
    print("shim and session agree bit for bit — migrate at your leisure.")


if __name__ == "__main__":
    main()
