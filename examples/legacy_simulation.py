#!/usr/bin/env python
"""Migration landing spot for the removed legacy API.

``LadSimulation`` and ``get_metric`` shipped as one-release deprecation
shims after the scenario API landed; that release has passed and both are
now gone.  This example (still run by CI) is the migration reference: it
exercises the replacements side by side and asserts the equivalences the
shims used to guarantee, so anyone landing here from an old script sees
exactly what to write instead:

====================================  ====================================
removed                               replacement
====================================  ====================================
``LadSimulation(config)``             ``LadSession(config)``
``get_metric("diff")``                ``repro.metrics.create("diff")``
bespoke sweep drivers                 ``ScenarioSpec`` + ``lad-repro sweep``
====================================  ====================================

Run with::

    python examples/legacy_simulation.py
"""

from __future__ import annotations

import numpy as np

import repro.metrics
from repro import LadSession, ScenarioSpec, SimulationConfig

CONFIG = SimulationConfig(
    group_size=60,
    num_training_samples=60,
    training_samples_per_network=30,
    num_victims=60,
    victims_per_network=30,
    seed=17,
)


def main() -> None:
    # ``get_metric("diff")`` -> the metric registry.  Instances and names
    # are interchangeable everywhere a metric is accepted.
    metric = repro.metrics.create("diff")
    session = LadSession(CONFIG)
    by_instance, _ = session.detection_rate(
        metric, "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
    )
    by_name, _ = session.detection_rate(
        "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
    )
    assert by_instance == by_name

    # Bespoke sweep drivers -> a declarative spec over the same session.
    spec = ScenarioSpec(
        name="migration",
        metrics=("diff",),
        degrees=(160.0,),
        fractions=(0.1,),
        config=CONFIG,
    )
    rates = spec.session().sweep().detection_rates(spec.points())
    (spec_rate, _), = rates.values()
    np.testing.assert_allclose(spec_rate, by_name)

    print(f"session detection rate @1% FP: {by_name:.3f}")
    print(f"spec    detection rate @1% FP: {spec_rate:.3f}")
    print("session and spec agree bit for bit — the legacy shims are gone.")


if __name__ == "__main__":
    main()
