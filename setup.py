"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode in offline environments
whose tooling lacks PEP 660 support (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
