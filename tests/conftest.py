"""Shared fixtures for the test suite.

The fixtures deliberately use *small* deployments (a 5 x 5 grid, a few tens
of sensors per group) so the whole suite stays fast while still exercising
every code path of the full-size paper configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.knowledge import DeploymentKnowledge
from repro.deployment.models import GridDeploymentModel
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import Region


#: Radio range used by the small test deployment (metres).
TEST_RADIO_RANGE = 80.0

#: Landing-distribution standard deviation of the small test deployment.
TEST_SIGMA = 40.0

#: Sensors per group in the small test deployment.
TEST_GROUP_SIZE = 30


@pytest.fixture(scope="session")
def rng():
    """A session-wide deterministic random generator."""
    return np.random.default_rng(123456789)


@pytest.fixture(scope="session")
def small_region():
    """A 500 m x 500 m deployment region."""
    return Region(0.0, 0.0, 500.0, 500.0)


@pytest.fixture(scope="session")
def small_model(small_region):
    """A 5 x 5 grid deployment model on the small region."""
    return GridDeploymentModel(
        region=small_region,
        rows=5,
        cols=5,
        distribution=GaussianResidentDistribution(TEST_SIGMA),
    )


@pytest.fixture(scope="session")
def small_generator(small_model):
    """Network generator for the small deployment (25 groups x 30 sensors)."""
    return NetworkGenerator(
        model=small_model,
        group_size=TEST_GROUP_SIZE,
        radio=UnitDiskRadio(TEST_RADIO_RANGE),
    )


@pytest.fixture(scope="session")
def small_knowledge(small_generator) -> DeploymentKnowledge:
    """Deployment knowledge for the small deployment (coarse g(z) table)."""
    return small_generator.knowledge(omega=400)


@pytest.fixture(scope="session")
def small_network(small_generator):
    """One deployed realisation of the small network (seeded)."""
    return small_generator.generate(rng=2024)


@pytest.fixture(scope="session")
def small_index(small_network) -> NeighborIndex:
    """Neighbour index over the small network."""
    return NeighborIndex(small_network)
