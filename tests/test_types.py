"""Tests for :mod:`repro.types`."""

import numpy as np
import pytest

from repro.types import PAPER_REGION, Region, as_point, as_points


class TestAsPoint:
    def test_accepts_tuple(self):
        p = as_point((1.0, 2.0))
        assert p.shape == (2,)
        assert p.dtype == np.float64
        np.testing.assert_allclose(p, [1.0, 2.0])

    def test_accepts_list_and_array(self):
        np.testing.assert_allclose(as_point([3, 4]), [3.0, 4.0])
        np.testing.assert_allclose(as_point(np.array([5.0, 6.0])), [5.0, 6.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            as_point([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            as_point([[1.0, 2.0]])


class TestAsPoints:
    def test_promotes_single_point(self):
        pts = as_points((1.0, 2.0))
        assert pts.shape == (1, 2)

    def test_accepts_batches(self):
        pts = as_points([[1, 2], [3, 4], [5, 6]])
        assert pts.shape == (3, 2)

    def test_rejects_bad_last_dim(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((4, 3)))


class TestRegion:
    def test_basic_properties(self):
        region = Region(0.0, 0.0, 100.0, 50.0)
        assert region.width == 100.0
        assert region.height == 50.0
        assert region.area == 5000.0
        np.testing.assert_allclose(region.center, [50.0, 25.0])
        assert region.diagonal == pytest.approx(np.hypot(100.0, 50.0))

    def test_rejects_degenerate_region(self):
        with pytest.raises(ValueError):
            Region(0.0, 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            Region(5.0, 0.0, 1.0, 10.0)

    def test_contains_masks_and_boundary(self):
        region = Region(0.0, 0.0, 10.0, 10.0)
        pts = [[5.0, 5.0], [0.0, 0.0], [10.0, 10.0], [-0.1, 5.0], [5.0, 10.1]]
        mask = region.contains(pts)
        assert mask.tolist() == [True, True, True, False, False]

    def test_contains_point_scalar(self):
        region = Region(0.0, 0.0, 10.0, 10.0)
        assert region.contains_point((1.0, 1.0))
        assert not region.contains_point((11.0, 1.0))

    def test_clip(self):
        region = Region(0.0, 0.0, 10.0, 10.0)
        clipped = region.clip([[-5.0, 5.0], [5.0, 20.0], [3.0, 3.0]])
        np.testing.assert_allclose(clipped, [[0.0, 5.0], [5.0, 10.0], [3.0, 3.0]])

    def test_sample_uniform_inside(self):
        region = Region(10.0, 20.0, 30.0, 60.0)
        rng = np.random.default_rng(0)
        pts = region.sample_uniform(rng, 500)
        assert pts.shape == (500, 2)
        assert region.contains(pts).all()

    def test_paper_region_is_one_km_square(self):
        assert PAPER_REGION.width == 1000.0
        assert PAPER_REGION.height == 1000.0
        assert PAPER_REGION.area == 1_000_000.0
