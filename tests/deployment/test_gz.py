"""Tests for :mod:`repro.deployment.gz` (Theorem 1 and the lookup table)."""

import numpy as np
import pytest

from repro.deployment.gz import (
    GzTable,
    gz_exact,
    gz_monte_carlo,
    gz_polar_integration,
    gz_quadrature,
)

R = 100.0
SIGMA = 50.0


class TestTheorem1Consistency:
    """Validate Eq. (1) against two independent computations.

    The paper omits the proof of Theorem 1; these cross-checks substitute
    for it: the closed-form quadrature of Eq. (1), the direct polar
    integration of the Gaussian over the neighbourhood disk, and a
    Monte-Carlo estimate must all agree.
    """

    zs = np.array([0.0, 5.0, 25.0, 50.0, 99.0, 100.0, 101.0, 150.0, 200.0, 400.0])

    def test_exact_vs_polar_integration(self):
        exact = gz_exact(self.zs, R, SIGMA)
        polar = gz_polar_integration(self.zs, R, SIGMA)
        np.testing.assert_allclose(exact, polar, atol=5e-7)

    def test_exact_vs_fixed_quadrature(self):
        exact = gz_exact(self.zs, R, SIGMA)
        quad = gz_quadrature(self.zs, R, SIGMA)
        np.testing.assert_allclose(exact, quad, atol=1e-6)

    def test_exact_vs_monte_carlo(self):
        exact = gz_exact(self.zs[:6], R, SIGMA)
        mc = gz_monte_carlo(self.zs[:6], R, SIGMA, samples=400_000, rng=0)
        np.testing.assert_allclose(exact, mc, atol=5e-3)

    def test_other_parameters(self):
        for radio_range, sigma in [(40.0, 50.0), (150.0, 20.0), (60.0, 120.0)]:
            zs = np.linspace(0.0, radio_range + 4 * sigma, 15)
            exact = gz_exact(zs, radio_range, sigma)
            polar = gz_polar_integration(zs, radio_range, sigma)
            np.testing.assert_allclose(exact, polar, atol=1e-6)


class TestGzProperties:
    def test_value_at_zero_is_rayleigh_cdf(self):
        expected = 1.0 - np.exp(-(R**2) / (2 * SIGMA**2))
        assert gz_exact(0.0, R, SIGMA) == pytest.approx(expected, abs=1e-9)
        assert gz_quadrature(0.0, R, SIGMA) == pytest.approx(expected, abs=1e-9)

    def test_monotonically_decreasing_in_z(self):
        zs = np.linspace(0.0, 500.0, 200)
        vals = gz_quadrature(zs, R, SIGMA)
        assert np.all(np.diff(vals) <= 1e-9)

    def test_bounded_in_unit_interval(self):
        zs = np.linspace(0.0, 1000.0, 300)
        vals = gz_quadrature(zs, R, SIGMA)
        assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    def test_vanishes_far_away(self):
        assert gz_exact(R + 8 * SIGMA, R, SIGMA) < 1e-6

    def test_larger_range_gives_larger_probability(self):
        z = 80.0
        assert gz_exact(z, 150.0, SIGMA) > gz_exact(z, 80.0, SIGMA)

    def test_scalar_and_array_forms(self):
        scalar = gz_quadrature(42.0, R, SIGMA)
        array = gz_quadrature(np.array([42.0]), R, SIGMA)
        assert isinstance(scalar, float)
        assert scalar == pytest.approx(array[0])

    def test_rejects_negative_z(self):
        with pytest.raises(ValueError):
            gz_exact(-1.0, R, SIGMA)
        with pytest.raises(ValueError):
            gz_quadrature(np.array([-1.0]), R, SIGMA)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            gz_exact(1.0, 0.0, SIGMA)
        with pytest.raises(ValueError):
            gz_quadrature(1.0, R, -1.0)


class TestGzTable:
    def test_accuracy_against_exact(self):
        table = GzTable(R, SIGMA, omega=800, z_max=600.0)
        assert table.max_abs_error(samples=400) < 5e-4

    def test_accuracy_improves_with_omega(self):
        coarse = GzTable(R, SIGMA, omega=20, z_max=600.0)
        fine = GzTable(R, SIGMA, omega=500, z_max=600.0)
        assert fine.max_abs_error(200) < coarse.max_abs_error(200)

    def test_clamps_beyond_z_max(self):
        table = GzTable(R, SIGMA, omega=100, z_max=400.0)
        assert float(table(1e6)) == pytest.approx(float(table(400.0)), abs=1e-12)

    def test_negative_distance_uses_absolute_value(self):
        table = GzTable(R, SIGMA, omega=100)
        assert float(table(-50.0)) == pytest.approx(float(table(50.0)))

    def test_array_queries(self):
        table = GzTable(R, SIGMA, omega=200)
        zs = np.array([[0.0, 100.0], [200.0, 300.0]])
        out = table(zs)
        assert out.shape == (2, 2)
        assert np.all((out >= 0) & (out <= 1))

    def test_properties(self):
        table = GzTable(R, SIGMA, omega=123, z_max=456.0)
        assert table.radio_range == R
        assert table.sigma == SIGMA
        assert table.omega == 123
        assert table.z_max == 456.0
        assert table.table.num_intervals == 123

    def test_default_z_max_covers_support(self):
        table = GzTable(R, SIGMA)
        assert table.z_max >= R + 6 * SIGMA

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GzTable(0.0, SIGMA)
        with pytest.raises(ValueError):
            GzTable(R, SIGMA, omega=0)
        with pytest.raises(ValueError):
            GzTable(R, SIGMA, z_max=-5.0)
