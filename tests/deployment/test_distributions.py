"""Tests for :mod:`repro.deployment.distributions`."""

import numpy as np
import pytest

from repro.deployment.distributions import (
    GaussianResidentDistribution,
    UniformDiskResidentDistribution,
)


class TestGaussianResidentDistribution:
    def test_sample_statistics(self):
        dist = GaussianResidentDistribution(sigma=50.0)
        rng = np.random.default_rng(0)
        offsets = dist.sample_offsets(rng, 20_000)
        assert offsets.shape == (20_000, 2)
        np.testing.assert_allclose(offsets.mean(axis=0), [0.0, 0.0], atol=1.5)
        np.testing.assert_allclose(offsets.std(axis=0), [50.0, 50.0], rtol=0.05)

    def test_pdf_matches_paper_formula(self):
        sigma = 50.0
        dist = GaussianResidentDistribution(sigma)
        pts = np.array([[0.0, 0.0], [30.0, 40.0], [100.0, 0.0]])
        expected = (1.0 / (2 * np.pi * sigma**2)) * np.exp(
            -(pts[:, 0] ** 2 + pts[:, 1] ** 2) / (2 * sigma**2)
        )
        np.testing.assert_allclose(dist.pdf(pts), expected, rtol=1e-12)

    def test_pdf_integrates_to_one(self):
        dist = GaussianResidentDistribution(sigma=20.0)
        # Riemann sum over a wide square.
        step = 2.0
        xs = np.arange(-150, 150, step)
        gx, gy = np.meshgrid(xs, xs)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        total = dist.pdf(pts).sum() * step * step
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_radial_cdf_is_rayleigh(self):
        sigma = 50.0
        dist = GaussianResidentDistribution(sigma)
        rs = np.array([0.0, 25.0, 50.0, 100.0, 250.0])
        expected = 1.0 - np.exp(-(rs**2) / (2 * sigma**2))
        np.testing.assert_allclose(dist.radial_cdf(rs), expected)
        assert dist.radial_cdf(-5.0) == 0.0

    def test_radial_cdf_matches_empirical(self):
        dist = GaussianResidentDistribution(sigma=30.0)
        rng = np.random.default_rng(1)
        offsets = dist.sample_offsets(rng, 50_000)
        r = np.hypot(offsets[:, 0], offsets[:, 1])
        for q in (20.0, 40.0, 70.0):
            assert float(np.mean(r <= q)) == pytest.approx(dist.radial_cdf(q), abs=0.01)

    def test_effective_radius(self):
        dist = GaussianResidentDistribution(sigma=50.0)
        r = dist.effective_radius(0.99)
        assert dist.radial_cdf(r) == pytest.approx(0.99, abs=1e-9)
        with pytest.raises(ValueError):
            dist.effective_radius(1.0)

    def test_sample_around_center(self):
        dist = GaussianResidentDistribution(sigma=10.0)
        rng = np.random.default_rng(2)
        pts = dist.sample(rng, (200.0, 300.0), 5000)
        np.testing.assert_allclose(pts.mean(axis=0), [200.0, 300.0], atol=1.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            GaussianResidentDistribution(0.0)


class TestUniformDiskResidentDistribution:
    def test_support(self):
        dist = UniformDiskResidentDistribution(radius=80.0)
        rng = np.random.default_rng(3)
        offsets = dist.sample_offsets(rng, 10_000)
        r = np.hypot(offsets[:, 0], offsets[:, 1])
        assert r.max() <= 80.0 + 1e-9

    def test_uniform_area_density(self):
        # Half the points should land within radius R/sqrt(2).
        dist = UniformDiskResidentDistribution(radius=100.0)
        rng = np.random.default_rng(4)
        offsets = dist.sample_offsets(rng, 50_000)
        r = np.hypot(offsets[:, 0], offsets[:, 1])
        assert float(np.mean(r <= 100.0 / np.sqrt(2))) == pytest.approx(0.5, abs=0.01)

    def test_pdf_inside_outside(self):
        dist = UniformDiskResidentDistribution(radius=10.0)
        vals = dist.pdf([[0.0, 0.0], [20.0, 0.0]])
        assert vals[0] == pytest.approx(1.0 / (np.pi * 100.0))
        assert vals[1] == 0.0

    def test_radial_cdf(self):
        dist = UniformDiskResidentDistribution(radius=10.0)
        assert dist.radial_cdf(5.0) == pytest.approx(0.25)
        assert dist.radial_cdf(10.0) == pytest.approx(1.0)
        assert dist.radial_cdf(20.0) == pytest.approx(1.0)

    def test_effective_radius(self):
        dist = UniformDiskResidentDistribution(radius=10.0)
        assert dist.effective_radius(0.81) == pytest.approx(9.0)

    def test_pdf_at_helper(self):
        dist = UniformDiskResidentDistribution(radius=10.0)
        vals = dist.pdf_at([[105.0, 100.0]], (100.0, 100.0))
        assert vals[0] > 0.0
