"""Tests for :mod:`repro.deployment.knowledge`."""

import numpy as np
import pytest

from repro.deployment.distributions import UniformDiskResidentDistribution
from repro.deployment.gz import GzTable
from repro.deployment.knowledge import DeploymentKnowledge
from repro.deployment.models import GridDeploymentModel, paper_deployment_model
from repro.types import Region
from tests.conftest import TEST_GROUP_SIZE


class TestConstruction:
    def test_builds_gz_table_from_gaussian_model(self):
        knowledge = DeploymentKnowledge(paper_deployment_model(), 10, 100.0, omega=100)
        assert knowledge.gz_table.radio_range == 100.0
        assert knowledge.n_groups == 100
        assert knowledge.group_size == 10
        assert knowledge.radio_range == 100.0

    def test_requires_table_for_non_gaussian_distribution(self):
        model = GridDeploymentModel(
            Region(0, 0, 200, 200),
            rows=2,
            cols=2,
            distribution=UniformDiskResidentDistribution(50.0),
        )
        with pytest.raises(ValueError):
            DeploymentKnowledge(model, 10, 60.0)
        # Supplying the table explicitly works.
        table = GzTable(60.0, 25.0, omega=50)
        knowledge = DeploymentKnowledge(model, 10, 60.0, gz_table=table)
        assert knowledge.gz_table is table

    def test_invalid_arguments(self):
        model = paper_deployment_model()
        with pytest.raises(ValueError):
            DeploymentKnowledge(model, 0, 100.0)
        with pytest.raises(ValueError):
            DeploymentKnowledge(model, 10, 0.0)


class TestComputations:
    def test_membership_probability_shapes(self, small_knowledge):
        probs = small_knowledge.membership_probabilities(
            [[100.0, 100.0], [250.0, 250.0]],
        )
        assert probs.shape == (2, small_knowledge.n_groups)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_nearest_group_has_highest_probability(self, small_knowledge):
        # Standing exactly on a deployment point, that group must dominate.
        point = small_knowledge.deployment_points[7]
        probs = small_knowledge.membership_probabilities(point[None, :])[0]
        assert int(np.argmax(probs)) == 7

    def test_expected_observation_is_m_times_probability(self, small_knowledge):
        locs = np.array([[120.0, 340.0]])
        probs = small_knowledge.membership_probabilities(locs)
        mu = small_knowledge.expected_observation(locs)
        np.testing.assert_allclose(mu, TEST_GROUP_SIZE * probs)

    def test_expected_observation_matches_empirical(
        self,
        small_generator,
        small_knowledge,
    ):
        """Equation (2): the expected observation matches the average honest
        observation over many deployments."""
        from repro.network.neighbors import NeighborIndex

        location = np.array([250.0, 250.0])
        rng = np.random.default_rng(11)
        totals = np.zeros(small_knowledge.n_groups)
        reps = 40
        for _ in range(reps):
            network = small_generator.generate(rng)
            index = NeighborIndex(network)
            totals += index.observation_of_point(location)
        empirical = totals / reps
        mu = small_knowledge.expected_observation(location[None, :])[0]
        # Aggregate comparison (per-group counts are small and noisy).
        assert mu.sum() == pytest.approx(empirical.sum(), rel=0.05)
        np.testing.assert_allclose(mu, empirical, atol=3.0)

    def test_expected_neighbor_count(self, small_knowledge):
        counts = small_knowledge.expected_neighbor_count([[250.0, 250.0]])
        assert counts.shape == (1,)
        assert counts[0] > 0

    def test_log_likelihood_peaks_near_true_location(self, small_knowledge):
        true_loc = np.array([260.0, 240.0])
        mu = small_knowledge.expected_observation(true_loc[None, :])[0]
        candidates = np.array(
            [[260.0, 240.0], [100.0, 100.0], [400.0, 420.0], [260.0, 300.0]]
        )
        lls = small_knowledge.log_likelihood(candidates, mu)
        assert int(np.argmax(lls)) == 0

    def test_log_likelihood_validates_shape(self, small_knowledge):
        with pytest.raises(ValueError):
            small_knowledge.log_likelihood([[0.0, 0.0]], np.zeros(3))


class TestActiveGroupPruning:
    def test_support_radius_is_cached_and_finite(self, small_knowledge):
        radius = small_knowledge.support_radius
        assert radius == small_knowledge.support_radius
        assert np.isfinite(radius)
        assert radius > small_knowledge.radio_range

    def test_dense_deployment_prune_falls_back(self, small_knowledge):
        """On the small deployment every group is within support of every
        candidate, so the pruned batch kernel must return the dense result
        bit for bit (it falls back rather than restrict)."""
        rng = np.random.default_rng(17)
        candidates = small_knowledge.region.sample_uniform(rng, 15)
        observations = rng.integers(0, 4, size=(6, small_knowledge.n_groups))
        dense = small_knowledge.log_likelihood_batch(candidates, observations)
        pruned = small_knowledge.log_likelihood_batch(
            candidates, observations, prune=True
        )
        np.testing.assert_array_equal(pruned, dense)

    def test_active_groups_single_point_promotion(self, small_knowledge):
        active = small_knowledge.active_groups([250.0, 250.0], radius=120.0)
        assert len(active) == 1
        assert active[0].dtype == np.int64
        distances = np.hypot(
            *(small_knowledge.deployment_points - [250.0, 250.0]).T
        )
        np.testing.assert_array_equal(active[0], np.flatnonzero(distances <= 120.0))

    def test_distances_to_groups_subset_matches_columns(self, small_knowledge):
        rng = np.random.default_rng(23)
        locations = small_knowledge.region.sample_uniform(rng, 10)
        groups = np.array([0, 3, 17, 24])
        full = small_knowledge.model.distances_to_groups(locations)
        subset = small_knowledge.model.distances_to_groups(locations, groups)
        np.testing.assert_array_equal(subset, full[:, groups])
