"""Tests for :mod:`repro.deployment.models`."""

import numpy as np
import pytest

from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.models import (
    GridDeploymentModel,
    HexDeploymentModel,
    RandomDeploymentModel,
    paper_deployment_model,
)
from repro.types import Region


class TestGridDeploymentModel:
    def test_paper_layout(self):
        model = paper_deployment_model()
        assert model.n_groups == 100
        pts = model.deployment_points
        # Figure 1: deployment points at 50, 150, ..., 950 in both axes.
        xs = np.unique(pts[:, 0])
        np.testing.assert_allclose(xs, np.arange(50.0, 1000.0, 100.0))
        ys = np.unique(pts[:, 1])
        np.testing.assert_allclose(ys, np.arange(50.0, 1000.0, 100.0))

    def test_custom_grid(self):
        model = GridDeploymentModel(Region(0, 0, 300, 200), rows=2, cols=3)
        assert model.rows == 2 and model.cols == 3
        assert model.n_groups == 6
        np.testing.assert_allclose(
            sorted(np.unique(model.deployment_points[:, 0])), [50.0, 150.0, 250.0]
        )
        np.testing.assert_allclose(
            sorted(np.unique(model.deployment_points[:, 1])), [50.0, 150.0]
        )

    def test_deployment_points_read_only(self):
        model = paper_deployment_model()
        with pytest.raises(ValueError):
            model.deployment_points[0, 0] = -1.0

    def test_sample_group_centered(self):
        model = paper_deployment_model(sigma=30.0)
        rng = np.random.default_rng(0)
        pts = model.sample_group(rng, 0, 4000)
        np.testing.assert_allclose(
            pts.mean(axis=0),
            model.deployment_points[0],
            atol=2.5,
        )

    def test_sample_group_invalid_index(self):
        model = paper_deployment_model()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample_group(rng, 100, 10)

    def test_sample_network_positions_shapes(self):
        model = paper_deployment_model()
        positions, group_ids = model.sample_network_positions(1, group_size=5)
        assert positions.shape == (500, 2)
        assert group_ids.shape == (500,)
        np.testing.assert_array_equal(np.bincount(group_ids), np.full(100, 5))

    def test_sample_network_positions_clip(self):
        model = paper_deployment_model(sigma=200.0)
        positions, _ = model.sample_network_positions(
            2,
            group_size=3,
            clip_to_region=True,
        )
        assert model.region.contains(positions).all()

    def test_distances_to_groups(self):
        model = GridDeploymentModel(Region(0, 0, 200, 200), rows=2, cols=2)
        d = model.distances_to_groups([[50.0, 50.0]])
        assert d.shape == (1, 4)
        assert d.min() == pytest.approx(0.0)

    def test_approximately_even_density(self):
        """With spacing 2*sigma, the overall node density is roughly even
        (Section 3.2's design goal)."""
        model = paper_deployment_model(sigma=50.0)
        positions, _ = model.sample_network_positions(3, group_size=200)
        # Count nodes in interior 200 m x 200 m super-cells (avoid edges).
        inner = positions[
            (positions[:, 0] > 200)
            & (positions[:, 0] < 800)
            & (positions[:, 1] > 200)
            & (positions[:, 1] < 800)
        ]
        counts, _, _ = np.histogram2d(
            inner[:, 0], inner[:, 1], bins=[3, 3], range=[[200, 800], [200, 800]]
        )
        assert counts.std() / counts.mean() < 0.1


class TestHexDeploymentModel:
    def test_points_inside_region(self):
        model = HexDeploymentModel(Region(0, 0, 500, 500), spacing=100.0)
        assert model.n_groups > 0
        assert model.region.contains(model.deployment_points).all()

    def test_alternate_rows_offset(self):
        model = HexDeploymentModel(Region(0, 0, 500, 500), spacing=100.0)
        ys = np.unique(np.round(model.deployment_points[:, 1], 6))
        assert len(ys) >= 2
        row0 = model.deployment_points[np.isclose(model.deployment_points[:, 1], ys[0])]
        row1 = model.deployment_points[np.isclose(model.deployment_points[:, 1], ys[1])]
        assert not np.isclose(row0[0, 0], row1[0, 0])

    def test_too_large_spacing_rejected(self):
        with pytest.raises(ValueError):
            HexDeploymentModel(Region(0, 0, 50, 50), spacing=1000.0)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            HexDeploymentModel(Region(0, 0, 500, 500), spacing=0.0)


class TestRandomDeploymentModel:
    def test_reproducible_with_seed(self):
        a = RandomDeploymentModel(n_groups=20, rng=5)
        b = RandomDeploymentModel(n_groups=20, rng=5)
        np.testing.assert_allclose(a.deployment_points, b.deployment_points)

    def test_points_inside_region(self):
        model = RandomDeploymentModel(Region(0, 0, 100, 100), n_groups=30, rng=1)
        assert model.n_groups == 30
        assert model.region.contains(model.deployment_points).all()

    def test_distribution_default_is_gaussian(self):
        model = RandomDeploymentModel(n_groups=5, rng=2)
        assert isinstance(model.distribution, GaussianResidentDistribution)
