"""Tests for :mod:`repro.applications.routing`."""

import numpy as np
import pytest

from repro.applications.routing import (
    GreedyGeographicRouter,
    RoutingStats,
    evaluate_routing,
)
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio


@pytest.fixture(scope="module")
def dense_grid_network():
    """A regular 11 x 11 lattice (spacing 40 m, range 60 m) where greedy
    forwarding with honest locations always succeeds."""
    xs = np.arange(0.0, 401.0, 40.0)
    gx, gy = np.meshgrid(xs, xs)
    positions = np.column_stack([gx.ravel(), gy.ravel()])
    return SensorNetwork(
        positions=positions,
        group_ids=np.zeros(positions.shape[0], dtype=int),
        n_groups=1,
        radio=UnitDiskRadio(60.0),
    )


class TestGreedyRouting:
    def test_delivery_with_honest_locations(self, dense_grid_network):
        router = GreedyGeographicRouter(dense_grid_network)
        result = router.route(0, (400.0, 400.0))
        assert result.delivered
        assert result.hop_count >= 5
        assert result.path_length > 0

    def test_route_to_own_neighborhood_is_immediate(self, dense_grid_network):
        router = GreedyGeographicRouter(dense_grid_network)
        result = router.route(0, (10.0, 10.0))
        assert result.delivered
        assert result.hop_count == 0

    def test_corrupted_locations_hurt_delivery(self, dense_grid_network):
        rng = np.random.default_rng(0)
        honest = evaluate_routing(
            dense_grid_network,
            dense_grid_network.positions,
            [(0, np.array([400.0, 400.0])), (10, np.array([0.0, 400.0]))],
        )
        # Corrupt half of the nodes' believed positions by large offsets.
        believed = dense_grid_network.positions.copy()
        corrupt = rng.choice(believed.shape[0], size=60, replace=False)
        believed[corrupt] += rng.normal(0, 300.0, size=(60, 2))
        corrupted = evaluate_routing(
            dense_grid_network,
            believed,
            [(0, np.array([400.0, 400.0])), (10, np.array([0.0, 400.0]))],
        )
        assert corrupted.delivery_rate <= honest.delivery_rate
        assert honest.delivery_rate == 1.0

    def test_stats_aggregation(self):
        stats = RoutingStats()
        assert stats.delivery_rate == 0.0
        from repro.applications.routing import RouteResult

        stats.record(RouteResult(delivered=True, hops=[0, 1, 2], path_length=80.0))
        stats.record(RouteResult(delivered=False, hops=[0], path_length=0.0))
        assert stats.attempted == 2
        assert stats.delivery_rate == 0.5
        assert stats.mean_hops == 2.0
        assert stats.mean_path_length == 80.0

    def test_believed_positions_shape_checked(self, dense_grid_network):
        with pytest.raises(ValueError):
            GreedyGeographicRouter(dense_grid_network, np.zeros((3, 2)))

    def test_max_hops_abort(self, dense_grid_network):
        router = GreedyGeographicRouter(dense_grid_network, max_hops=2)
        result = router.route(0, (400.0, 400.0))
        assert not result.delivered
        assert result.hop_count <= 2
