"""Tests for :mod:`repro.applications.coverage`."""

import numpy as np
import pytest

from repro.applications.coverage import coverage_fraction, coverage_map
from repro.types import Region


class TestCoverage:
    def test_single_sensor_coverage_fraction(self):
        region = Region(0, 0, 100, 100)
        frac = coverage_fraction(
            [[50.0, 50.0]], region, sensing_range=20.0, resolution=2.0
        )
        # One disk of radius 20 in a 100x100 region ~ pi*400/10000 = 12.6%.
        assert frac == pytest.approx(np.pi * 400 / 10_000, abs=0.02)

    def test_full_coverage(self):
        region = Region(0, 0, 100, 100)
        xs = np.arange(10, 100, 20.0)
        gx, gy = np.meshgrid(xs, xs)
        sensors = np.column_stack([gx.ravel(), gy.ravel()])
        frac = coverage_fraction(sensors, region, sensing_range=30.0, resolution=5.0)
        assert frac == 1.0

    def test_k_coverage_is_smaller(self):
        region = Region(0, 0, 100, 100)
        rng = np.random.default_rng(0)
        sensors = rng.uniform(0, 100, size=(40, 2))
        single = coverage_fraction(sensors, region, 25.0, resolution=5.0, min_sensors=1)
        double = coverage_fraction(sensors, region, 25.0, resolution=5.0, min_sensors=2)
        assert double <= single

    def test_coverage_map_shapes(self):
        region = Region(0, 0, 100, 50)
        xs, ys, covered = coverage_map([[10.0, 10.0]], region, 10.0, resolution=10.0)
        assert covered.shape == (len(ys), len(xs))
        assert covered.dtype == bool

    def test_misreported_positions_overestimate_coverage(self):
        """Believed locations spread out wider than reality inflate the
        operator's coverage estimate — the management consequence of
        localization attacks."""
        region = Region(0, 0, 200, 200)
        rng = np.random.default_rng(1)
        true_positions = rng.uniform(80, 120, size=(30, 2))  # clustered
        believed = rng.uniform(0, 200, size=(30, 2))  # spread out (spoofed)
        true_cov = coverage_fraction(true_positions, region, 30.0, resolution=5.0)
        believed_cov = coverage_fraction(believed, region, 30.0, resolution=5.0)
        assert believed_cov > true_cov

    def test_invalid_arguments(self):
        region = Region(0, 0, 10, 10)
        with pytest.raises(ValueError):
            coverage_fraction([[1.0, 1.0]], region, sensing_range=0.0)
        with pytest.raises(ValueError):
            coverage_fraction([[1.0, 1.0]], region, 5.0, min_sensors=0)
