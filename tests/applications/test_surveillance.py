"""Tests for :mod:`repro.applications.surveillance`."""

import numpy as np
import pytest

from repro.applications.surveillance import SurveillanceField
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio


@pytest.fixture()
def field_network():
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 400, size=(120, 2))
    return SensorNetwork(
        positions=positions,
        group_ids=np.zeros(120, dtype=int),
        n_groups=1,
        radio=UnitDiskRadio(80.0),
    )


class TestSurveillanceField:
    def test_detection_with_honest_locations(self, field_network):
        field = SurveillanceField(field_network, sensing_range=60.0)
        events = np.array([[100.0, 100.0], [300.0, 250.0]])
        stats = field.report_events(events)
        assert stats.total_events == 2
        assert stats.detected_events == 2
        assert stats.mean_report_error <= 60.0

    def test_detecting_sensors_radius(self, field_network):
        field = SurveillanceField(field_network, sensing_range=50.0)
        detectors = field.detecting_sensors((200.0, 200.0))
        dists = np.hypot(*(field_network.positions[detectors] - [200.0, 200.0]).T)
        assert np.all(dists <= 50.0)

    def test_corrupted_locations_increase_report_error(self, field_network):
        events = np.array([[200.0, 200.0]])
        honest = SurveillanceField(
            field_network,
            sensing_range=60.0,
        ).report_events(events)
        corrupted_positions = field_network.positions + np.array([250.0, 0.0])
        corrupted = SurveillanceField(
            field_network, corrupted_positions, sensing_range=60.0
        ).report_events(events)
        assert corrupted.mean_report_error > honest.mean_report_error + 100.0

    def test_suppression_removes_reports(self, field_network):
        field = SurveillanceField(field_network, sensing_range=60.0)
        events = np.array([[200.0, 200.0]])
        detectors = field.detecting_sensors(events[0])
        field.suppress_sensors(detectors[: len(detectors) // 2])
        stats = field.report_events(events)
        assert 0.0 < stats.suppressed_fraction < 1.0
        assert len(stats.usable_reports()) < len(stats.reports)

    def test_undetected_event(self, field_network):
        field = SurveillanceField(field_network, sensing_range=5.0)
        stats = field.report_events(np.array([[-500.0, -500.0]]))
        assert stats.detected_events == 0
        assert np.isnan(stats.mean_report_error)

    def test_believed_positions_shape_checked(self, field_network):
        with pytest.raises(ValueError):
            SurveillanceField(field_network, np.zeros((2, 2)))
