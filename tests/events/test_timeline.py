"""Tests for :mod:`repro.events.timeline` — the ``[timeline]`` table."""

import pytest

from repro.events import EventSpec, TimelineSpec
from repro.utils.rng import RandomState


class TestEventSpec:
    def test_defaults_fill_per_kind(self):
        event = EventSpec(kind="churn", at=(1.0,))
        assert event.action == "leave"
        assert event.fraction == 0.05
        assert event.label == "churn:leave"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventSpec(kind="earthquake", at=(1.0,))

    def test_action_must_match_kind(self):
        with pytest.raises(ValueError, match="no action"):
            EventSpec(kind="attack", action="jitter", at=(1.0,))

    def test_exactly_one_schedule_required(self):
        with pytest.raises(ValueError, match="exactly one schedule"):
            EventSpec(kind="attack")
        with pytest.raises(ValueError, match="exactly one schedule"):
            EventSpec(kind="attack", at=(1.0,), period=2.0)

    def test_at_times_sorted_and_validated(self):
        event = EventSpec(kind="attack", at=(3.0, 1.0, 2.0))
        assert event.at == (1.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            EventSpec(kind="attack", at=(-1.0,))

    def test_until_must_follow_start(self):
        with pytest.raises(ValueError, match="until"):
            EventSpec(kind="attack", period=1.0, start=5.0, until=2.0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            EventSpec(kind="attack", at=(1.0,), fraction=1.5)

    def test_round_trip(self):
        event = EventSpec(
            kind="mobility",
            action="waypoint",
            period=2.0,
            start=1.0,
            until=9.0,
            fraction=0.5,
            amplitude=10.0,
        )
        assert EventSpec.from_dict(event.as_dict()) == event

    def test_from_dict_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown event field"):
            EventSpec.from_dict({"kind": "attack", "att": [1.0]})

    def test_fire_times_at_filters_horizon(self):
        event = EventSpec(kind="attack", at=(1.0, 4.0, 9.0))
        assert event.fire_times(5.0) == [1.0, 4.0]

    def test_fire_times_periodic_window(self):
        event = EventSpec(kind="attack", period=2.0, start=1.0, until=6.0)
        assert event.fire_times(100.0) == [1.0, 3.0, 5.0]
        # the horizon clips a window that extends beyond it
        assert event.fire_times(4.0) == [1.0, 3.0]

    def test_fire_times_rate_needs_rng_and_is_deterministic(self):
        event = EventSpec(kind="churn", rate=0.8)
        with pytest.raises(ValueError, match="random stream"):
            event.fire_times(10.0)
        stream = lambda: RandomState(11).stream("timeline/0/schedule")  # noqa: E731
        first = event.fire_times(50.0, rng=stream())
        again = event.fire_times(50.0, rng=stream())
        assert first == again
        assert all(t <= 50.0 for t in first)
        assert first == sorted(first)


class TestTimelineSpec:
    def test_defaults_are_static(self):
        timeline = TimelineSpec()
        assert timeline.epochs == 1
        assert timeline.horizon == 0.0
        assert timeline.starts_attacked
        assert timeline.epoch_times() == [0.0]
        assert timeline.compile(seed=7) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            TimelineSpec(epochs=0)
        with pytest.raises(ValueError):
            TimelineSpec(epoch_duration=0.0)

    def test_starts_attacked_only_without_attack_on(self):
        on = EventSpec(kind="attack", action="on", at=(2.0,))
        off = EventSpec(kind="attack", action="off", at=(2.0,))
        assert TimelineSpec(epochs=3, events=(off,)).starts_attacked
        assert not TimelineSpec(epochs=3, events=(on,)).starts_attacked

    def test_compile_orders_and_numbers_firings(self):
        timeline = TimelineSpec(
            epochs=5,
            events=(
                EventSpec(kind="attack", action="on", at=(2.0,)),
                EventSpec(kind="mobility", period=1.0, start=1.0),
            ),
        )
        firings = timeline.compile(seed=3)
        mobility = [f for f in firings if f.source == 1]
        assert [f.time for f in mobility] == [1.0, 2.0, 3.0, 4.0]
        assert [f.ordinal for f in mobility] == [0, 1, 2, 3]
        assert mobility[2].stream_name() == "timeline/1/fire/2"

    def test_compile_poisson_depends_only_on_seed_and_source(self):
        timeline = TimelineSpec(epochs=20, events=(EventSpec(kind="churn", rate=0.5),))
        a = [(f.time, f.ordinal) for f in timeline.compile(seed=42)]
        b = [(f.time, f.ordinal) for f in timeline.compile(seed=42)]
        c = [(f.time, f.ordinal) for f in timeline.compile(seed=43)]
        assert a == b
        assert a != c

    def test_round_trip_and_event_coercion(self):
        timeline = TimelineSpec(
            epochs=6,
            epoch_duration=0.5,
            events=(
                {"kind": "attack", "action": "on", "at": [1.0]},
                EventSpec(kind="beacons", action="fail", period=1.0),
            ),
        )
        assert all(isinstance(e, EventSpec) for e in timeline.events)
        assert TimelineSpec.from_dict(timeline.as_dict()) == timeline

    def test_from_dict_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown timeline field"):
            TimelineSpec.from_dict({"epochs": 2, "epoch": 3})

    def test_fingerprint_changes_with_any_field(self):
        base = TimelineSpec(
            epochs=4, events=(EventSpec(kind="attack", action="on", at=(1.0,)),)
        )
        variants = (
            TimelineSpec(
                epochs=5,
                events=(EventSpec(kind="attack", action="on", at=(1.0,)),),
            ),
            TimelineSpec(
                epochs=4,
                epoch_duration=2.0,
                events=(EventSpec(kind="attack", action="on", at=(1.0,)),),
            ),
            TimelineSpec(
                epochs=4,
                events=(EventSpec(kind="attack", action="on", at=(2.0,)),),
            ),
            TimelineSpec(
                epochs=4,
                events=(
                    EventSpec(kind="attack", action="on", at=(1.0,), fraction=0.5),
                ),
            ),
        )
        for variant in variants:
            assert variant.fingerprint() != base.fingerprint()
        assert base.fingerprint() == TimelineSpec.from_dict(
            base.as_dict()
        ).fingerprint()
