"""Tests for :mod:`repro.events.engine` — the deterministic event heap."""

import pytest

from repro.events import EventEngine


class TestEventEngine:
    def test_pops_in_time_order(self):
        engine = EventEngine()
        engine.push(3.0, "c")
        engine.push(1.0, "a")
        engine.push(2.0, "b")
        assert engine.pop_due(10.0) == ["a", "b", "c"]
        assert len(engine) == 0

    def test_ties_pop_in_push_order(self):
        """Equal timestamps resolve by insertion order, never by payload."""
        engine = EventEngine()
        for item in ("first", "second", "third"):
            engine.push(5.0, item)
        assert engine.pop_due(5.0) == ["first", "second", "third"]

    def test_pop_due_leaves_future_events(self):
        engine = EventEngine()
        engine.push_all([(1.0, "now"), (2.0, "later")])
        assert engine.pop_due(1.5) == ["now"]
        assert len(engine) == 1
        assert engine.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventEngine().peek_time() is None

    def test_pop_due_empty(self):
        assert EventEngine().pop_due(100.0) == []

    def test_rejects_invalid_times(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            engine.push(-1.0, "x")
        with pytest.raises(ValueError):
            engine.push(float("nan"), "x")
        with pytest.raises(ValueError):
            engine.push(float("inf"), "x")

    def test_interleaved_push_pop_stays_ordered(self):
        engine = EventEngine()
        engine.push(4.0, "d")
        engine.push(1.0, "a")
        assert engine.pop_due(1.0) == ["a"]
        engine.push(2.0, "b")
        engine.push(3.0, "c")
        assert engine.pop_due(4.0) == ["b", "c", "d"]
