"""Tests for :mod:`repro.events.temporal` — the epoch-stepped engine.

The three contract guarantees under test:

1. **Degeneracy** — an empty timeline reproduces the static evaluation
   bit for bit (same attacked scores, same verdicts).
2. **Latency** — an attack switching on at epoch ``k`` yields a finite
   detection latency of at least ``k``.
3. **Determinism** — serial and process-fan-out runs are identical, and
   warm (cached) runs equal cold ones, including interrupt -> resume.
"""

import warnings

import numpy as np
import pytest

from repro.events import EventSpec, TemporalOutcome, TemporalWorld, TimelineSpec
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore
from repro.experiments.sweep import SweepPoint

ATTACK_EPOCH = 4

POINT = SweepPoint(
    metric="diff",
    attack="dec_bounded",
    degree_of_damage=120.0,
    compromised_fraction=0.1,
)


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=30,
        training_samples_per_network=15,
        num_victims=30,
        victims_per_network=15,
        gz_omega=300,
        seed=777,
    )


@pytest.fixture(scope="module")
def tiny_session(tiny_config):
    return LadSession(tiny_config)


@pytest.fixture(scope="module")
def attack_timeline():
    """Jitter every epoch; the attack switches on at ``ATTACK_EPOCH``."""
    return TimelineSpec(
        epochs=8,
        events=(
            EventSpec(
                kind="mobility",
                action="jitter",
                period=1.0,
                start=1.0,
                fraction=0.25,
                amplitude=5.0,
            ),
            EventSpec(kind="attack", action="on", at=(float(ATTACK_EPOCH),)),
        ),
    )


class TestTemporalWorld:
    def test_replays_the_sessions_victims(self, tiny_session):
        """Epoch 0 of an un-evented world == the static victim sample."""
        world = TemporalWorld.from_session(tiny_session)
        observations, positions = world.victim_state()
        victims = tiny_session.victims()
        np.testing.assert_array_equal(observations, victims.observations)
        np.testing.assert_array_equal(positions, victims.actual_locations)
        assert world.victim_alive().all()

    def test_copy_isolates_mutation(self, tiny_session):
        base = TemporalWorld.from_session(tiny_session)
        fork = base.copy()
        rng = np.random.default_rng(0)
        fork.apply_mobility("jitter", 1.0, 10.0, rng)
        fork.apply_churn("leave", 0.5, rng)
        fork.apply_beacons("fail", 1.0, 30.0)
        base_obs, base_pos = base.victim_state()
        victims = tiny_session.victims()
        np.testing.assert_array_equal(base_obs, victims.observations)
        np.testing.assert_array_equal(base_pos, victims.actual_locations)
        assert base.victim_alive().all()
        assert base.beacon_noise_std == 0.0
        assert not fork.victim_alive().all()

    def test_churn_leave_then_join_restores_nodes(self, tiny_session):
        world = TemporalWorld.from_session(tiny_session)
        rng = np.random.default_rng(1)
        world.apply_churn("leave", 1.0, rng)
        assert not world.victim_alive().any()
        # departed nodes are heard by nobody
        observations, _ = world.victim_state()
        assert observations.sum() == 0.0
        world.apply_churn("join", 1.0, rng)
        assert world.victim_alive().all()
        restored, _ = world.victim_state()
        np.testing.assert_array_equal(restored, tiny_session.victims().observations)

    def test_waypoint_mobility_stays_in_region(self, tiny_session):
        world = TemporalWorld.from_session(tiny_session)
        rng = np.random.default_rng(2)
        region = world.region
        for _ in range(5):
            world.apply_mobility("waypoint", 1.0, 50.0, rng)
        _, positions = world.victim_state()
        assert (positions[:, 0] >= region.x_min).all()
        assert (positions[:, 0] <= region.x_max).all()
        assert (positions[:, 1] >= region.y_min).all()
        assert (positions[:, 1] <= region.y_max).all()

    def test_beacon_restore_clears_degradation(self, tiny_session):
        world = TemporalWorld.from_session(tiny_session)
        world.apply_beacons("fail", 0.5, 30.0)
        world.apply_beacons("compromise", 0.5, 30.0)
        assert world.beacon_noise_std == 15.0
        assert world.beacon_bias == 15.0
        world.apply_beacons("restore", 1.0, 0.0)
        assert world.beacon_noise_std == 0.0
        assert world.beacon_bias == 0.0


class TestDegeneracy:
    def test_empty_timeline_equals_static_scores(self, tiny_session):
        """The tentpole contract: no events -> the static evaluation."""
        outcome = tiny_session.temporal(TimelineSpec()).run(
            POINT, false_positive_rate=0.05
        )
        static = tiny_session.attacked_scores(
            POINT.metric,
            POINT.attack,
            degree_of_damage=POINT.degree_of_damage,
            compromised_fraction=POINT.compromised_fraction,
        )
        assert outcome.num_epochs == 1
        np.testing.assert_array_equal(outcome.scores[0], static)

    def test_empty_timeline_equals_static_verdicts(self, tiny_session):
        outcome = tiny_session.temporal(TimelineSpec()).run(
            POINT, false_positive_rate=0.05
        )
        static = tiny_session.outcome(
            POINT.metric,
            POINT.attack,
            degree_of_damage=POINT.degree_of_damage,
            compromised_fraction=POINT.compromised_fraction,
            false_positive_rate=0.05,
        )
        temporal_verdicts = outcome.verdicts(0)
        static_verdicts = static.verdicts()
        assert len(temporal_verdicts) == len(static_verdicts)
        for ours, theirs in zip(temporal_verdicts, static_verdicts):
            assert ours.anomalous == theirs.anomalous
            assert ours.score == theirs.score
            assert ours.threshold == theirs.threshold


class TestOnlineMetrics:
    def test_attack_at_epoch_k_has_latency_at_least_k(
        self, tiny_session, attack_timeline
    ):
        outcome = tiny_session.temporal(attack_timeline).run(
            POINT, false_positive_rate=0.05
        )
        assert outcome.detection_latency is not None
        assert outcome.detection_latency >= ATTACK_EPOCH
        # before the switch-on nothing is attacked, afterwards everything is
        rates = outcome.detection_rates()
        assert (rates[:ATTACK_EPOCH] == 0.0).all()
        assert rates[ATTACK_EPOCH:].max() > 0.0
        assert outcome.detection_time == outcome.times[outcome.detection_latency]
        assert not outcome.attacked[: ATTACK_EPOCH].any()
        assert outcome.attacked[ATTACK_EPOCH:].all()

    def test_event_labels_recorded_at_fire_epochs(self, tiny_session, attack_timeline):
        outcome = tiny_session.temporal(attack_timeline).run(
            POINT, false_positive_rate=0.05
        )
        assert outcome.events[0] == ()
        assert "mobility:jitter" in outcome.events[1]
        assert "attack:on" in outcome.events[ATTACK_EPOCH]

    def test_delivery_collapses_under_full_churn(self, tiny_session):
        timeline = TimelineSpec(
            epochs=3,
            events=(EventSpec(kind="churn", action="leave", at=(1.0,), fraction=1.0),),
        )
        outcome = tiny_session.temporal(timeline).run(POINT, false_positive_rate=0.05)
        assert outcome.delivery_rates()[1] == 0.0
        assert np.isnan(outcome.scores[1]).all()
        # dead nodes submit no claims, so nothing can be flagged either
        assert not outcome.flagged[1:].any()

    def test_beacon_failure_perturbs_benign_scores(self, tiny_session):
        quiet = TimelineSpec(
            epochs=2,
            events=(EventSpec(kind="attack", action="on", at=(99.0,)),),
        )
        noisy = TimelineSpec(
            epochs=2,
            events=(
                EventSpec(kind="attack", action="on", at=(99.0,)),
                EventSpec(
                    kind="beacons",
                    action="fail",
                    at=(1.0,),
                    fraction=1.0,
                    amplitude=40.0,
                ),
            ),
        )
        runner = tiny_session.temporal(quiet)
        baseline = runner.run(POINT, false_positive_rate=0.05)
        degraded = tiny_session.temporal(noisy).run(POINT, false_positive_rate=0.05)
        np.testing.assert_array_equal(baseline.scores[0], degraded.scores[0])
        assert not np.array_equal(baseline.scores[1], degraded.scores[1])

    def test_as_dict_is_json_ready(self, tiny_session, attack_timeline):
        import json

        outcome = tiny_session.temporal(attack_timeline).run(
            POINT, false_positive_rate=0.05
        )
        payload = json.loads(json.dumps(outcome.as_dict()))
        assert payload["detection_latency"] == outcome.detection_latency
        assert len(payload["detection_rates"]) == outcome.num_epochs


class TestDeterminism:
    def test_serial_equals_parallel(self, tiny_session, attack_timeline):
        points = [
            POINT,
            SweepPoint(
                metric="diff",
                attack="dec_bounded",
                degree_of_damage=80.0,
                compromised_fraction=0.1,
            ),
        ]
        serial = tiny_session.temporal(attack_timeline).outcomes(
            points, false_positive_rate=0.05
        )
        with warnings.catch_warnings():
            # a fan-out fallback would hide a broken parallel path
            warnings.simplefilter("error")
            parallel = tiny_session.temporal(
                attack_timeline, workers=2
            ).outcomes(points, false_positive_rate=0.05)
        assert serial == parallel

    def test_warm_equals_cold_and_resumes(
        self, tiny_config, attack_timeline, tmp_path
    ):
        points = [
            POINT,
            SweepPoint(
                metric="diff",
                attack="dec_bounded",
                degree_of_damage=80.0,
                compromised_fraction=0.1,
            ),
        ]
        store = ArtifactStore(tmp_path / "cache")
        cold_session = LadSession(tiny_config, store=store)
        # "interrupt" after the first point (the up-front probe pass has
        # already counted both points as misses)...
        first = next(
            cold_session.temporal(attack_timeline).iter_outcomes(
                points, false_positive_rate=0.05
            )
        )
        assert store.miss_counts["temporal"] == 2
        # ...then resume: the finished point is served from disk.
        resumed_store = ArtifactStore(tmp_path / "cache")
        resumed_session = LadSession(tiny_config, store=resumed_store)
        resumed = resumed_session.temporal(attack_timeline).outcomes(
            points, false_positive_rate=0.05
        )
        assert resumed_store.hit_counts["temporal"] == 1
        assert resumed_store.miss_counts["temporal"] == 1
        assert resumed[points[0]] == first[1]
        # a fully-warm rerun recomputes nothing and matches bit for bit
        warm_store = ArtifactStore(tmp_path / "cache")
        warm_session = LadSession(tiny_config, store=warm_store)
        warm = warm_session.temporal(attack_timeline).outcomes(
            points, false_positive_rate=0.05
        )
        assert warm_store.miss_counts["temporal"] == 0
        assert warm_store.hit_counts["temporal"] == len(points)
        assert warm == resumed
        storeless = LadSession(tiny_config).temporal(attack_timeline).outcomes(
            points, false_positive_rate=0.05
        )
        assert warm == storeless

    def test_timeline_change_invalidates_cache(self, tiny_config, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        session = LadSession(tiny_config, store=store)
        session.temporal(TimelineSpec(epochs=2)).run(POINT, false_positive_rate=0.05)
        assert store.miss_counts["temporal"] == 1
        session.temporal(TimelineSpec(epochs=3)).run(POINT, false_positive_rate=0.05)
        # a different timeline must never alias the first one's artifact
        assert store.miss_counts["temporal"] == 2
        assert store.hit_counts["temporal"] == 0


class TestHopSchemesUnderMobility:
    """Regression: a ``[timeline]`` mobility scenario over DV-Hop runs.

    DV-Hop training resolves flooding rows through
    :func:`repro.localization.beacons.beacon_contexts`; before hop rows
    were gathered by node index, any position that was not bit-identical
    to a ``network.positions`` row (mobility jitter, dtype round trips)
    raised from the exact-tuple lookup.  This pins the whole pipeline —
    spec with a mobility timeline, DV-Hop localizer, temporal engine —
    end to end.
    """

    def test_dvhop_timeline_with_mobility_runs(self, tiny_config):
        from repro.localization.beacons import BeaconSpec

        config = tiny_config.with_beacons(
            BeaconSpec(count=9, transmit_range=400.0)
        )
        session = LadSession(config, localizer="dvhop")
        timeline = TimelineSpec(
            epochs=6,
            events=(
                EventSpec(
                    kind="mobility",
                    action="jitter",
                    period=1.0,
                    start=1.0,
                    fraction=0.5,
                    amplitude=10.0,
                ),
                EventSpec(kind="attack", action="on", at=(3.0,)),
            ),
        )
        outcome = session.temporal(timeline).run(
            POINT, false_positive_rate=0.05
        )
        assert outcome.scores.shape[0] == 6
        assert np.isfinite(outcome.scores[outcome.alive]).all()
        assert outcome.detection_latency is None or outcome.detection_latency >= 0

    def test_dvhop_timeline_is_deterministic(self, tiny_config):
        from repro.localization.beacons import BeaconSpec

        config = tiny_config.with_beacons(
            BeaconSpec(count=9, transmit_range=400.0)
        )
        timeline = TimelineSpec(
            epochs=4,
            events=(
                EventSpec(
                    kind="mobility",
                    action="jitter",
                    period=1.0,
                    start=1.0,
                    fraction=0.5,
                    amplitude=10.0,
                ),
                EventSpec(kind="attack", action="on", at=(2.0,)),
            ),
        )
        a = LadSession(config, localizer="dvhop").temporal(timeline).run(
            POINT, false_positive_rate=0.05
        )
        b = LadSession(config, localizer="dvhop").temporal(timeline).run(
            POINT, false_positive_rate=0.05
        )
        np.testing.assert_array_equal(a.scores, b.scores)
        np.testing.assert_array_equal(a.alive, b.alive)


class TestOutcomeEdgeCases:
    def _outcome(self, scores, attacked, alive, threshold=1.0):
        scores = np.asarray(scores, dtype=np.float64)
        epochs, victims = scores.shape
        return TemporalOutcome(
            point=POINT,
            scores=np.asarray(scores, dtype=np.float64),
            attacked=np.asarray(attacked, dtype=bool),
            alive=np.asarray(alive, dtype=bool),
            times=np.arange(epochs, dtype=np.float64),
            events=tuple(() for _ in range(epochs)),
            threshold=threshold,
            false_positive_rate=0.05,
        )

    def test_never_detected_latency_is_none(self):
        outcome = self._outcome(
            scores=np.zeros((3, 2)),
            attacked=np.ones((3, 2)),
            alive=np.ones((3, 2)),
        )
        assert outcome.detection_latency is None
        assert outcome.detection_time is None
        assert outcome.first_false_positive is None
        assert outcome.first_false_positive_time is None

    def test_drift_needs_two_attacked_epochs(self):
        outcome = self._outcome(
            scores=np.full((3, 2), 5.0),
            attacked=[[True, True], [False, False], [False, False]],
            alive=np.ones((3, 2)),
        )
        assert outcome.detection_drift == 0.0

    def test_drift_measures_first_to_last_attacked_epoch(self):
        outcome = self._outcome(
            scores=[[5.0, 5.0], [5.0, 0.0], [0.0, 0.0]],
            attacked=np.ones((3, 2)),
            alive=np.ones((3, 2)),
        )
        assert outcome.detection_drift == -1.0
        np.testing.assert_allclose(outcome.detection_rates(), [1.0, 0.5, 0.0])
