"""Tests for :mod:`repro.network.radio`."""

import numpy as np
import pytest

from repro.network.radio import LogNormalShadowingRadio, UnitDiskRadio


class TestUnitDiskRadio:
    def test_link_up_within_range(self):
        radio = UnitDiskRadio(100.0)
        distances = np.array([0.0, 50.0, 100.0, 100.0001, 500.0])
        np.testing.assert_array_equal(
            radio.link_up(distances), [True, True, True, False, False]
        )

    def test_properties(self):
        radio = UnitDiskRadio(75.0)
        assert radio.nominal_range == 75.0
        assert radio.max_range == 75.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)


class TestLogNormalShadowingRadio:
    def test_zero_shadowing_reduces_to_unit_disk(self):
        radio = LogNormalShadowingRadio(100.0, shadowing_db=0.0)
        distances = np.array([50.0, 99.0, 101.0, 200.0])
        np.testing.assert_array_equal(
            radio.link_up(distances), [True, True, False, False]
        )

    def test_connection_probability_monotone(self):
        radio = LogNormalShadowingRadio(100.0, shadowing_db=4.0)
        distances = np.linspace(10.0, 190.0, 50)
        probs = radio.connection_probability(distances)
        assert np.all(np.diff(probs) <= 1e-12)
        assert probs[0] > 0.95
        assert probs[-1] < 0.5

    def test_probability_half_at_nominal_range(self):
        radio = LogNormalShadowingRadio(100.0, shadowing_db=6.0)
        assert radio.connection_probability(np.array([100.0]))[0] == pytest.approx(
            0.5, abs=1e-9
        )

    def test_empirical_matches_analytic(self):
        radio = LogNormalShadowingRadio(100.0, shadowing_db=4.0)
        rng = np.random.default_rng(0)
        distances = np.full(20_000, 110.0)
        up = radio.link_up(distances, rng=rng)
        analytic = radio.connection_probability(np.array([110.0]))[0]
        assert float(up.mean()) == pytest.approx(analytic, abs=0.02)

    def test_hard_cutoff_at_max_range(self):
        radio = LogNormalShadowingRadio(100.0, shadowing_db=10.0, max_range_factor=1.5)
        rng = np.random.default_rng(1)
        distances = np.full(1000, 200.0)
        assert not radio.link_up(distances, rng=rng).any()
        assert radio.connection_probability(np.array([200.0]))[0] == 0.0

    def test_max_range_property(self):
        radio = LogNormalShadowingRadio(100.0, max_range_factor=2.0)
        assert radio.max_range == 200.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogNormalShadowingRadio(100.0, max_range_factor=0.5)
        with pytest.raises(ValueError):
            LogNormalShadowingRadio(100.0, path_loss_exponent=0.0)
