"""Tests for :mod:`repro.network.messages`."""

import numpy as np

from repro.network.messages import (
    BroadcastLog,
    GroupAnnouncement,
    collect_observation,
    run_announcement_round,
)


class TestCollectObservation:
    def test_counts_claimed_groups(self):
        log = BroadcastLog(receiver=0)
        log.extend(
            [
                GroupAnnouncement(sender=1, claimed_group=0),
                GroupAnnouncement(sender=2, claimed_group=0),
                GroupAnnouncement(sender=3, claimed_group=2),
            ]
        )
        obs = collect_observation(log, 3)
        np.testing.assert_allclose(obs, [2.0, 0.0, 1.0])

    def test_authentication_filter(self):
        log = BroadcastLog(receiver=0)
        log.add(GroupAnnouncement(sender=1, claimed_group=1, authenticated=False))
        log.add(GroupAnnouncement(sender=2, claimed_group=1, authenticated=True))
        assert collect_observation(log, 2, require_authentication=True)[1] == 1.0
        assert collect_observation(log, 2, require_authentication=False)[1] == 2.0

    def test_deduplicate_senders(self):
        log = BroadcastLog(receiver=0)
        log.extend(
            [
                GroupAnnouncement(sender=1, claimed_group=0),
                GroupAnnouncement(sender=1, claimed_group=1),
                GroupAnnouncement(sender=-1, claimed_group=1),
                GroupAnnouncement(sender=-1, claimed_group=1),
            ]
        )
        obs = collect_observation(log, 2, deduplicate_senders=True)
        # Only the first message from node 1 counts; wormhole-injected
        # messages (sender -1) are never deduplicated.
        np.testing.assert_allclose(obs, [1.0, 2.0])

    def test_ignores_invalid_group_ids(self):
        log = BroadcastLog(receiver=0)
        log.add(GroupAnnouncement(sender=1, claimed_group=99))
        np.testing.assert_allclose(collect_observation(log, 3), 0.0)

    def test_len(self):
        log = BroadcastLog(receiver=0)
        log.add(GroupAnnouncement(sender=1, claimed_group=0))
        assert len(log) == 1


class TestAnnouncementRound:
    def test_matches_vectorised_observations(self, small_network, small_index):
        receivers = [3, 14, 100]
        logs = run_announcement_round(small_network, receivers, index=small_index)
        assert set(logs) == set(receivers)
        for receiver in receivers:
            obs_from_log = collect_observation(logs[receiver], small_network.n_groups)
            obs_direct = small_index.observation_of_node(receiver)
            np.testing.assert_allclose(obs_from_log, obs_direct)

    def test_senders_are_true_neighbors(self, small_network, small_index):
        logs = run_announcement_round(small_network, [7], index=small_index)
        senders = {m.sender for m in logs[7].messages}
        assert senders == set(small_index.neighbors_of_node(7).tolist())

    def test_messages_report_true_groups(self, small_network, small_index):
        logs = run_announcement_round(small_network, [50], index=small_index)
        for msg in logs[50].messages:
            assert msg.claimed_group == small_network.group_ids[msg.sender]
            assert msg.authenticated
