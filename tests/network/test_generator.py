"""Tests for :mod:`repro.network.generator`."""

import numpy as np
import pytest

from repro.deployment.models import paper_deployment_model
from repro.network.generator import NetworkGenerator, generate_network
from repro.network.radio import UnitDiskRadio


class TestNetworkGenerator:
    def test_num_nodes(self, small_generator):
        assert small_generator.num_nodes == 25 * 30

    def test_reproducible_generation(self, small_generator):
        a = small_generator.generate(rng=42)
        b = small_generator.generate(rng=42)
        np.testing.assert_allclose(a.positions, b.positions)
        np.testing.assert_array_equal(a.group_ids, b.group_ids)

    def test_different_seeds_differ(self, small_generator):
        a = small_generator.generate(rng=1)
        b = small_generator.generate(rng=2)
        assert not np.allclose(a.positions, b.positions)

    def test_default_radio(self):
        gen = NetworkGenerator(paper_deployment_model(), group_size=5)
        assert isinstance(gen.radio, UnitDiskRadio)
        assert gen.radio.nominal_range == 100.0

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            NetworkGenerator(paper_deployment_model(), group_size=0)

    def test_knowledge_matches_generator(self, small_generator):
        knowledge = small_generator.knowledge(omega=100)
        assert knowledge.group_size == small_generator.group_size
        assert knowledge.radio_range == small_generator.radio.nominal_range
        assert knowledge.n_groups == small_generator.model.n_groups

    def test_clip_to_region(self):
        gen = NetworkGenerator(
            paper_deployment_model(sigma=300.0), group_size=10, clip_to_region=True
        )
        net = gen.generate(rng=0)
        assert gen.model.region.contains(net.positions).all()


class TestGenerateNetworkHelper:
    def test_returns_matching_pair(self):
        network, knowledge = generate_network(group_size=5, rng=3)
        assert network.num_nodes == 500
        assert knowledge.group_size == 5
        assert knowledge.n_groups == network.n_groups
        assert network.radio.nominal_range == knowledge.radio_range

    def test_custom_parameters(self):
        network, knowledge = generate_network(
            group_size=4, radio_range=60.0, sigma=30.0, rng=1
        )
        assert knowledge.radio_range == 60.0
        assert knowledge.gz_table.sigma == 30.0
        assert network.num_nodes == 400
