"""Tests for :mod:`repro.network.network`."""

import numpy as np
import pytest

from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio


def _tiny_network() -> SensorNetwork:
    positions = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [50.0, 50.0]])
    group_ids = np.array([0, 0, 1, 2])
    return SensorNetwork(
        positions=positions, group_ids=group_ids, n_groups=3, radio=UnitDiskRadio(20.0)
    )


class TestConstruction:
    def test_basic_properties(self):
        net = _tiny_network()
        assert net.num_nodes == 4
        assert net.n_groups == 3
        np.testing.assert_array_equal(net.group_counts(), [2, 1, 1])
        assert not net.compromised.any()

    def test_group_size_requires_equal_groups(self):
        net = _tiny_network()
        with pytest.raises(ValueError):
            _ = net.group_size
        equal = SensorNetwork(
            positions=np.zeros((6, 2)), group_ids=np.repeat([0, 1, 2], 2), n_groups=3
        )
        assert equal.group_size == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork(
                positions=np.zeros((3, 2)), group_ids=np.zeros(2, dtype=int), n_groups=1
            )

    def test_group_ids_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork(
                positions=np.zeros((2, 2)), group_ids=np.array([0, 5]), n_groups=3
            )

    def test_bad_ranges_shape_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork(
                positions=np.zeros((2, 2)),
                group_ids=np.array([0, 0]),
                n_groups=1,
                ranges=np.array([1.0]),
            )


class TestQueriesAndMutation:
    def test_members_of(self):
        net = _tiny_network()
        np.testing.assert_array_equal(net.members_of(0), [0, 1])
        with pytest.raises(ValueError):
            net.members_of(3)

    def test_node_range_defaults_to_radio(self):
        net = _tiny_network()
        assert net.node_range(0) == 20.0
        np.testing.assert_allclose(net.effective_ranges(), 20.0)

    def test_set_node_range(self):
        net = _tiny_network()
        net.set_node_range(1, 80.0)
        assert net.node_range(1) == 80.0
        assert net.node_range(0) == 20.0
        with pytest.raises(ValueError):
            net.set_node_range(0, -1.0)

    def test_mark_compromised(self):
        net = _tiny_network()
        net.mark_compromised([1, 3])
        assert net.compromised.tolist() == [False, True, False, True]

    def test_move_node(self):
        net = _tiny_network()
        net.move_node(0, (99.0, 99.0))
        np.testing.assert_allclose(net.positions[0], [99.0, 99.0])
        with pytest.raises(ValueError):
            net.move_node(0, (1.0, 2.0, 3.0))

    def test_copy_is_deep(self):
        net = _tiny_network()
        net.set_node_range(0, 70.0)
        clone = net.copy()
        clone.positions[0] = [-1.0, -1.0]
        clone.mark_compromised([2])
        clone.set_node_range(0, 5.0)
        np.testing.assert_allclose(net.positions[0], [0.0, 0.0])
        assert not net.compromised[2]
        assert net.node_range(0) == 70.0


class TestGeneratedNetwork:
    def test_fixture_network_consistency(self, small_network, small_generator):
        assert small_network.num_nodes == small_generator.num_nodes
        assert small_network.n_groups == small_generator.model.n_groups
        assert small_network.group_size == small_generator.group_size
        np.testing.assert_array_equal(
            small_network.group_counts(), small_generator.group_size
        )

    def test_nodes_cluster_around_deployment_points(self, small_network, small_model):
        # Average distance from a node to its group's deployment point should
        # be close to the Rayleigh mean sigma * sqrt(pi/2).
        sigma = small_model.distribution.sigma
        centers = small_model.deployment_points[small_network.group_ids]
        dist = np.hypot(*(small_network.positions - centers).T)
        assert dist.mean() == pytest.approx(sigma * np.sqrt(np.pi / 2), rel=0.1)
