"""Tests for :mod:`repro.network.neighbors`."""

import numpy as np
import pytest

from repro.geometry.grid import SpatialHashGrid
from repro.network.neighbors import (
    NeighborIndex,
    observation_from_neighbors,
    observations_for_nodes,
)
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio
from tests.conftest import TEST_RADIO_RANGE


class TestObservationFromNeighbors:
    def test_histogram(self):
        obs = observation_from_neighbors(np.array([0, 0, 2, 1, 2, 2]), 4)
        np.testing.assert_allclose(obs, [2.0, 1.0, 3.0, 0.0])

    def test_empty(self):
        np.testing.assert_allclose(observation_from_neighbors(np.array([]), 3), 0.0)


class TestNeighborIndex:
    def test_matches_brute_force(self, small_network, small_index):
        rng = np.random.default_rng(0)
        nodes = rng.choice(small_network.num_nodes, size=10, replace=False)
        for node in nodes:
            got = small_index.neighbors_of_node(int(node))
            diff = small_network.positions - small_network.positions[node]
            dist = np.hypot(diff[:, 0], diff[:, 1])
            expected = np.flatnonzero(dist <= TEST_RADIO_RANGE)
            expected = expected[expected != node]
            np.testing.assert_array_equal(got, np.sort(expected))

    def test_matches_spatial_hash_grid(self, small_network, small_index):
        grid = SpatialHashGrid(small_network.positions, cell_size=TEST_RADIO_RANGE)
        point = np.array([222.0, 333.0])
        got = small_index.neighbors_of_point(point)
        expected = grid.query_radius(point, TEST_RADIO_RANGE)
        np.testing.assert_array_equal(got, expected)

    def test_excludes_self(self, small_network, small_index):
        neighbors = small_index.neighbors_of_node(5)
        assert 5 not in neighbors

    def test_observation_counts_sum_to_neighbor_count(self, small_index):
        obs = small_index.observation_of_node(17)
        assert obs.sum() == small_index.neighbors_of_node(17).size

    def test_observation_shape(self, small_network, small_index):
        obs = small_index.observation_of_node(0)
        assert obs.shape == (small_network.n_groups,)

    def test_batch_observations(self, small_network, small_index):
        nodes = [0, 1, 2, 3]
        obs = small_index.observations_of_nodes(nodes)
        assert obs.shape == (4, small_network.n_groups)
        for row, node in enumerate(nodes):
            np.testing.assert_allclose(obs[row], small_index.observation_of_node(node))

    def test_neighbor_counts(self, small_index):
        nodes = [0, 5, 10]
        counts = small_index.neighbor_counts(nodes)
        expected = [small_index.neighbors_of_node(n).size for n in nodes]
        np.testing.assert_array_equal(counts, expected)

    def test_helper_function(self, small_network):
        obs = observations_for_nodes(small_network, [0, 1])
        assert obs.shape == (2, small_network.n_groups)

    def test_range_change_extends_reach(self):
        """A node with an enlarged range becomes a neighbour of a distant point."""
        positions = np.array([[0.0, 0.0], [150.0, 0.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1]),
            n_groups=2,
            radio=UnitDiskRadio(100.0),
        )
        index = NeighborIndex(network)
        # Initially node 1 (at 150 m) is not heard from the origin area.
        assert index.neighbors_of_point((0.0, 0.0)).tolist() == [0]
        network.set_node_range(1, 200.0)
        index2 = NeighborIndex(network)
        assert index2.neighbors_of_point((0.0, 0.0)).tolist() == [0, 1]

    def test_observation_of_point_near_group_center(self, small_network, small_index, small_model):
        # Standing at a deployment point, most neighbours come from that group.
        center = small_model.deployment_points[12]
        obs = small_index.observation_of_point(center)
        assert int(np.argmax(obs)) == 12
