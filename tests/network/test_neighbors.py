"""Tests for :mod:`repro.network.neighbors`."""

import numpy as np

from repro.geometry.grid import SpatialHashGrid
from repro.network.neighbors import (
    NeighborIndex,
    observation_from_neighbors,
    observations_for_nodes,
)
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio
from tests.conftest import TEST_RADIO_RANGE


class TestObservationFromNeighbors:
    def test_histogram(self):
        obs = observation_from_neighbors(np.array([0, 0, 2, 1, 2, 2]), 4)
        np.testing.assert_allclose(obs, [2.0, 1.0, 3.0, 0.0])

    def test_empty(self):
        np.testing.assert_allclose(observation_from_neighbors(np.array([]), 3), 0.0)


class TestNeighborIndex:
    def test_matches_brute_force(self, small_network, small_index):
        rng = np.random.default_rng(0)
        nodes = rng.choice(small_network.num_nodes, size=10, replace=False)
        for node in nodes:
            got = small_index.neighbors_of_node(int(node))
            diff = small_network.positions - small_network.positions[node]
            dist = np.hypot(diff[:, 0], diff[:, 1])
            expected = np.flatnonzero(dist <= TEST_RADIO_RANGE)
            expected = expected[expected != node]
            np.testing.assert_array_equal(got, np.sort(expected))

    def test_matches_spatial_hash_grid(self, small_network, small_index):
        grid = SpatialHashGrid(small_network.positions, cell_size=TEST_RADIO_RANGE)
        point = np.array([222.0, 333.0])
        got = small_index.neighbors_of_point(point)
        expected = grid.query_radius(point, TEST_RADIO_RANGE)
        np.testing.assert_array_equal(got, expected)

    def test_excludes_self(self, small_network, small_index):
        neighbors = small_index.neighbors_of_node(5)
        assert 5 not in neighbors

    def test_observation_counts_sum_to_neighbor_count(self, small_index):
        obs = small_index.observation_of_node(17)
        assert obs.sum() == small_index.neighbors_of_node(17).size

    def test_observation_shape(self, small_network, small_index):
        obs = small_index.observation_of_node(0)
        assert obs.shape == (small_network.n_groups,)

    def test_batch_observations(self, small_network, small_index):
        nodes = [0, 1, 2, 3]
        obs = small_index.observations_of_nodes(nodes)
        assert obs.shape == (4, small_network.n_groups)
        for row, node in enumerate(nodes):
            np.testing.assert_allclose(obs[row], small_index.observation_of_node(node))

    def test_neighbor_counts(self, small_index):
        nodes = [0, 5, 10]
        counts = small_index.neighbor_counts(nodes)
        expected = [small_index.neighbors_of_node(n).size for n in nodes]
        np.testing.assert_array_equal(counts, expected)

    def test_helper_function(self, small_network):
        obs = observations_for_nodes(small_network, [0, 1])
        assert obs.shape == (2, small_network.n_groups)

    def test_range_change_extends_reach(self):
        """A node with an enlarged range becomes a neighbour of a distant point."""
        positions = np.array([[0.0, 0.0], [150.0, 0.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1]),
            n_groups=2,
            radio=UnitDiskRadio(100.0),
        )
        index = NeighborIndex(network)
        # Initially node 1 (at 150 m) is not heard from the origin area.
        assert index.neighbors_of_point((0.0, 0.0)).tolist() == [0]
        network.set_node_range(1, 200.0)
        index2 = NeighborIndex(network)
        assert index2.neighbors_of_point((0.0, 0.0)).tolist() == [0, 1]

    def test_observation_of_point_near_group_center(
        self,
        small_network,
        small_index,
        small_model,
    ):
        # Standing at a deployment point, most neighbours come from that group.
        center = small_model.deployment_points[12]
        obs = small_index.observation_of_point(center)
        assert int(np.argmax(obs)) == 12

    def test_reduced_range_shrinks_reach(self):
        """Regression: a sender whose range was reduced below nominal must not
        be reported as a neighbour beyond its effective range."""
        positions = np.array([[0.0, 0.0], [40.0, 0.0], [8.0, 0.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1, 1]),
            n_groups=2,
            radio=UnitDiskRadio(50.0),
            ranges=np.array([50.0, 10.0, 10.0]),
        )
        index = NeighborIndex(network)
        # Node 1 sits 40 m away but its range was shrunk to 10 m: not heard.
        # Node 2 sits 8 m away, inside its reduced 10 m range: heard.
        assert index.neighbors_of_point((0.0, 0.0)).tolist() == [0, 2]

    def test_enlarged_range_keeps_probabilistic_tail(self):
        """An enlarged override must not silence the radio model's own
        probabilistic reach beyond the effective range."""
        from repro.network.radio import LogNormalShadowingRadio

        radio = LogNormalShadowingRadio(80.0, shadowing_db=6.0)  # max_range 160
        positions = np.array([[0.0, 0.0], [140.0, 0.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1]),
            n_groups=2,
            radio=radio,
            ranges=np.array([80.0, 100.0]),  # node 1 enlarged to 100 m
        )
        index = NeighborIndex(network)
        rng = np.random.default_rng(0)
        heard = sum(
            1 in index.neighbors_of_point((0.0, 0.0), rng=rng) for _ in range(400)
        )
        # At 140 m the link is beyond the enlarged 100 m range but within the
        # radio's 160 m shadowing reach: it must connect sometimes.
        assert 0 < heard < 400

    def test_nominal_senders_stay_probabilistic_despite_overrides(self):
        """One node's range override must not turn every other sender's
        shadowed link into a deterministic one."""
        from repro.network.radio import LogNormalShadowingRadio

        radio = LogNormalShadowingRadio(80.0, shadowing_db=8.0)
        positions = np.array([[0.0, 0.0], [75.0, 0.0], [500.0, 500.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1, 1]),
            n_groups=2,
            radio=radio,
        )
        network.set_node_range(2, 120.0)  # unrelated override far away
        index = NeighborIndex(network)
        rng = np.random.default_rng(3)
        heard = sum(
            1 in index.neighbors_of_point((0.0, 0.0), rng=rng) for _ in range(400)
        )
        # Node 1 keeps its nominal range: at 75 m under 8 dB shadowing the
        # link must fail a nontrivial fraction of the time.
        assert 0 < heard < 400

    def test_reduced_range_affects_observations(self):
        """The reduced-range rule must flow through to observation vectors."""
        positions = np.array([[0.0, 0.0], [40.0, 0.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1]),
            n_groups=2,
            radio=UnitDiskRadio(50.0),
        )
        network.set_node_range(1, 10.0)
        index = NeighborIndex(network)
        np.testing.assert_allclose(index.observation_of_node(0), [0.0, 0.0])
        np.testing.assert_allclose(
            index.observations_of_nodes([0, 1]),
            index.observations_of_nodes([0, 1], batched=False),
        )


class TestOnePassObservations:
    def test_threaded_query_matches_sparse_pass(
        self, small_network, small_index, monkeypatch
    ):
        """The ``workers=-1`` ball-query branch for large batches finds the
        same observations as the tree-against-tree sparse pass."""
        from repro.network import neighbors as neighbors_module

        rng = np.random.default_rng(21)
        nodes = rng.choice(small_network.num_nodes, size=200, replace=False)
        reference = small_index.observations_of_nodes(nodes)
        monkeypatch.setattr(neighbors_module, "PARALLEL_QUERY_MIN_NODES", 1)
        monkeypatch.setattr(neighbors_module, "PARALLEL_QUERY_MIN_CPUS", 1)
        threaded = small_index.observations_of_nodes(nodes)
        np.testing.assert_array_equal(threaded, reference)
        np.testing.assert_array_equal(
            threaded, small_index.observations_of_nodes(nodes, batched=False)
        )

    def test_threaded_query_with_custom_ranges(self, small_generator, monkeypatch):
        from repro.network import neighbors as neighbors_module

        network = small_generator.generate(rng=55)
        rng = np.random.default_rng(55)
        for node in rng.choice(network.num_nodes, size=6, replace=False):
            network.set_node_range(int(node), 140.0)
        index = NeighborIndex(network)
        nodes = rng.choice(network.num_nodes, size=120, replace=False)
        reference = index.observations_of_nodes(nodes, batched=False)
        monkeypatch.setattr(neighbors_module, "PARALLEL_QUERY_MIN_NODES", 1)
        monkeypatch.setattr(neighbors_module, "PARALLEL_QUERY_MIN_CPUS", 1)
        np.testing.assert_array_equal(
            index.observations_of_nodes(nodes), reference
        )

    def test_matches_loop_on_seeded_network(self, small_network, small_index):
        rng = np.random.default_rng(7)
        nodes = rng.choice(small_network.num_nodes, size=40, replace=False)
        batched = small_index.observations_of_nodes(nodes)
        looped = small_index.observations_of_nodes(nodes, batched=False)
        np.testing.assert_array_equal(batched, looped)

    def test_matches_loop_with_custom_ranges(self, small_generator):
        network = small_generator.generate(rng=77)
        rng = np.random.default_rng(8)
        enlarged = rng.choice(network.num_nodes, size=10, replace=False)
        for node in enlarged[:5]:
            network.set_node_range(int(node), 180.0)
        for node in enlarged[5:]:
            network.set_node_range(int(node), 15.0)
        index = NeighborIndex(network)
        nodes = rng.choice(network.num_nodes, size=50, replace=False)
        np.testing.assert_array_equal(
            index.observations_of_nodes(nodes),
            index.observations_of_nodes(nodes, batched=False),
        )

    def test_empty_batch(self, small_index, small_network):
        obs = small_index.observations_of_nodes([])
        assert obs.shape == (0, small_network.n_groups)

    def test_neighbor_counts_match_observation_sums(self, small_index):
        nodes = [3, 14, 15, 92]
        counts = small_index.neighbor_counts(nodes)
        obs = small_index.observations_of_nodes(nodes)
        np.testing.assert_array_equal(counts, obs.sum(axis=1).astype(np.int64))

    def test_probabilistic_radio_uses_loop(self, small_network):
        from repro.network.radio import LogNormalShadowingRadio

        network = SensorNetwork(
            positions=small_network.positions.copy(),
            group_ids=small_network.group_ids.copy(),
            n_groups=small_network.n_groups,
            radio=LogNormalShadowingRadio(80.0, shadowing_db=4.0),
        )
        index = NeighborIndex(network)
        # The one-pass path must not be taken: the per-node loop consumes the
        # generator node by node, so a fresh generator with the same seed
        # reproduces the loop result.
        obs_a = index.observations_of_nodes([0, 1, 2], rng=np.random.default_rng(5))
        obs_b = index.observations_of_nodes(
            [0, 1, 2], rng=np.random.default_rng(5), batched=False
        )
        np.testing.assert_array_equal(obs_a, obs_b)
