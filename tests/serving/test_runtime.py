"""Tests for :class:`repro.serving.ServiceRuntime`.

Covers the tentpole's behavioural guarantees: micro-batching flushes on
size *and* timer, verdicts through the async path are bit-identical to
direct scoring, a full queue rejects (or blocks) according to the
overflow policy, and shutdown drains every accepted claim.

Most tests drive a lightweight fake service for deterministic control of
batch timing; the integration tests at the bottom use the real trained
service.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core.verdict import Verdict
from repro.serving import (
    LocationClaim,
    ServiceClosed,
    ServiceOverloaded,
    ServiceRuntime,
    ServingConfig,
)


class FakeService:
    """Deterministic stand-in for DetectionService.

    Scores every claim with its first observation entry and records the
    batch sizes the runtime produced; an optional delay simulates slow
    vectorised scoring (runs in the runtime's executor thread, so it must
    block, not await).
    """

    def __init__(self, delay_s: float = 0.0):
        self.batches = []
        self.delay_s = delay_s

    def validate(self, claim):
        pass

    def verify_batch(self, claims):
        if self.delay_s:
            time.sleep(self.delay_s)
        self.batches.append(len(claims))
        return [
            Verdict(
                score=float(claim.observation[0]),
                threshold=10.0,
                anomalous=float(claim.observation[0]) > 10.0,
                metric="diff",
                false_positive_rate=0.01,
                claim_id=claim.claim_id,
            )
            for claim in claims
        ]


def _claim(value: float, claim_id=None) -> LocationClaim:
    return LocationClaim(
        observation=[value], claimed_location=[0.0, 0.0], claim_id=claim_id
    )


class TestMicroBatching:
    def test_batches_bounded_by_max_batch_size(self):
        service = FakeService(delay_s=0.01)

        async def run():
            config = ServingConfig(max_batch_size=4, max_wait_ms=50.0)
            async with ServiceRuntime(service, config) as runtime:
                verdicts = await asyncio.gather(
                    *[runtime.submit(_claim(float(i))) for i in range(12)]
                )
            return verdicts

        verdicts = asyncio.run(run())
        assert len(verdicts) == 12
        assert max(service.batches) <= 4
        # The delay keeps the queue occupied, so batching actually happens.
        assert any(size > 1 for size in service.batches)

    def test_timer_flushes_partial_batch(self):
        service = FakeService()

        async def run():
            config = ServingConfig(max_batch_size=64, max_wait_ms=5.0)
            async with ServiceRuntime(service, config) as runtime:
                return await asyncio.wait_for(
                    runtime.submit(_claim(3.0)), timeout=5.0
                )

        verdict = asyncio.run(run())
        # A single claim can never fill max_batch_size=64; only the batch
        # timer can have flushed it.
        assert verdict.score == 3.0
        assert service.batches == [1]

    def test_scores_bit_identical_through_async_path(self, tiny_service):
        """The async front returns exactly verify_batch's verdicts."""
        observations = np.eye(tiny_service.n_groups)[:8] * 7.0
        claims = [
            LocationClaim(
                observation=observations[i],
                claimed_location=[250.0, 250.0],
                claim_id=f"a-{i}",
            )
            for i in range(8)
        ]
        direct = tiny_service.verify_batch(claims)

        async def run():
            config = ServingConfig(max_batch_size=3, max_wait_ms=1.0)
            async with ServiceRuntime(tiny_service, config) as runtime:
                return await asyncio.gather(
                    *[runtime.submit(claim) for claim in claims]
                )

        served = asyncio.run(run())
        for online, offline in zip(served, direct):
            assert online.score == offline.score
            assert online.anomalous == offline.anomalous
            assert online.latency_ms is not None

    def test_stats_count_batches(self):
        service = FakeService(delay_s=0.005)

        async def run():
            config = ServingConfig(max_batch_size=8, max_wait_ms=20.0)
            async with ServiceRuntime(service, config) as runtime:
                await asyncio.gather(
                    *[runtime.submit(_claim(1.0)) for _ in range(20)]
                )
                return runtime.stats

        stats = asyncio.run(run())
        assert stats.submitted == 20
        assert stats.completed == 20
        assert stats.batches == len(service.batches)
        assert stats.largest_batch == max(service.batches)
        assert stats.mean_batch_size == pytest.approx(
            20 / len(service.batches)
        )
        assert len(stats.latencies_ms) == 20


class TestBackpressure:
    def test_reject_when_queue_full(self):
        service = FakeService(delay_s=0.05)

        async def run():
            config = ServingConfig(
                max_batch_size=1,
                max_wait_ms=0.0,
                queue_size=2,
                overflow="reject",
                retry_after_ms=123.0,
            )
            async with ServiceRuntime(service, config) as runtime:
                results = await asyncio.gather(
                    *[runtime.submit(_claim(1.0)) for _ in range(20)],
                    return_exceptions=True,
                )
                return results, runtime.stats

        results, stats = asyncio.run(run())
        rejected = [r for r in results if isinstance(r, ServiceOverloaded)]
        completed = [r for r in results if isinstance(r, Verdict)]
        assert rejected, "a 2-slot queue must shed a 20-claim burst"
        assert completed, "accepted claims must still complete"
        assert all(r.retry_after_ms == 123.0 for r in rejected)
        assert stats.rejected == len(rejected)
        assert stats.completed == len(completed)

    def test_block_mode_completes_everything(self):
        service = FakeService(delay_s=0.01)

        async def run():
            config = ServingConfig(
                max_batch_size=2,
                max_wait_ms=0.0,
                queue_size=2,
                overflow="block",
            )
            async with ServiceRuntime(service, config) as runtime:
                results = await asyncio.gather(
                    *[runtime.submit(_claim(float(i))) for i in range(15)]
                )
                return results, runtime.stats

        results, stats = asyncio.run(run())
        assert len(results) == 15
        assert stats.rejected == 0
        assert stats.completed == 15


class TestShutdown:
    def test_close_drains_accepted_claims(self):
        """Every claim accepted before close() still gets its verdict."""
        service = FakeService(delay_s=0.02)

        async def run():
            config = ServingConfig(max_batch_size=4, max_wait_ms=1.0)
            runtime = ServiceRuntime(service, config)
            await runtime.start()
            pending = [
                asyncio.ensure_future(runtime.submit(_claim(float(i))))
                for i in range(10)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await runtime.close()
            verdicts = await asyncio.gather(*pending)
            return verdicts, runtime.stats

        verdicts, stats = asyncio.run(run())
        assert len(verdicts) == 10
        assert all(isinstance(verdict, Verdict) for verdict in verdicts)
        assert stats.completed == 10

    def test_submit_after_close_raises(self):
        service = FakeService()

        async def run():
            runtime = ServiceRuntime(service, ServingConfig())
            await runtime.start()
            await runtime.close()
            with pytest.raises(ServiceClosed):
                await runtime.submit(_claim(1.0))

        asyncio.run(run())

    def test_close_is_idempotent(self):
        service = FakeService()

        async def run():
            runtime = ServiceRuntime(service, ServingConfig())
            await runtime.start()
            await runtime.close()
            await runtime.close()

        asyncio.run(run())

    def test_submit_before_start_raises(self):
        runtime = ServiceRuntime(FakeService())

        async def run():
            with pytest.raises(RuntimeError, match="not started"):
                await runtime.submit(_claim(1.0))

        asyncio.run(run())

    def test_invalid_claim_rejected_at_admission(self, tiny_service):
        """Validation happens before a claim can occupy queue space."""
        from repro.serving.claims import ClaimError

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                with pytest.raises(ClaimError):
                    await runtime.submit(
                        LocationClaim(
                            observation=[1.0], claimed_location=[0.0, 0.0]
                        )
                    )
                return runtime.stats

        stats = asyncio.run(run())
        assert stats.submitted == 0


class TestServingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"queue_size": 0},
            {"max_wait_ms": -1.0},
            {"overflow": "drop"},
            {"retry_after_ms": -5.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)
