"""``lad-repro serve`` drains the admission queue on SIGINT/SIGTERM.

The contract under test: a signal closes the listening socket *first*
(no new claims admitted), the runtime's ``close()`` then drains whatever
was already queued, and the process exits 0 — a graceful shutdown, not a
crash with exit 130/-15.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

TINY_SPEC = """\
name = "shutdown_tiny"
metrics = ["diff"]
attacks = ["dec_bounded"]
degrees = [80.0]
fractions = [0.1]
false_positive_rate = 0.05

[config]
group_size = 40
num_training_samples = 30
training_samples_per_network = 15
num_victims = 30
victims_per_network = 15
gz_omega = 300
seed = 777
"""


def _spawn_server(tmp_path):
    spec_path = tmp_path / "tiny.toml"
    spec_path.write_text(TINY_SPEC)
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(spec_path),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        start_new_session=True,  # isolate the signal from the test runner
    )
    # Wait for the training pass to finish and the socket to be announced.
    address = None
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            address = line.split("listening on ", 1)[1].strip()
            break
        if process.poll() is not None:  # pragma: no cover - diagnostics
            raise AssertionError(f"server died during startup: {process.stderr.read()}")
    assert address, "server never announced its address"
    host, _, port = address.rpartition(":")
    return process, host, int(port)


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_zero(tmp_path, signum):
    process, host, port = _spawn_server(tmp_path)
    try:
        # Prove the server is actually accepting before the signal.
        with socket.create_connection((host, port), timeout=10.0):
            pass
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=60.0)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    assert "signal received: draining admitted claims" in stderr
    assert "drained; runtime:" in stderr
    # Once drained, the listening socket must be gone.
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=2.0)
