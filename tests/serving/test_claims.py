"""Tests for :mod:`repro.serving.claims` (the request type + wire form)."""

import numpy as np
import pytest

from repro.serving.claims import (
    ClaimError,
    LocationClaim,
    claim_from_dict,
    claim_to_dict,
)


class TestLocationClaim:
    def test_observation_coerced_to_float64_vector(self):
        claim = LocationClaim(observation=[1, 2, 3])
        assert claim.observation.dtype == np.float64
        assert claim.observation.shape == (3,)

    def test_claimed_location_coerced(self):
        claim = LocationClaim(observation=[1.0], claimed_location=[10, 20])
        assert claim.claimed_location.shape == (2,)
        assert not claim.needs_localization

    def test_missing_location_needs_localization(self):
        assert LocationClaim(observation=[1.0]).needs_localization

    @pytest.mark.parametrize(
        "observation", [[], [[1.0, 2.0]], np.zeros((2, 2))]
    )
    def test_bad_observation_shape_rejected(self, observation):
        with pytest.raises(ClaimError):
            LocationClaim(observation=observation)

    def test_non_finite_observation_rejected(self):
        with pytest.raises(ClaimError):
            LocationClaim(observation=[1.0, np.nan])

    def test_bad_location_shape_rejected(self):
        with pytest.raises(ClaimError):
            LocationClaim(observation=[1.0], claimed_location=[1.0, 2.0, 3.0])

    def test_non_finite_location_rejected(self):
        with pytest.raises(ClaimError):
            LocationClaim(observation=[1.0], claimed_location=[np.inf, 0.0])

    def test_ids_and_metric_stringified(self):
        claim = LocationClaim(observation=[1.0], claim_id=7, metric="diff")
        assert claim.claim_id == "7"
        assert claim.metric == "diff"


class TestWireForm:
    def test_round_trip(self):
        claim = LocationClaim(
            observation=[1.0, 2.0],
            claimed_location=[10.0, 20.0],
            claim_id="c-1",
            metric="diff",
        )
        decoded = claim_from_dict(claim_to_dict(claim))
        assert np.array_equal(decoded.observation, claim.observation)
        assert np.array_equal(decoded.claimed_location, claim.claimed_location)
        assert decoded.claim_id == "c-1"
        assert decoded.metric == "diff"

    def test_optional_fields_omitted(self):
        payload = claim_to_dict(LocationClaim(observation=[1.0]))
        assert set(payload) == {"observation"}

    def test_missing_observation_rejected(self):
        with pytest.raises(ClaimError, match="observation"):
            claim_from_dict({"id": "x"})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ClaimError, match="unknown claim field"):
            claim_from_dict({"observation": [1.0], "extra": 1})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ClaimError):
            claim_from_dict([1, 2, 3])
