"""Non-finite claim rejection in :meth:`DetectionService.verify_batch`.

:class:`LocationClaim` already rejects NaN/inf at construction, but claim
arrays are shared references — a transport or caller can mutate them after
validation.  The service must therefore re-check finiteness per claim and
answer with a per-claim *error verdict* (anomalous, no score) instead of
letting one poisoned row corrupt the whole batch's localization and
scoring.
"""

import numpy as np
import pytest

from repro.serving import LocationClaim
from repro.serving.claims import ClaimError


def _claims(session, count):
    training = session.training_data
    return [
        LocationClaim(
            observation=training.observations[i].copy(),
            claimed_location=training.estimated_locations[i].copy(),
            claim_id=f"c-{i}",
        )
        for i in range(count)
    ]


class TestConstructionStillRejects:
    def test_nan_observation_rejected_at_construction(self):
        with pytest.raises(ClaimError, match="non-finite"):
            LocationClaim(observation=np.array([1.0, np.nan, 3.0]))

    def test_inf_location_rejected_at_construction(self):
        with pytest.raises(ClaimError, match="non-finite"):
            LocationClaim(
                observation=np.ones(5),
                claimed_location=np.array([np.inf, 0.0]),
            )


class TestNonFiniteBatchRows:
    def test_poisoned_observation_gets_error_verdict(self, tiny_session):
        service = tiny_session.service(metrics=("diff",))
        claims = _claims(tiny_session, 5)
        claims[2].observation[0] = np.nan
        verdicts = service.verify_batch(claims)
        bad = verdicts[2]
        assert bad.decision == "error"
        assert bad.anomalous
        assert bad.error is not None and "observation" in bad.error
        assert np.isnan(bad.score)
        assert bad.claim_id == "c-2"

    def test_poisoned_location_gets_error_verdict(self, tiny_session):
        service = tiny_session.service(metrics=("diff",))
        claims = _claims(tiny_session, 4)
        claims[1].claimed_location[1] = np.inf
        verdicts = service.verify_batch(claims)
        bad = verdicts[1]
        assert bad.decision == "error"
        assert bad.anomalous
        assert "location" in bad.error

    def test_clean_rows_unaffected_by_poisoned_neighbours(self, tiny_session):
        """The batch guarantee: error rows never shift or change the rest."""
        service = tiny_session.service(metrics=("diff",))
        clean = _claims(tiny_session, 6)
        baseline = service.verify_batch(clean)
        poisoned = _claims(tiny_session, 6)
        poisoned[0].observation[:] = np.nan
        poisoned[3].claimed_location[0] = -np.inf
        mixed = service.verify_batch(poisoned)
        assert len(mixed) == len(baseline)
        for row, (before, after) in enumerate(zip(baseline, mixed)):
            if row in (0, 3):
                assert after.decision == "error"
            else:
                assert after.score == before.score
                assert after.anomalous == before.anomalous
                assert after.claim_id == before.claim_id

    def test_all_rows_poisoned(self, tiny_session):
        service = tiny_session.service(metrics=("diff",))
        claims = _claims(tiny_session, 3)
        for claim in claims:
            claim.observation[0] = np.nan
        verdicts = service.verify_batch(claims)
        assert all(verdict.decision == "error" for verdict in verdicts)

    def test_error_verdict_as_dict_carries_error_not_score(self, tiny_session):
        service = tiny_session.service(metrics=("diff",))
        claims = _claims(tiny_session, 2)
        claims[0].observation[0] = np.inf
        payload = service.verify_batch(claims)[0].as_dict()
        assert payload["decision"] == "error"
        assert "error" in payload
        assert "score" not in payload
