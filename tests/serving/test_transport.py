"""Tests for the JSONL transports (TCP + stdio) and :class:`ClaimClient`."""

import asyncio
import io
import json

import numpy as np
import pytest

from repro.serving import (
    ClaimClient,
    LocationClaim,
    RemoteClaimError,
    ServiceRuntime,
    ServingConfig,
    claim_to_dict,
    run_tcp_load,
    serve_stdio,
    serve_tcp,
)


def _claims(service, count):
    """Simple valid claims for the tiny service's deployment."""
    observations = np.eye(service.n_groups)[:count] * 5.0
    return [
        LocationClaim(
            observation=observations[i],
            claimed_location=[250.0, 250.0],
            claim_id=f"tcp-{i}",
        )
        for i in range(count)
    ]


class TestTcp:
    def test_round_trip_matches_direct_scoring(self, tiny_service):
        claims = _claims(tiny_service, 6)
        direct = tiny_service.verify_batch(claims)

        async def run():
            async with ServiceRuntime(
                tiny_service, ServingConfig(max_batch_size=4, max_wait_ms=1.0)
            ) as runtime:
                server = await serve_tcp(runtime, port=0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    async with ClaimClient("127.0.0.1", port) as client:
                        return await asyncio.gather(
                            *[client.submit(claim) for claim in claims]
                        )

        verdicts = asyncio.run(run())
        for online, offline in zip(verdicts, direct):
            assert online.score == offline.score
            assert online.anomalous == offline.anomalous
            assert online.claim_id == offline.claim_id

    def test_announce_reports_bound_address(self, tiny_service):
        seen = {}

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                server = await serve_tcp(
                    runtime,
                    port=0,
                    announce=lambda host, port: seen.update(
                        host=host, port=port
                    ),
                )
                server.close()
                await server.wait_closed()

        asyncio.run(run())
        assert seen["host"] == "127.0.0.1"
        assert seen["port"] > 0

    def test_bad_requests_get_error_lines_not_disconnects(self, tiny_service):
        """One malformed line answers with an error; the stream survives."""

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                server = await serve_tcp(runtime, port=0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    lines = [
                        b"this is not json\n",
                        json.dumps(
                            {"id": "short", "observation": [1.0]}
                        ).encode()
                        + b"\n",
                        json.dumps(
                            {
                                **claim_to_dict(_claims(tiny_service, 1)[0]),
                                "id": "ok",
                            }
                        ).encode()
                        + b"\n",
                    ]
                    writer.write(b"".join(lines))
                    await writer.drain()
                    responses = [
                        json.loads(await reader.readline()) for _ in range(3)
                    ]
                    writer.close()
                    await writer.wait_closed()
                    return responses

        responses = asyncio.run(run())
        by_id = {response.get("id"): response for response in responses}
        assert "invalid JSON" in by_id[None]["error"]
        assert "group" in by_id["short"]["error"]
        assert by_id["ok"]["decision"] in ("accept", "flag")

    def test_remote_error_raised_by_client(self, tiny_service):
        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                server = await serve_tcp(runtime, port=0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    async with ClaimClient("127.0.0.1", port) as client:
                        with pytest.raises(RemoteClaimError):
                            await client.submit(
                                LocationClaim(
                                    observation=[1.0],
                                    claimed_location=[0.0, 0.0],
                                )
                            )

        asyncio.run(run())

    def test_backpressure_relayed_with_retry_hint(self, tiny_service):
        """Rejected claims surface as retry-able remote errors."""

        async def run():
            config = ServingConfig(
                max_batch_size=1,
                max_wait_ms=0.0,
                queue_size=1,
                overflow="reject",
                retry_after_ms=55.0,
            )
            async with ServiceRuntime(tiny_service, config) as runtime:
                server = await serve_tcp(runtime, port=0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    async with ClaimClient("127.0.0.1", port) as client:
                        results = await asyncio.gather(
                            *[
                                client.submit(claim)
                                for claim in _claims(tiny_service, 40)
                            ],
                            return_exceptions=True,
                        )
                        return results

        results = asyncio.run(run())
        overloaded = [
            r
            for r in results
            if isinstance(r, RemoteClaimError) and r.overloaded
        ]
        completed = [r for r in results if not isinstance(r, Exception)]
        assert completed, "some claims must be served"
        if overloaded:  # shedding depends on timing; the hint must relay
            assert all(r.retry_after_ms == 55.0 for r in overloaded)


class TestTcpLoad:
    def test_run_tcp_load_over_multiple_connections(self, tiny_service):
        claims = _claims(tiny_service, 20)
        offline = [verdict.score for verdict in tiny_service.verify_batch(claims)]

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                server = await serve_tcp(runtime, port=0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    return await run_tcp_load(
                        "127.0.0.1", port, claims, connections=2
                    )

        report = asyncio.run(run())
        assert report.completed == 20
        assert report.rejected == 0 and report.errors == 0
        assert list(report.scores) == offline
        assert report.p99_ms >= report.p50_ms
        assert "p99" in report.summary()

    def test_rejects_zero_connections(self, tiny_service):
        async def run():
            await run_tcp_load("127.0.0.1", 1, [], connections=0)

        with pytest.raises(ValueError, match="connections"):
            asyncio.run(run())


class TestStdio:
    def test_serves_jsonl_until_eof(self, tiny_service):
        claims = _claims(tiny_service, 4)
        request_lines = [json.dumps(claim_to_dict(claim)) for claim in claims]
        request_lines.insert(1, "garbage")
        in_stream = io.StringIO("\n".join(request_lines) + "\n")
        out_stream = io.StringIO()

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                return await serve_stdio(
                    runtime, in_stream=in_stream, out_stream=out_stream
                )

        served = asyncio.run(run())
        assert served == 5
        responses = [
            json.loads(line)
            for line in out_stream.getvalue().strip().splitlines()
        ]
        assert len(responses) == 5
        errors = [r for r in responses if "error" in r]
        verdicts = {r["id"]: r for r in responses if "decision" in r}
        assert len(errors) == 1
        direct = tiny_service.verify_batch(claims)
        for offline in direct:
            assert verdicts[offline.claim_id]["score"] == offline.score

    def test_blank_lines_skipped(self, tiny_service):
        in_stream = io.StringIO("\n\n\n")
        out_stream = io.StringIO()

        async def run():
            async with ServiceRuntime(tiny_service) as runtime:
                return await serve_stdio(
                    runtime, in_stream=in_stream, out_stream=out_stream
                )

        assert asyncio.run(run()) == 0
        assert out_stream.getvalue() == ""
