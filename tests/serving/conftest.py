"""Shared fixtures for the serving tests — one tiny trained session."""

from __future__ import annotations

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession


@pytest.fixture(scope="module")
def tiny_config():
    """A fast configuration: real physics, few Monte-Carlo samples."""
    return SimulationConfig(
        group_size=40,
        num_training_samples=30,
        training_samples_per_network=15,
        num_victims=30,
        victims_per_network=15,
        gz_omega=300,
        seed=4242,
    )


@pytest.fixture(scope="module")
def tiny_session(tiny_config):
    """A beaconless session over the tiny configuration."""
    return LadSession(tiny_config)


@pytest.fixture(scope="module")
def tiny_service(tiny_session):
    """A two-metric service trained from the tiny session."""
    return tiny_session.service(metrics=("diff", "add_all"))
