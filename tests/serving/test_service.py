"""Tests for :class:`repro.serving.DetectionService`.

The load-bearing guarantees:

* service verdicts are **bit-identical** to offline ``LadSession`` scoring
  for the same claims — across every registered localizer;
* batch composition never changes a verdict (batched == sequential,
  bit for bit);
* warm startup from an :class:`ArtifactStore` performs zero training.
"""

import numpy as np
import pytest

from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore
from repro.localization.base import LOCALIZERS
from repro.serving import DetectionService, LocationClaim
from repro.serving.claims import ClaimError


def _training_claims(session, metric=None):
    """One claim per training sample: the offline benign-score inputs.

    ``benign_scores`` scores each training observation against the
    expectation at its *estimated* location, so claims built from the
    same ``(observation, estimated location)`` pairs must score
    bit-identically through the service.
    """
    training = session.training_data
    return [
        LocationClaim(
            observation=training.observations[i],
            claimed_location=training.estimated_locations[i],
            claim_id=f"t-{i}",
            metric=metric,
        )
        for i in range(training.observations.shape[0])
    ]


class TestOfflineEquivalence:
    @pytest.mark.parametrize("localizer", sorted(LOCALIZERS.available()))
    def test_scores_bit_identical_across_localizers(
        self, tiny_config, localizer
    ):
        """The acceptance criterion: online == offline, every localizer."""
        session = LadSession(tiny_config, localizer=localizer)
        service = DetectionService.from_session(
            session, metrics=("diff",), false_positive_rate=0.05
        )
        verdicts = service.verify_batch(_training_claims(session))
        scores = np.array([verdict.score for verdict in verdicts])
        assert np.array_equal(scores, session.benign_scores("diff"))
        assert service.threshold("diff") == session.threshold(
            "diff", false_positive_rate=0.05
        )

    def test_attacked_claims_score_like_offline_sweep(self, tiny_session):
        """Attacked serving claims reproduce the offline attacked scores."""
        service = tiny_session.service(metrics=("diff",))
        claims = tiny_session.attacked_claims(
            "diff",
            "dec_bounded",
            degree_of_damage=120.0,
            compromised_fraction=0.1,
        )
        scores = np.array(
            [verdict.score for verdict in service.verify_batch(claims)]
        )
        offline = tiny_session.attacked_scores(
            "diff",
            "dec_bounded",
            degree_of_damage=120.0,
            compromised_fraction=0.1,
        )
        assert np.array_equal(scores, offline)
        outcome = tiny_session.outcome(
            "diff",
            "dec_bounded",
            degree_of_damage=120.0,
            compromised_fraction=0.1,
        )
        online_rate = np.mean(scores > service.threshold("diff"))
        assert online_rate == outcome.detection_rate

    def test_flag_rule_matches_verdict_type(self, tiny_service, tiny_session):
        verdict = tiny_service.verify_batch(
            _training_claims(tiny_session)[:1]
        )[0]
        assert verdict.anomalous == (
            verdict.score > tiny_service.threshold("diff")
        )
        assert verdict.decision in ("accept", "flag")


class TestBatchInvariance:
    def test_batched_equals_sequential_bit_for_bit(
        self, tiny_service, tiny_session
    ):
        claims = _training_claims(tiny_session)
        batched = tiny_service.verify_batch(claims)
        sequential = [tiny_service.verify_batch([claim])[0] for claim in claims]
        for together, alone in zip(batched, sequential):
            assert together.score == alone.score
            assert together.anomalous == alone.anomalous

    def test_batch_composition_irrelevant(self, tiny_service, tiny_session):
        claims = _training_claims(tiny_session)
        full = {
            verdict.claim_id: verdict.score
            for verdict in tiny_service.verify_batch(claims)
        }
        shuffled = list(reversed(claims))
        for verdict in tiny_service.verify_batch(shuffled[:7]):
            assert verdict.score == full[verdict.claim_id]

    def test_mixed_metrics_in_one_batch(self, tiny_service, tiny_session):
        claims = _training_claims(tiny_session)[:6]
        mixed = [
            LocationClaim(
                observation=claim.observation,
                claimed_location=claim.claimed_location,
                claim_id=claim.claim_id,
                metric="diff" if i % 2 == 0 else "add_all",
            )
            for i, claim in enumerate(claims)
        ]
        verdicts = tiny_service.verify_batch(mixed)
        for i, verdict in enumerate(verdicts):
            name = "diff" if i % 2 == 0 else "add_all"
            pure = tiny_service.verify_batch(
                [
                    LocationClaim(
                        observation=mixed[i].observation,
                        claimed_location=mixed[i].claimed_location,
                        metric=name,
                    )
                ]
            )[0]
            assert verdict.metric == name
            assert verdict.score == pure.score

    def test_empty_batch(self, tiny_service):
        assert tiny_service.verify_batch([]) == []


class TestLocalization:
    def test_localize_then_verify_matches_manual_pipeline(
        self, tiny_service, tiny_session
    ):
        training = tiny_session.training_data
        claims = [
            LocationClaim(observation=training.observations[i])
            for i in range(5)
        ]
        verdicts = tiny_service.verify_batch(claims)
        estimates = tiny_session.localizer.localize_observations(
            tiny_session.knowledge, training.observations[:5]
        )
        expected = tiny_session.knowledge.expected_observation(estimates)
        from repro.core.metrics import resolve_metric

        scores = resolve_metric("diff").compute(
            training.observations[:5],
            expected,
            group_size=tiny_session.knowledge.group_size,
        )
        assert np.array_equal(
            np.array([verdict.score for verdict in verdicts]), scores
        )

    def test_beacon_scheme_rejects_locationless_claims(self, tiny_config):
        session = LadSession(tiny_config, localizer="centroid")
        service = DetectionService.from_session(session, metrics=("diff",))
        training = session.training_data
        with pytest.raises(ClaimError, match="localize"):
            service.verify_batch(
                [LocationClaim(observation=training.observations[0])]
            )


class TestValidation:
    def test_wrong_observation_length_rejected(self, tiny_service):
        with pytest.raises(ClaimError, match="group"):
            tiny_service.validate(
                LocationClaim(
                    observation=[1.0, 2.0], claimed_location=[0.0, 0.0]
                )
            )

    def test_unthresholded_metric_rejected(self, tiny_service):
        claim = LocationClaim(
            observation=np.zeros(tiny_service.n_groups),
            claimed_location=[0.0, 0.0],
            metric="probability",
        )
        with pytest.raises(ClaimError, match="threshold"):
            tiny_service.validate(claim)

    def test_needs_at_least_one_threshold(self, tiny_session):
        with pytest.raises(ValueError, match="at least one"):
            DetectionService(tiny_session.knowledge, thresholds={})

    def test_default_metric_must_be_thresholded(self, tiny_session):
        with pytest.raises(ValueError, match="no trained"):
            DetectionService(
                tiny_session.knowledge,
                thresholds={"diff": 1.0},
                metric="add_all",
            )


class TestWarmStartup:
    METRICS = ("diff", "add_all")

    def test_warm_startup_needs_a_store(self, tiny_session):
        with pytest.raises(ValueError, match="store"):
            DetectionService.from_session(tiny_session, require_warm=True)

    def test_cold_store_refuses_instead_of_training(
        self, tiny_config, tmp_path
    ):
        session = LadSession(tiny_config, store=ArtifactStore(tmp_path))
        with pytest.raises(KeyError, match="cold store"):
            DetectionService.from_session(
                session, metrics=self.METRICS, require_warm=True
            )

    def test_warm_startup_trains_nothing(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """A warm service boots purely from store hits — zero training."""
        store = ArtifactStore(tmp_path)
        live = LadSession(tiny_config, store=store)
        expected = {
            name: live.threshold(name, false_positive_rate=0.02)
            for name in self.METRICS
        }

        import repro.experiments.session as session_module

        def refuse(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("training ran during a warm startup")

        monkeypatch.setattr(session_module, "collect_training_data", refuse)
        warm_store = ArtifactStore(tmp_path)
        warm_session = LadSession(tiny_config, store=warm_store)
        service = DetectionService.from_session(
            warm_session,
            metrics=self.METRICS,
            false_positive_rate=0.02,
            require_warm=True,
        )
        assert warm_store.hit_counts["benign_scores"] == len(self.METRICS)
        assert warm_store.misses == 0
        for name in self.METRICS:
            assert service.threshold(name) == expected[name]


class TestFromSpec:
    def test_from_spec_file(self):
        from pathlib import Path

        spec_path = (
            Path(__file__).parents[2] / "examples" / "specs" / "tiny_sweep.toml"
        )
        service = DetectionService.from_spec(spec_path)
        # The spec's metric list and FP budget become the service's.
        assert service.metrics == ["diff", "probability"]
        assert service.false_positive_rate == 0.05
