"""Tests for :mod:`repro.registry` and the built-in component registries."""

import numpy as np
import pytest

import repro.attacks
import repro.deployment
import repro.localization
import repro.metrics
from repro.registry import Registry, normalize_name


class TestNormalization:
    def test_case_spaces_and_dashes_fold(self):
        assert normalize_name(" Dec-Bounded ") == "dec_bounded"
        assert normalize_name("add all") == "add_all"
        assert normalize_name("DIFF") == "diff"


class TestGenericRegistry:
    def test_register_by_class_name_attribute(self):
        reg = Registry("widget")

        @reg.register("alias_one", "alias-two")
        class Widget:
            name = "widget_a"

        assert reg.available() == ["widget_a"]
        assert reg.get("Alias One") is Widget
        assert reg.get("alias_two") is Widget
        assert reg.canonical("alias-two") == "widget_a"
        assert "widget_a" in reg and "alias_one" in reg
        assert len(reg) == 1 and list(reg) == ["widget_a"]

    def test_register_with_explicit_name(self):
        reg = Registry("widget")

        @reg.register(name="short")
        class Widget:
            name = "a-very-long-name"

        assert reg.available() == ["short"]
        assert reg.canonical("short") == "short"

    def test_create_forwards_kwargs_and_resolve_passes_instances(self):
        reg = Registry("widget")

        @reg.register()
        class Widget:
            name = "w"

            def __init__(self, size=1):
                self.size = size

        assert reg.create("w", size=5).size == 5
        instance = Widget(size=9)
        assert reg.resolve(instance) is instance
        assert reg.resolve("w").size == 1

    def test_unknown_name_lists_choices(self):
        reg = Registry("widget")

        @reg.register()
        class Widget:
            name = "w"

        with pytest.raises(ValueError, match=r"unknown widget 'nope'.*\['w'\]"):
            reg.get("nope")
        with pytest.raises(ValueError, match="unknown widget"):
            reg.canonical("nope")

    def test_nameless_class_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="no 'name' attribute"):
            reg.register()(object)

    def test_alias_cannot_shadow_other_canonical_name(self):
        reg = Registry("widget")

        @reg.register()
        class A:
            name = "a"

        with pytest.raises(ValueError, match="shadow"):

            @reg.register("a")
            class B:
                name = "b"

    def test_canonical_name_cannot_hide_behind_existing_alias(self):
        reg = Registry("widget")

        @reg.register("short")
        class A:
            name = "a"

        # Lookups resolve aliases first, so registering a component whose
        # canonical name equals A's alias would make it unreachable.
        with pytest.raises(ValueError, match="already an alias"):

            @reg.register(name="short")
            class B:
                name = "b"

    def test_reregistering_overrides(self):
        reg = Registry("widget")

        @reg.register()
        class A:
            name = "a"

        @reg.register(name="a")
        class A2:
            name = "a"

        assert reg.get("a") is A2


class TestBuiltinRegistries:
    def test_metric_registry(self):
        assert repro.metrics.available() == ["add_all", "diff", "probability"]
        metric = repro.metrics.create("dm")
        assert metric.name == "diff"
        assert repro.metrics.resolve(metric) is metric

    def test_attack_registry(self):
        assert repro.attacks.available() == [
            "dec_bounded",
            "dec_only",
            "rssi_amp",
            "tdoa_skew",
        ]
        attack = repro.attacks.create("Dec-Only")
        assert attack.name == "dec_only"
        assert not attack.allows_increase

    def test_deployment_registry(self):
        assert repro.deployment.available() == ["grid", "hex", "random"]
        model = repro.deployment.create("grid", rows=4, cols=5)
        assert model.n_groups == 20

    def test_localizer_registry(self):
        assert repro.localization.available() == [
            "apit",
            "beaconless",
            "centroid",
            "dvhop",
            "mmse",
            "rssi",
            "tdoa",
        ]
        localizer = repro.localization.create("beaconless", resolution=4.0)
        assert localizer.resolution == 4.0
        assert repro.localization.registry.canonical("mle") == "beaconless"
        assert repro.localization.registry.canonical("dv-hop") == "dvhop"
        # Every advertised name must be creatable without arguments.
        for name in repro.localization.available():
            assert repro.localization.create(name) is not None

    def test_third_party_metric_pluggable(self):
        @repro.metrics.register(name="_test_sum")
        class SumMetric(repro.metrics.AnomalyMetric):
            name = "_test_sum"
            paper_name = "Sum Metric"

            def compute(self, observations, expected, group_size=None):
                return float(np.asarray(observations).sum())

        try:
            assert "_test_sum" in repro.metrics.registry
            assert repro.metrics.create("_test_sum").compute(
                np.ones(4), np.zeros(4)
            ) == pytest.approx(4.0)
        finally:
            # Keep the shared registry clean for the other tests.
            repro.metrics.registry._classes.pop("_test_sum", None)

    def test_figure_specs_resolve_in_registries(self):
        """Registry completeness: every component name a figure spec uses
        resolves in its registry (the specs validate at construction)."""
        from repro.experiments.figures import FIGURE_SPECS

        assert set(FIGURE_SPECS) == {f"fig{i}" for i in range(4, 10)} | {
            "figl",
            "figm",
            "figt",
        }
        for figure_id, build in FIGURE_SPECS.items():
            spec = build()
            for metric in spec.metrics:
                assert metric in repro.metrics.registry, (figure_id, metric)
            for attack in spec.attacks:
                assert attack in repro.attacks.registry, (figure_id, attack)
            for localizer in spec.localizer_values():
                assert localizer in repro.localization.registry
