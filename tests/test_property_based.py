"""Property-based tests (hypothesis) for the core invariants.

These cover the data structures and algorithms whose correctness the whole
evaluation rests on: the ``g(z)`` table, the anomaly metrics, the attack
constraint classes, the greedy adversary and the ROC bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.constraints import DecBoundedAttack, DecOnlyAttack
from repro.attacks.greedy import GreedyMetricMinimizer
from repro.core.metrics import AddAllMetric, DiffMetric, ProbabilityMetric
from repro.deployment.gz import GzTable, gz_quadrature
from repro.localization.base import BeaconInfrastructure
from repro.types import Region
from repro.utils.stats import binomial_pmf, roc_points
from repro.utils.tables import LookupTable1D

# A session-wide g(z) table reused by several properties (construction is
# the expensive part).
_GZ_TABLE = GzTable(100.0, 50.0, omega=600, z_max=800.0)

# Common hypothesis settings: the numerical kernels are fast, but network
# construction inside examples is not needed here.
_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

observation_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=30),
    elements=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)


class TestGzProperties:
    @_SETTINGS
    @given(z=st.floats(min_value=0.0, max_value=800.0))
    def test_table_within_unit_interval(self, z):
        value = float(_GZ_TABLE(z))
        assert 0.0 <= value <= 1.0

    @_SETTINGS
    @given(
        z1=st.floats(min_value=0.0, max_value=790.0),
        dz=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_table_monotone_decreasing(self, z1, dz):
        assert float(_GZ_TABLE(z1 + dz)) <= float(_GZ_TABLE(z1)) + 1e-6

    @_SETTINGS
    @given(
        radio_range=st.floats(min_value=20.0, max_value=200.0),
        sigma=st.floats(min_value=10.0, max_value=120.0),
    )
    def test_value_at_zero_matches_rayleigh(self, radio_range, sigma):
        expected = 1.0 - np.exp(-(radio_range**2) / (2 * sigma**2))
        assert gz_quadrature(
            0.0,
            radio_range,
            sigma,
        ) == pytest.approx(expected, abs=1e-6)


class TestLookupTableProperties:
    @_SETTINGS
    @given(
        coeffs=st.tuples(
            st.floats(min_value=-5, max_value=5), st.floats(min_value=-5, max_value=5)
        ),
        query=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_linear_functions_reproduced_exactly(self, coeffs, query):
        a, b = coeffs
        table = LookupTable1D.from_function(lambda x: a * x + b, 0.0, 10.0, 7)
        assert float(table(query)) == pytest.approx(a * query + b, abs=1e-9)

    @_SETTINGS
    @given(query=st.floats(min_value=-100.0, max_value=100.0))
    def test_clamped_output_within_value_range(self, query):
        table = LookupTable1D.from_function(np.sin, 0.0, np.pi, 64)
        value = float(table(query))
        assert table.values.min() - 1e-12 <= value <= table.values.max() + 1e-12


class TestMetricProperties:
    @_SETTINGS
    @given(obs=observation_arrays)
    def test_diff_metric_zero_iff_equal(self, obs):
        assert DiffMetric().compute(obs, obs) == pytest.approx(0.0)

    @_SETTINGS
    @given(obs=observation_arrays, shift=st.floats(min_value=0.0, max_value=10.0))
    def test_diff_metric_is_l1_distance(self, obs, shift):
        expected = obs + shift
        assert DiffMetric().compute(obs, expected) == pytest.approx(shift * obs.size)

    @_SETTINGS
    @given(obs=observation_arrays)
    def test_add_all_lower_bound(self, obs):
        rng = np.random.default_rng(0)
        expected = rng.uniform(0, 50, size=obs.shape)
        value = AddAllMetric().compute(obs, expected)
        assert value >= max(obs.sum(), expected.sum()) - 1e-9
        assert value <= obs.sum() + expected.sum() + 1e-9

    @_SETTINGS
    @given(
        obs=observation_arrays,
        group_size=st.integers(min_value=50, max_value=200),
    )
    def test_probability_metric_non_negative_and_finite(self, obs, group_size):
        rng = np.random.default_rng(1)
        expected = rng.uniform(0, group_size, size=obs.shape)
        score = ProbabilityMetric().compute(obs, expected, group_size=group_size)
        assert np.isfinite(score)
        assert score >= 0.0

    @_SETTINGS
    @given(
        k=st.integers(min_value=0, max_value=40),
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_binomial_pmf_bounded(self, k, n, p):
        assume(k <= n)
        value = binomial_pmf(np.array([float(k)]), n, np.array([p]))[0]
        assert 0.0 <= value <= 1.0


class TestAttackProperties:
    @_SETTINGS
    @given(
        obs=observation_arrays,
        budget=st.integers(min_value=0, max_value=60),
        metric=st.sampled_from(["diff", "add_all", "probability"]),
        attack=st.sampled_from(["dec_bounded", "dec_only"]),
    )
    def test_greedy_taint_always_feasible(self, obs, budget, metric, attack):
        rng = np.random.default_rng(42)
        group_size = 60
        expected = rng.uniform(0, 20, size=obs.shape)
        obs = np.minimum(obs, group_size)
        adversary = GreedyMetricMinimizer(metric, attack)
        tainted = adversary.taint(obs, expected, budget, group_size=group_size)
        constraint = DecBoundedAttack() if attack == "dec_bounded" else DecOnlyAttack()
        assert constraint.is_feasible(obs, tainted, budget, group_size=None)
        assert np.all(tainted >= -1e-9)

    @_SETTINGS
    @given(
        obs=observation_arrays,
        budget=st.integers(min_value=0, max_value=60),
        metric=st.sampled_from(["diff", "add_all"]),
    )
    def test_greedy_taint_never_increases_metric(self, obs, budget, metric):
        """Attacking can only make the metric smaller or equal — otherwise
        the adversary would simply not attack."""
        rng = np.random.default_rng(7)
        expected = rng.uniform(0, 20, size=obs.shape)
        adversary = GreedyMetricMinimizer(metric, "dec_bounded")
        tainted = adversary.taint(obs, expected, budget, group_size=100)
        metric_obj = DiffMetric() if metric == "diff" else AddAllMetric()
        assert metric_obj.compute(
            tainted,
            expected,
        ) <= metric_obj.compute(obs, expected) + 1e-9

    @_SETTINGS
    @given(obs=observation_arrays, budget=st.integers(min_value=0, max_value=30))
    def test_dec_only_bounds_hold(self, obs, budget):
        lower, upper = DecOnlyAttack().entry_bounds(obs, budget)
        assert np.all(lower >= -1e-12)
        assert np.all(upper == obs)
        assert np.all(lower <= upper + 1e-12)


#: Beacon positions reused by the infrastructure properties (construction
#: is cheap; a fixed, irregular set keeps the distance geometry non-trivial).
_BEACON_POSITIONS = np.array(
    [
        [100.0, 100.0],
        [430.0, 80.0],
        [250.0, 260.0],
        [60.0, 410.0],
        [390.0, 440.0],
        [500.0, 250.0],
    ]
)

point_coords = st.tuples(
    st.floats(min_value=-200.0, max_value=700.0, allow_nan=False),
    st.floats(min_value=-200.0, max_value=700.0, allow_nan=False),
)


class TestBeaconInfrastructureProperties:
    @_SETTINGS
    @given(
        point=point_coords,
        transmit_range=st.floats(min_value=10.0, max_value=800.0),
    )
    def test_audible_consistent_with_distance_support(
        self, point, transmit_range
    ):
        """``audible_from`` is exactly the support of the (noise-free)
        measured distances at or below the transmit range."""
        beacons = BeaconInfrastructure(
            positions=_BEACON_POSITIONS, transmit_range=transmit_range
        )
        audible = beacons.audible_from(point)
        distances = beacons.measured_distances(point)
        np.testing.assert_array_equal(
            audible, np.flatnonzero(distances <= transmit_range)
        )

    @_SETTINGS
    @given(point=point_coords)
    def test_noise_free_distances_are_exact(self, point):
        beacons = BeaconInfrastructure(positions=_BEACON_POSITIONS)
        distances = beacons.measured_distances(point)
        expected = np.hypot(
            _BEACON_POSITIONS[:, 0] - point[0],
            _BEACON_POSITIONS[:, 1] - point[1],
        )
        np.testing.assert_array_equal(distances, expected)
        assert np.all(distances >= 0.0)

    @_SETTINGS
    @given(
        beacon=st.integers(min_value=0, max_value=len(_BEACON_POSITIONS) - 1),
        lie=point_coords,
    )
    def test_declare_false_position_only_perturbs_declared_beacon(
        self, beacon, lie
    ):
        beacons = BeaconInfrastructure(positions=_BEACON_POSITIONS)
        before = beacons.declared_positions.copy()
        beacons.declare_false_position(beacon, lie)
        others = np.arange(beacons.num_beacons) != beacon
        np.testing.assert_array_equal(
            beacons.declared_positions[others], before[others]
        )
        np.testing.assert_array_equal(beacons.declared_positions[beacon], lie)
        # True positions never move; only the declared one lies.
        np.testing.assert_array_equal(beacons.positions, _BEACON_POSITIONS)
        np.testing.assert_array_equal(beacons.compromised, ~others)


class TestRocProperties:
    @_SETTINGS
    @given(
        benign=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=60),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        attacked=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=60),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
    )
    def test_roc_bounded_and_monotone(self, benign, attacked):
        _, fp, dr = roc_points(benign, attacked)
        assert np.all((fp >= 0) & (fp <= 1))
        assert np.all((dr >= 0) & (dr <= 1))
        assert np.all(np.diff(fp) >= -1e-12)
        assert np.all(np.diff(dr) >= -1e-12)


class TestRegionProperties:
    @_SETTINGS
    @given(
        x=st.floats(min_value=-2000, max_value=2000),
        y=st.floats(min_value=-2000, max_value=2000),
    )
    def test_clip_always_inside(self, x, y):
        region = Region(0.0, 0.0, 1000.0, 1000.0)
        clipped = region.clip([[x, y]])
        assert region.contains(clipped).all()

    @_SETTINGS
    @given(
        x=st.floats(min_value=0, max_value=1000),
        y=st.floats(min_value=0, max_value=1000),
    )
    def test_points_inside_are_clip_fixed_points(self, x, y):
        region = Region(0.0, 0.0, 1000.0, 1000.0)
        np.testing.assert_allclose(region.clip([[x, y]])[0], [x, y])
