"""Tests for :mod:`repro.attacks.localization_attacks`."""

import numpy as np
import pytest

from repro.attacks.localization_attacks import (
    BeaconLieAttack,
    DisplacementAttack,
    replay_beacon_attack,
)
from repro.localization.base import BeaconInfrastructure
from repro.types import Region


class TestDisplacementAttack:
    def test_exact_displacement_distance(self):
        attack = DisplacementAttack(degree_of_damage=120.0)
        actual = np.array([500.0, 500.0])
        for seed in range(10):
            spoofed = attack.spoof_location(
                actual,
                rng=seed,
                region=Region(0, 0, 1000, 1000),
            )
            assert np.hypot(*(spoofed - actual)) == pytest.approx(120.0)

    def test_batch_displacement(self):
        attack = DisplacementAttack(degree_of_damage=80.0)
        region = Region(0, 0, 1000, 1000)
        actual = np.array([[100.0, 100.0], [500.0, 900.0], [950.0, 40.0]])
        spoofed = attack.spoof_locations(actual, rng=1, region=region)
        np.testing.assert_allclose(np.hypot(*(spoofed - actual).T), 80.0, atol=1e-9)
        assert region.contains(spoofed).all()

    def test_directions_vary(self):
        attack = DisplacementAttack(degree_of_damage=50.0)
        actual = np.tile([500.0, 500.0], (50, 1))
        spoofed = attack.spoof_locations(actual, rng=2)
        # Angles should spread over the circle, not collapse to one value.
        angles = np.arctan2(spoofed[:, 1] - 500.0, spoofed[:, 0] - 500.0)
        assert angles.std() > 0.5

    def test_outside_region_allowed_when_disabled(self):
        attack = DisplacementAttack(degree_of_damage=300.0, keep_inside_region=False)
        region = Region(0, 0, 1000, 1000)
        spoofed = attack.spoof_locations(
            np.tile([10.0, 10.0], (100, 1)), rng=3, region=region
        )
        assert not region.contains(spoofed).all()

    def test_zero_damage_is_identity(self):
        attack = DisplacementAttack(degree_of_damage=0.0)
        actual = np.array([123.0, 456.0])
        np.testing.assert_allclose(attack.spoof_location(actual, rng=0), actual)

    def test_negative_damage_rejected(self):
        with pytest.raises(ValueError):
            DisplacementAttack(degree_of_damage=-1.0)


class TestBeaconLieAttack:
    @pytest.fixture()
    def beacons(self):
        return BeaconInfrastructure(
            positions=np.array([[100.0, 100.0], [300.0, 300.0], [500.0, 100.0]]),
            transmit_range=300.0,
        )

    def test_compromised_beacons_lie_by_displacement(self, beacons):
        attack = BeaconLieAttack(displacement=200.0)
        tampered = attack.apply(beacons, [0, 2], rng=0)
        for idx in (0, 2):
            shift = np.hypot(
                *(tampered.declared_positions[idx] - tampered.positions[idx])
            )
            assert shift == pytest.approx(200.0)
            assert tampered.compromised[idx]
        # Honest beacon untouched.
        np.testing.assert_allclose(
            tampered.declared_positions[1], beacons.positions[1]
        )
        # The original infrastructure is not modified.
        assert not beacons.compromised.any()

    def test_region_constraint(self, beacons):
        region = Region(0, 0, 600, 400)
        tampered = BeaconLieAttack(displacement=250.0).apply(
            beacons, [1], rng=1, region=region
        )
        assert region.contains(tampered.declared_positions).all()

    def test_invalid_displacement(self):
        with pytest.raises(ValueError):
            BeaconLieAttack(displacement=0.0)


class TestReplayBeaconAttack:
    def test_adds_phantom_beacon(self):
        beacons = BeaconInfrastructure(
            positions=np.array([[0.0, 0.0], [800.0, 800.0]]), transmit_range=200.0
        )
        replayed = replay_beacon_attack(
            beacons,
            replayed_beacon=1,
            replay_location=(50.0, 50.0),
        )
        assert replayed.num_beacons == 3
        # Phantom is audible near the replay location ...
        assert 2 in replayed.audible_from((60.0, 60.0))
        # ... but declares the remote beacon's position.
        np.testing.assert_allclose(replayed.declared_positions[2], [800.0, 800.0])
        assert replayed.compromised[2]
        # No original beacon needed to be compromised.
        assert not replayed.compromised[:2].any()
