"""Tests for :mod:`repro.attacks.primitives` (Figure 3 attack scenarios)."""

import numpy as np
import pytest

from repro.attacks.base import AttackBudget
from repro.attacks.constraints import DecBoundedAttack, DecOnlyAttack
from repro.attacks.primitives import (
    ImpersonationAttack,
    MultiImpersonationAttack,
    RangeChangeAttack,
    SilenceAttack,
)
from repro.network.messages import BroadcastLog, GroupAnnouncement, collect_observation
from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio


@pytest.fixture()
def honest():
    return np.array([4.0, 0.0, 7.0, 2.0, 1.0])


class TestSilenceAttack:
    def test_total_decrease_equals_budget(self, honest):
        out = SilenceAttack().apply(honest, AttackBudget(5), rng=0)
        assert honest.sum() - out.sum() == pytest.approx(5.0)
        assert np.all(out >= 0.0)
        assert np.all(out <= honest)

    def test_never_goes_negative_when_budget_exceeds_nodes(self, honest):
        out = SilenceAttack().apply(honest, AttackBudget(100), rng=1)
        np.testing.assert_allclose(out, 0.0)

    def test_is_dec_only_feasible(self, honest):
        out = SilenceAttack().apply(honest, AttackBudget(6), rng=2)
        assert DecOnlyAttack().is_feasible(honest, out, 6)

    def test_does_not_mutate_input(self, honest):
        snapshot = honest.copy()
        SilenceAttack().apply(honest, AttackBudget(3), rng=3)
        np.testing.assert_allclose(honest, snapshot)

    def test_message_level_form(self):
        log = BroadcastLog(receiver=0)
        log.extend(
            [
                GroupAnnouncement(sender=1, claimed_group=0),
                GroupAnnouncement(sender=2, claimed_group=1),
            ]
        )
        silenced = SilenceAttack.silence_log(log, [1])
        obs = collect_observation(silenced, 2)
        np.testing.assert_allclose(obs, [0.0, 1.0])


class TestImpersonationAttack:
    def test_preserves_total_count(self, honest):
        out = ImpersonationAttack().apply(honest, AttackBudget(4), rng=0)
        assert out.sum() == pytest.approx(honest.sum())
        assert np.all(out >= 0.0)

    def test_is_dec_bounded_feasible(self, honest):
        out = ImpersonationAttack().apply(honest, AttackBudget(4), rng=1)
        assert DecBoundedAttack().is_feasible(honest, out, 4)

    def test_targeted_group_receives_counts(self, honest):
        out = ImpersonationAttack(target_group=1).apply(honest, AttackBudget(3), rng=2)
        assert out[1] == honest[1] + 3.0

    def test_message_level_form(self):
        log = BroadcastLog(receiver=0)
        log.add(GroupAnnouncement(sender=5, claimed_group=0))
        rewritten = ImpersonationAttack.impersonate_log(log, node=5, claimed_group=3)
        assert rewritten.messages[0].claimed_group == 3
        assert rewritten.messages[0].sender == 5


class TestMultiImpersonationAttack:
    def test_adds_claims_per_node(self, honest):
        attack = MultiImpersonationAttack(claims_per_node=5)
        out = attack.apply(honest, AttackBudget(3), rng=0)
        assert out.sum() == pytest.approx(honest.sum() + 15.0)
        assert np.all(out >= honest)

    def test_target_groups_restriction(self, honest):
        attack = MultiImpersonationAttack(claims_per_node=4, target_groups=[2])
        out = attack.apply(honest, AttackBudget(2), rng=1)
        assert out[2] == honest[2] + 8.0
        np.testing.assert_allclose(np.delete(out, 2), np.delete(honest, 2))

    def test_zero_budget_noop(self, honest):
        out = MultiImpersonationAttack().apply(honest, AttackBudget(0), rng=2)
        np.testing.assert_allclose(out, honest)

    def test_forged_messages_unauthenticated(self):
        log = BroadcastLog(receiver=0)
        forged = MultiImpersonationAttack.forge_log(log, claims=[1, 1, 0])
        assert len(forged) == 3
        assert all(not m.authenticated for m in forged.messages)
        # Authentication filtering removes all of them.
        np.testing.assert_allclose(
            collect_observation(forged, 2, require_authentication=True), 0.0
        )

    def test_invalid_claims_per_node(self):
        with pytest.raises(ValueError):
            MultiImpersonationAttack(claims_per_node=0)


class TestRangeChangeAttack:
    def test_observation_level_adds_counts(self, honest):
        out = RangeChangeAttack().apply(honest, AttackBudget(4), rng=0)
        assert out.sum() == pytest.approx(honest.sum() + 4.0)
        assert np.all(out >= honest)

    def test_network_level_brings_distant_node_into_range(self):
        positions = np.array([[0.0, 0.0], [150.0, 0.0], [10.0, 10.0]])
        network = SensorNetwork(
            positions=positions,
            group_ids=np.array([0, 1, 0]),
            n_groups=2,
            radio=UnitDiskRadio(100.0),
        )
        before = NeighborIndex(network).observation_of_node(0)
        np.testing.assert_allclose(before, [1.0, 0.0])

        tampered = RangeChangeAttack(
            range_multiplier=2.0,
        ).apply_to_network(network, [1])
        after = NeighborIndex(tampered).observation_of_node(0)
        np.testing.assert_allclose(after, [1.0, 1.0])
        assert tampered.compromised[1]
        # Original network untouched.
        assert not network.compromised[1]

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            RangeChangeAttack(range_multiplier=0.5)
