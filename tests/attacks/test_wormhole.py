"""Tests for :mod:`repro.attacks.wormhole`."""

import numpy as np
import pytest

from repro.attacks.wormhole import WormholeAttack
from repro.network.messages import collect_observation, run_announcement_round
from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio


@pytest.fixture()
def clustered_network():
    """Two clusters 600 m apart, groups 0 (west) and 1 (east)."""
    rng = np.random.default_rng(0)
    west = rng.normal([100.0, 100.0], 20.0, size=(15, 2))
    east = rng.normal([700.0, 100.0], 20.0, size=(15, 2))
    positions = np.vstack([west, east])
    group_ids = np.array([0] * 15 + [1] * 15)
    return SensorNetwork(
        positions=positions,
        group_ids=group_ids,
        n_groups=2,
        radio=UnitDiskRadio(100.0),
    )


class TestWormholeAttack:
    def test_tunnel_inflates_remote_group_counts(self, clustered_network):
        index = NeighborIndex(clustered_network)
        victim = 20  # an east-cluster node
        logs = run_announcement_round(clustered_network, [victim], index=index)
        before = collect_observation(logs[victim], 2)
        assert before[0] == 0.0  # no west-cluster neighbours without the wormhole

        wormhole = WormholeAttack(
            source_end=np.array([100.0, 100.0]), sink_end=np.array([700.0, 100.0])
        )
        tampered = wormhole.inject(clustered_network, logs, index=index)
        after = collect_observation(tampered[victim], 2)
        assert after[0] > 0.0
        assert after[1] == before[1]

    def test_far_receiver_unaffected(self, clustered_network):
        index = NeighborIndex(clustered_network)
        victim = 20
        logs = run_announcement_round(clustered_network, [victim], index=index)
        wormhole = WormholeAttack(
            source_end=np.array([100.0, 100.0]), sink_end=np.array([400.0, 400.0])
        )
        tampered = wormhole.inject(clustered_network, logs, index=index)
        np.testing.assert_allclose(
            collect_observation(tampered[victim], 2),
            collect_observation(logs[victim], 2),
        )

    def test_tunneled_messages_pass_authentication(self, clustered_network):
        wormhole = WormholeAttack(
            source_end=np.array([100.0, 100.0]),
            sink_end=np.array([700.0, 100.0]),
        )
        announcements = wormhole.tunneled_announcements(clustered_network)
        assert len(announcements) > 0
        assert all(m.authenticated for m in announcements)

    def test_receiver_does_not_count_itself(self, clustered_network):
        index = NeighborIndex(clustered_network)
        victim = 0  # west-cluster node, also picked up by the source end
        logs = run_announcement_round(clustered_network, [victim], index=index)
        wormhole = WormholeAttack(
            source_end=np.array([100.0, 100.0]), sink_end=np.array([100.0, 100.0])
        )
        tampered = wormhole.inject(clustered_network, logs, index=index)
        senders = [m.sender for m in tampered[victim].messages]
        assert victim not in senders

    def test_tunnel_length(self):
        wormhole = WormholeAttack(
            source_end=np.array([0.0, 0.0]), sink_end=np.array([300.0, 400.0])
        )
        assert wormhole.tunnel_length() == pytest.approx(500.0)

    def test_original_logs_not_modified(self, clustered_network):
        index = NeighborIndex(clustered_network)
        logs = run_announcement_round(clustered_network, [20], index=index)
        count_before = len(logs[20])
        wormhole = WormholeAttack(
            source_end=np.array([100.0, 100.0]), sink_end=np.array([700.0, 100.0])
        )
        wormhole.inject(clustered_network, logs, index=index)
        assert len(logs[20]) == count_before
