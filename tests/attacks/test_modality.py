"""Tests for :mod:`repro.attacks.modality` (physical-layer attacks)."""

import numpy as np
import pytest

from repro.attacks.base import AttackBudget
from repro.attacks.constraints import ATTACKS, resolve_attack_class
from repro.attacks.modality import (
    RssiAmplificationAttack,
    TdoaTimingSkewAttack,
)
from repro.localization import create as create_localizer

ATTACK_CLASSES = [RssiAmplificationAttack, TdoaTimingSkewAttack]


class TestRegistry:
    def test_registered_with_aliases(self):
        assert "rssi_amp" in ATTACKS.available()
        assert "tdoa_skew" in ATTACKS.available()
        assert ATTACKS.canonical("rssi_amplification") == "rssi_amp"
        assert ATTACKS.canonical("tdoa_timing_skew") == "tdoa_skew"

    def test_resolvable_like_the_paper_classes(self):
        attack = resolve_attack_class("rssi_amp")
        assert isinstance(attack, RssiAmplificationAttack)
        assert not attack.taints_observation


class TestPhysicalCaps:
    def test_rssi_cap_follows_the_path_loss_model(self):
        # 6 dB of gain at eta=2 stretches ranges by 10^(6/20) ~ 1.995x:
        # at a 250 m reference distance that is ~248.8 m of error.
        attack = RssiAmplificationAttack(
            gain_db=6.0, path_loss_exponent=2.0, reference_range=250.0
        )
        expected = 250.0 * (10.0 ** (6.0 / 20.0) - 1.0)
        assert attack.max_displacement() == pytest.approx(expected)

    def test_tdoa_cap_is_skew_times_speed(self):
        attack = TdoaTimingSkewAttack(skew_ns=500.0)
        assert attack.max_displacement() == pytest.approx(149.896229)
        acoustic = TdoaTimingSkewAttack(skew_ns=500.0, propagation_speed=343.0)
        assert acoustic.max_displacement() == pytest.approx(500e-9 * 343.0)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RssiAmplificationAttack(gain_db=0.0)
        with pytest.raises(ValueError):
            RssiAmplificationAttack(path_loss_exponent=-1.0)
        with pytest.raises(ValueError):
            TdoaTimingSkewAttack(skew_ns=0.0)

    @pytest.mark.parametrize("cls", ATTACK_CLASSES)
    def test_repr_is_parameterised(self, cls):
        # The repr reaches the artifact fingerprints: different knobs must
        # never share cache keys.
        assert repr(cls()) != repr(
            cls(**{next(iter(cls().__dict__)): 9.0})
        )


class TestModalityGating:
    def test_damage_gated_by_localizer_modality(self):
        attack = RssiAmplificationAttack()
        rssi_scheme = create_localizer("rssi")
        dvhop_scheme = create_localizer("dvhop")
        assert attack.effective_damage(100.0, rssi_scheme) == 100.0
        assert attack.effective_damage(100.0, dvhop_scheme) == 0.0
        # No localizer = the abstract D-attack: only the physical cap.
        assert attack.effective_damage(100.0, None) == 100.0

    def test_damage_capped_by_channel_physics(self):
        attack = TdoaTimingSkewAttack(skew_ns=500.0)
        tdoa_scheme = create_localizer("tdoa")
        cap = attack.max_displacement()
        assert attack.effective_damage(1000.0, tdoa_scheme) == pytest.approx(cap)
        assert attack.effective_damage(10.0, tdoa_scheme) == 10.0

    def test_paper_classes_pass_damage_through(self):
        # The Dec-* adversaries are modality-agnostic by definition.
        dec = resolve_attack_class("dec_bounded")
        assert dec.effective_damage(120.0, create_localizer("dvhop")) == 120.0
        assert dec.effective_damage(120.0, None) == 120.0

    @pytest.mark.parametrize("cls", ATTACK_CLASSES)
    def test_only_the_unchanged_observation_is_feasible(self, cls):
        attack = cls()
        honest = np.array([3.0, 1.0, 0.0, 2.0])
        budget = AttackBudget(compromised_nodes=2)
        assert attack.is_feasible(honest, honest.copy(), budget)
        assert not attack.is_feasible(honest, honest + 1.0, budget)
        lower, upper = attack.entry_bounds(honest, budget)
        np.testing.assert_array_equal(lower, honest)
        np.testing.assert_array_equal(upper, honest)


class TestEvaluationIntegration:
    @pytest.fixture(scope="class")
    def victims(self, small_network, small_knowledge):
        from repro.network.neighbors import NeighborIndex

        rng = np.random.default_rng(8)
        nodes = rng.choice(small_network.num_nodes, size=12, replace=False)
        honest = NeighborIndex(small_network).observations_of_nodes(nodes)
        return honest, small_network.positions[nodes]

    def test_observation_stays_honest(self, small_knowledge, victims):
        from repro.core.evaluation import attack_observations

        honest, actual = victims
        tainted, spoofed, _ = attack_observations(
            small_knowledge,
            honest,
            actual,
            metric="diff",
            attack_class="rssi_amp",
            degree_of_damage=120.0,
            rng=np.random.default_rng(1),
            localizer=create_localizer("rssi"),
        )
        np.testing.assert_array_equal(tainted, honest)
        displacement = np.hypot(*(spoofed - actual).T)
        np.testing.assert_allclose(displacement, 120.0)

    def test_futile_attack_displaces_nothing(self, small_knowledge, victims):
        from repro.core.evaluation import attack_observations

        honest, actual = victims
        tainted, spoofed, _ = attack_observations(
            small_knowledge,
            honest,
            actual,
            metric="diff",
            attack_class="tdoa_skew",
            degree_of_damage=120.0,
            rng=np.random.default_rng(1),
            localizer=create_localizer("dvhop"),
        )
        np.testing.assert_array_equal(tainted, honest)
        np.testing.assert_array_equal(spoofed, actual)

    def test_dec_bounded_still_taints(self, small_knowledge, victims):
        from repro.core.evaluation import attack_observations

        honest, actual = victims
        tainted, _, _ = attack_observations(
            small_knowledge,
            honest,
            actual,
            metric="diff",
            attack_class="dec_bounded",
            degree_of_damage=120.0,
            rng=np.random.default_rng(1),
            localizer=create_localizer("rssi"),
        )
        assert not np.array_equal(tainted, honest)
