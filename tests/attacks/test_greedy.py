"""Tests for :mod:`repro.attacks.greedy` (the metric-minimising adversary)."""

import numpy as np
import pytest

from repro.attacks.constraints import DecBoundedAttack, DecOnlyAttack
from repro.attacks.greedy import GreedyMetricMinimizer, taint_observation
from repro.core.metrics import AddAllMetric, DiffMetric, ProbabilityMetric

GROUP_SIZE = 30


@pytest.fixture()
def scenario():
    """An honest observation and the expected observation at a spoofed spot."""
    honest = np.array([12.0, 8.0, 0.0, 1.0, 20.0, 3.0])
    expected = np.array([2.0, 8.0, 9.0, 4.0, 5.0, 0.0])
    return honest, expected


class TestDiffMetricAdversary:
    def test_paper_procedure_dec_bounded(self, scenario):
        """Section 7.1: raise entries with µ > a to µ for free; spend the
        budget decreasing entries with a > µ toward µ."""
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        tainted = adversary.taint(honest, expected, 10, group_size=GROUP_SIZE)
        # Entries where expected > honest were raised exactly to expected.
        raised = expected > honest
        np.testing.assert_allclose(tainted[raised], expected[raised])
        # Total decrease respects the budget.
        assert np.clip(honest - tainted, 0, None).sum() <= 10 + 1e-9
        assert DecBoundedAttack().is_feasible(
            honest, tainted, 10, group_size=GROUP_SIZE
        )

    def test_unlimited_budget_reaches_zero_metric(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        tainted = adversary.taint(honest, expected, 1000, group_size=GROUP_SIZE)
        assert DiffMetric().compute(tainted, expected) == pytest.approx(0.0)

    def test_zero_budget_only_increases(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        tainted = adversary.taint(honest, expected, 0, group_size=GROUP_SIZE)
        assert np.all(tainted >= np.minimum(honest, expected) - 1e-12)
        # Residual metric equals the total deficit that could not be erased.
        deficit = np.clip(honest - expected, 0, None).sum()
        assert DiffMetric().compute(tainted, expected) == pytest.approx(deficit)

    def test_metric_monotone_in_budget(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        values = []
        for budget in range(0, 40, 5):
            tainted = adversary.taint(honest, expected, budget, group_size=GROUP_SIZE)
            values.append(DiffMetric().compute(tainted, expected))
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_dec_only_cannot_increase(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_only")
        tainted = adversary.taint(honest, expected, 10, group_size=GROUP_SIZE)
        assert np.all(tainted <= honest + 1e-12)
        assert DecOnlyAttack().is_feasible(honest, tainted, 10)

    def test_dec_bounded_at_least_as_strong_as_dec_only(self, scenario):
        honest, expected = scenario
        for budget in (0, 5, 15, 50):
            bounded = GreedyMetricMinimizer("diff", "dec_bounded").taint(
                honest, expected, budget, group_size=GROUP_SIZE
            )
            only = GreedyMetricMinimizer("diff", "dec_only").taint(
                honest, expected, budget, group_size=GROUP_SIZE
            )
            metric = DiffMetric()
            assert metric.compute(
                bounded,
                expected,
            ) <= metric.compute(only, expected) + 1e-9

    def test_optimality_against_random_feasible_attacks(self, scenario):
        """No random feasible Dec-Bounded manipulation should beat the greedy
        adversary (for the Diff metric the greedy solution is optimal)."""
        honest, expected = scenario
        budget = 8
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        greedy_score = DiffMetric().compute(
            adversary.taint(honest, expected, budget, group_size=GROUP_SIZE), expected
        )
        rng = np.random.default_rng(0)
        constraint = DecBoundedAttack()
        for _ in range(200):
            # Random feasible taint: random increases, random decreases <= budget.
            increases = rng.uniform(
                0,
                10,
                size=honest.size,
            ) * rng.integers(0, 2, size=honest.size)
            decrease_total = rng.uniform(0, budget)
            weights = rng.dirichlet(np.ones(honest.size))
            decreases = np.minimum(weights * decrease_total, honest)
            candidate = honest + increases - decreases
            assert constraint.is_feasible(honest, candidate, budget)
            assert DiffMetric().compute(candidate, expected) >= greedy_score - 1e-9


class TestAddAllAdversary:
    def test_never_increases(self, scenario):
        honest, expected = scenario
        for attack in ("dec_bounded", "dec_only"):
            tainted = GreedyMetricMinimizer("add_all", attack).taint(
                honest, expected, 10, group_size=GROUP_SIZE
            )
            assert np.all(tainted <= honest + 1e-12)

    def test_budget_respected_and_metric_reduced(self, scenario):
        honest, expected = scenario
        metric = AddAllMetric()
        tainted = GreedyMetricMinimizer("add_all", "dec_bounded").taint(
            honest, expected, 10, group_size=GROUP_SIZE
        )
        assert np.clip(honest - tainted, 0, None).sum() <= 10 + 1e-9
        assert metric.compute(tainted, expected) <= metric.compute(honest, expected)

    def test_lower_bound_is_sum_of_expected(self, scenario):
        honest, expected = scenario
        tainted = GreedyMetricMinimizer("add_all", "dec_bounded").taint(
            honest, expected, 10_000, group_size=GROUP_SIZE
        )
        assert AddAllMetric().compute(tainted, expected) == pytest.approx(
            expected.sum()
        )


class TestProbabilityAdversary:
    def test_budget_and_feasibility(self, scenario):
        honest, expected = scenario
        tainted = GreedyMetricMinimizer("probability", "dec_bounded").taint(
            honest, expected, 6, group_size=GROUP_SIZE
        )
        assert DecBoundedAttack().is_feasible(honest, tainted, 6, group_size=GROUP_SIZE)

    def test_metric_improves(self, scenario):
        honest, expected = scenario
        metric = ProbabilityMetric()
        before = metric.compute(honest, expected, group_size=GROUP_SIZE)
        tainted = GreedyMetricMinimizer("probability", "dec_bounded").taint(
            honest, expected, 20, group_size=GROUP_SIZE
        )
        after = metric.compute(tainted, expected, group_size=GROUP_SIZE)
        assert after <= before + 1e-9

    def test_dec_only_never_increases(self, scenario):
        honest, expected = scenario
        tainted = GreedyMetricMinimizer("probability", "dec_only").taint(
            honest, expected, 20, group_size=GROUP_SIZE
        )
        assert np.all(tainted <= honest + 1e-12)

    def test_requires_group_size(self, scenario):
        honest, expected = scenario
        with pytest.raises(ValueError):
            GreedyMetricMinimizer("probability", "dec_bounded").taint(
                honest, expected, 5
            )

    def test_metric_monotone_in_budget(self, scenario):
        honest, expected = scenario
        metric = ProbabilityMetric()
        adversary = GreedyMetricMinimizer("probability", "dec_bounded")
        values = [
            metric.compute(
                adversary.taint(honest, expected, budget, group_size=GROUP_SIZE),
                expected,
                group_size=GROUP_SIZE,
            )
            for budget in (0, 5, 10, 20, 40)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


class TestIntegerModeAndBatch:
    def test_integer_mode_produces_whole_counts(self, scenario):
        honest, expected = scenario
        tainted = GreedyMetricMinimizer("diff", "dec_bounded", integer_mode=True).taint(
            honest, expected, 7, group_size=GROUP_SIZE
        )
        np.testing.assert_allclose(tainted, np.round(tainted))
        assert np.clip(honest - tainted, 0, None).sum() <= 7 + 1e-9

    def test_batch_matches_scalar(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        batch = adversary.taint_batch(
            np.vstack([honest, honest]),
            np.vstack([expected, expected]),
            [5, 15],
            group_size=GROUP_SIZE,
        )
        np.testing.assert_allclose(
            batch[0], adversary.taint(honest, expected, 5, group_size=GROUP_SIZE)
        )
        np.testing.assert_allclose(
            batch[1], adversary.taint(honest, expected, 15, group_size=GROUP_SIZE)
        )

    def test_batch_shape_validation(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        with pytest.raises(ValueError):
            adversary.taint_batch(honest, expected, [5])
        with pytest.raises(ValueError):
            adversary.taint_batch(
                np.vstack([honest, honest]), np.vstack([expected, expected]), [5]
            )

    @pytest.mark.parametrize("metric", ["diff", "add_all"])
    @pytest.mark.parametrize("attack", ["dec_bounded", "dec_only"])
    @pytest.mark.parametrize("integer_mode", [False, True])
    def test_vectorised_batch_equals_loop_bitwise(self, metric, attack, integer_mode):
        """The 2-D allocation over all victims at once must reproduce the
        per-row :meth:`taint` loop bit for bit (not just approximately)."""
        rng = np.random.default_rng(20050404)
        k, n = 64, 25
        honest = np.round(rng.uniform(0.0, 30.0, size=(k, n)))
        expected = rng.uniform(0.0, 30.0, size=(k, n))
        # Include duplicate gaps (ties in the sort), zero budgets and
        # budgets large enough to close every gap.
        budgets = [int(b) for b in rng.integers(0, 120, size=k)]
        budgets[0] = 0
        honest[1] = honest[2]
        expected[1] = expected[2]
        budgets[1] = budgets[2]
        adversary = GreedyMetricMinimizer(metric, attack, integer_mode=integer_mode)
        batch = adversary.taint_batch(honest, expected, budgets, group_size=GROUP_SIZE)
        loop = np.vstack(
            [
                adversary.taint(
                    honest[i], expected[i], budgets[i], group_size=GROUP_SIZE
                )
                for i in range(k)
            ]
        )
        np.testing.assert_array_equal(batch, loop)

    def test_probability_batch_still_matches_loop(self):
        """The probability metric keeps the per-row greedy; the batch path
        must stay the trivial loop wrapper."""
        rng = np.random.default_rng(99)
        k, n = 8, 10
        honest = np.round(rng.uniform(0.0, 20.0, size=(k, n)))
        expected = rng.uniform(0.0, 20.0, size=(k, n))
        budgets = [int(b) for b in rng.integers(0, 30, size=k)]
        adversary = GreedyMetricMinimizer("probability", "dec_bounded")
        batch = adversary.taint_batch(honest, expected, budgets, group_size=GROUP_SIZE)
        loop = np.vstack(
            [
                adversary.taint(
                    honest[i], expected[i], budgets[i], group_size=GROUP_SIZE
                )
                for i in range(k)
            ]
        )
        np.testing.assert_array_equal(batch, loop)

    def test_functional_wrapper(self, scenario):
        honest, expected = scenario
        out = taint_observation(
            honest, expected, 5, metric="diff", attack_class="dec_only",
            group_size=GROUP_SIZE,
        )
        assert DecOnlyAttack().is_feasible(honest, out, 5)

    def test_shape_mismatch_rejected(self, scenario):
        honest, expected = scenario
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        with pytest.raises(ValueError):
            adversary.taint(honest, expected[:-1], 5)
