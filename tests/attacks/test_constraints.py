"""Tests for :mod:`repro.attacks.constraints` (Definitions 4 and 5)."""

import numpy as np
import pytest

from repro.attacks.base import AttackBudget
from repro.attacks.constraints import (
    DecBoundedAttack,
    DecOnlyAttack,
    get_attack_class,
    validate_attack,
)


@pytest.fixture()
def honest():
    return np.array([5.0, 0.0, 3.0, 10.0])


class TestAttackBudget:
    def test_from_fraction_rounds(self):
        assert AttackBudget.from_fraction(100, 0.10).compromised_nodes == 10
        assert AttackBudget.from_fraction(95, 0.10).compromised_nodes == 10
        assert AttackBudget.from_fraction(94, 0.10).compromised_nodes == 9
        assert AttackBudget.from_fraction(0, 0.5).compromised_nodes == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            AttackBudget(-1)
        with pytest.raises(ValueError):
            AttackBudget.from_fraction(10, 1.5)

    def test_int_conversion(self):
        assert int(AttackBudget(7)) == 7


class TestDecBounded:
    def test_increases_always_feasible(self, honest):
        attack = DecBoundedAttack()
        tainted = honest + np.array([100.0, 50.0, 0.0, 0.0])
        assert attack.is_feasible(honest, tainted, 0)

    def test_decrease_within_budget(self, honest):
        attack = DecBoundedAttack()
        tainted = honest - np.array([2.0, 0.0, 1.0, 0.0])
        assert attack.is_feasible(honest, tainted, 3)
        assert not attack.is_feasible(honest, tainted, 2)

    def test_mixed_increase_and_decrease(self, honest):
        attack = DecBoundedAttack()
        tainted = np.array([0.0, 20.0, 3.0, 10.0])  # decrease of 5 on group 0
        assert attack.is_feasible(honest, tainted, 5)
        assert not attack.is_feasible(honest, tainted, 4)

    def test_negative_counts_infeasible(self, honest):
        attack = DecBoundedAttack()
        tainted = honest.copy()
        tainted[0] = -1.0
        assert not attack.is_feasible(honest, tainted, 100)

    def test_group_size_ceiling(self, honest):
        attack = DecBoundedAttack()
        tainted = honest.copy()
        tainted[1] = 31.0
        assert not attack.is_feasible(honest, tainted, 0, group_size=30)
        assert attack.is_feasible(honest, tainted, 0, group_size=40)

    def test_entry_bounds(self, honest):
        attack = DecBoundedAttack()
        lower, upper = attack.entry_bounds(honest, 4, group_size=30)
        np.testing.assert_allclose(lower, [1.0, 0.0, 0.0, 6.0])
        np.testing.assert_allclose(upper, 30.0)
        _, upper_inf = attack.entry_bounds(honest, 4)
        assert np.all(np.isinf(upper_inf))


class TestDecOnly:
    def test_no_increase_allowed(self, honest):
        attack = DecOnlyAttack()
        tainted = honest.copy()
        tainted[1] += 1.0
        assert not attack.is_feasible(honest, tainted, 100)

    def test_decrease_within_budget(self, honest):
        attack = DecOnlyAttack()
        tainted = honest - np.array([1.0, 0.0, 1.0, 2.0])
        assert attack.is_feasible(honest, tainted, 4)
        assert not attack.is_feasible(honest, tainted, 3)

    def test_identity_always_feasible(self, honest):
        attack = DecOnlyAttack()
        assert attack.is_feasible(honest, honest.copy(), 0)

    def test_entry_bounds(self, honest):
        attack = DecOnlyAttack()
        lower, upper = attack.entry_bounds(honest, 2)
        np.testing.assert_allclose(lower, [3.0, 0.0, 1.0, 8.0])
        np.testing.assert_allclose(upper, honest)

    def test_flags(self):
        assert DecBoundedAttack().allows_increase
        assert not DecOnlyAttack().allows_increase


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_attack_class("dec_bounded"), DecBoundedAttack)
        assert isinstance(get_attack_class("Dec-Only"), DecOnlyAttack)
        assert isinstance(get_attack_class("decbounded"), DecBoundedAttack)

    def test_instance_passthrough(self):
        inst = DecOnlyAttack()
        assert get_attack_class(inst) is inst

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_attack_class("quantum")

    def test_validate_attack_helper(self, honest):
        validate_attack("dec_only", honest, honest - np.array([1.0, 0, 0, 0]), 1)
        with pytest.raises(ValueError):
            validate_attack("dec_only", honest, honest + 1.0, 100)

    def test_shape_mismatch_rejected(self, honest):
        with pytest.raises(ValueError):
            DecBoundedAttack().is_feasible(honest, honest[:2], 1)
