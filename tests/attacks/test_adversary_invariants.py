"""Seeded-grid invariant tests for the greedy metric-minimising adversary.

A deterministic random grid (plain numpy, no extra dependencies) sweeps
every (metric x attack class x integer_mode) combination and checks the
invariants any correct adversary must satisfy, whatever the inputs:

* the tainted observation is feasible under its attack class — Dec-Only
  never raises a count, Dec-Bounded never exceeds the physical group size;
* the total decrease never exceeds the compromised-node budget;
* tainting never *hurts* the adversary: the metric value of the tainted
  observation never exceeds the honest observation's metric value.

These complement the hypothesis suite in ``tests/test_property_based.py``
with exhaustive combination coverage on reproducible inputs, so a failure
names the exact (metric, attack, integer_mode, trial) tuple that broke.
"""

import numpy as np
import pytest

from repro.attacks.constraints import resolve_attack_class
from repro.attacks.greedy import GreedyMetricMinimizer
from repro.core.metrics import resolve_metric

GROUP_SIZE = 25

#: Numerical slack for real-valued feasibility checks.
TOL = 1e-9

METRICS = ("diff", "add_all", "probability")
ATTACKS = ("dec_bounded", "dec_only")
NUM_TRIALS = 12


def _trial_inputs(rng, n_groups: int):
    """One random (honest, expected, budget) triple.

    Honest observations are integer counts within the physical bounds
    (that is what neighbour collection produces); expected observations
    are real-valued; budgets span zero, binding and gap-closing regimes.
    """
    honest = rng.integers(0, GROUP_SIZE + 1, size=n_groups).astype(np.float64)
    expected = rng.uniform(0.0, GROUP_SIZE, size=n_groups)
    budget = int(rng.integers(0, 3 * n_groups))
    return honest, expected, budget


@pytest.mark.parametrize("metric_name", METRICS)
@pytest.mark.parametrize("attack_name", ATTACKS)
@pytest.mark.parametrize("integer_mode", [False, True])
class TestAdversaryInvariants:
    def test_invariants_hold_on_seeded_grid(
        self, metric_name, attack_name, integer_mode
    ):
        # One reproducible stream per combination (str hashing is process
        # randomised, so derive the seed from the grid indices instead).
        rng = np.random.default_rng(
            20050404
            + 100 * METRICS.index(metric_name)
            + 10 * ATTACKS.index(attack_name)
            + int(integer_mode)
        )
        metric = resolve_metric(metric_name)
        attack = resolve_attack_class(attack_name)
        adversary = GreedyMetricMinimizer(
            metric_name, attack_name, integer_mode=integer_mode
        )
        for trial in range(NUM_TRIALS):
            n_groups = int(rng.integers(1, 20))
            honest, expected, budget = _trial_inputs(rng, n_groups)
            tainted = adversary.taint(
                honest, expected, budget, group_size=GROUP_SIZE
            )
            context = (
                f"metric={metric_name} attack={attack_name} "
                f"integer_mode={integer_mode} trial={trial}"
            )

            # Attack-class feasibility (also covers non-negativity).
            assert attack.is_feasible(
                honest, tainted, budget, group_size=GROUP_SIZE
            ), context
            if not attack.allows_increase:
                assert np.all(tainted <= honest + TOL), context
            assert np.all(tainted <= GROUP_SIZE + TOL), context
            assert np.all(tainted >= -TOL), context

            # Shared decrease budget.
            decrease = np.clip(honest - tainted, 0.0, None).sum()
            assert decrease <= budget + TOL, context

            # Tainting must never increase the metric value.
            before = metric.compute(honest, expected, group_size=GROUP_SIZE)
            after = metric.compute(tainted, expected, group_size=GROUP_SIZE)
            assert after <= before + TOL, context

    def test_batch_preserves_the_invariants(
        self, metric_name, attack_name, integer_mode
    ):
        """The batch path satisfies the same invariants row by row."""
        rng = np.random.default_rng(1234)
        attack = resolve_attack_class(attack_name)
        adversary = GreedyMetricMinimizer(
            metric_name, attack_name, integer_mode=integer_mode
        )
        k, n_groups = 16, 10
        honest = rng.integers(0, GROUP_SIZE + 1, size=(k, n_groups)).astype(
            np.float64
        )
        expected = rng.uniform(0.0, GROUP_SIZE, size=(k, n_groups))
        budgets = [int(b) for b in rng.integers(0, 3 * n_groups, size=k)]
        tainted = adversary.taint_batch(
            honest, expected, budgets, group_size=GROUP_SIZE
        )
        for row in range(k):
            assert attack.is_feasible(
                honest[row], tainted[row], budgets[row], group_size=GROUP_SIZE
            ), row
            decrease = np.clip(honest[row] - tainted[row], 0.0, None).sum()
            assert decrease <= budgets[row] + TOL, row
