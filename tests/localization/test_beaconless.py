"""Tests for :mod:`repro.localization.beaconless`."""

import numpy as np
import pytest

from repro.localization.base import LocalizationContext
from repro.localization.beaconless import BeaconlessLocalizer


@pytest.fixture(scope="module")
def localizer():
    return BeaconlessLocalizer(resolution=2.0)


class TestInitialGuess:
    def test_weighted_centroid(self, small_knowledge):
        obs = np.zeros(small_knowledge.n_groups)
        obs[3] = 10.0
        obs[4] = 10.0
        guess = BeaconlessLocalizer.initial_guess(small_knowledge, obs)
        expected = small_knowledge.deployment_points[[3, 4]].mean(axis=0)
        np.testing.assert_allclose(guess, expected)

    def test_empty_observation_falls_back_to_center(self, small_knowledge):
        guess = BeaconlessLocalizer.initial_guess(
            small_knowledge, np.zeros(small_knowledge.n_groups)
        )
        np.testing.assert_allclose(guess, small_knowledge.region.center)


class TestLocalization:
    def test_recovers_location_from_expected_observation(
        self,
        small_knowledge,
        localizer,
    ):
        """Feeding the noiseless expected observation at a point must recover
        that point to within the search resolution."""
        for target in ([150.0, 250.0], [330.0, 120.0], [250.0, 250.0]):
            target = np.asarray(target)
            mu = small_knowledge.expected_observation(target[None, :])[0]
            est = localizer.localize_observations(small_knowledge, mu)[0]
            assert np.hypot(*(est - target)) <= 3.0 * localizer.resolution

    def test_accuracy_on_real_network(
        self,
        small_network,
        small_index,
        small_knowledge,
        localizer,
    ):
        rng = np.random.default_rng(3)
        nodes = rng.choice(small_network.num_nodes, size=15, replace=False)
        obs = small_index.observations_of_nodes(nodes)
        est = localizer.localize_observations(small_knowledge, obs)
        errors = np.hypot(*(est - small_network.positions[nodes]).T)
        # The beaconless scheme should localise within a fraction of the
        # radio range for interior nodes.
        assert np.median(errors) < 30.0
        assert errors.mean() < 50.0

    def test_localize_context_api(
        self,
        small_network,
        small_index,
        small_knowledge,
        localizer,
    ):
        node = 42
        obs = small_index.observation_of_node(node)
        context = LocalizationContext(observation=obs, knowledge=small_knowledge)
        result = localizer.localize(context)
        assert result.converged
        assert np.isfinite(result.log_likelihood)
        assert result.iterations >= 1
        error = np.hypot(*(result.position - small_network.positions[node]))
        assert error < 100.0

    def test_missing_inputs_rejected(self, small_knowledge, localizer):
        with pytest.raises(ValueError):
            localizer.localize(LocalizationContext(observation=np.zeros(25)))
        with pytest.raises(ValueError):
            localizer.localize(LocalizationContext(knowledge=small_knowledge))

    def test_batch_shape(self, small_knowledge, localizer):
        obs = small_knowledge.expected_observation(
            np.array([[100.0, 100.0], [300.0, 200.0]])
        )
        est = localizer.localize_observations(small_knowledge, obs)
        assert est.shape == (2, 2)

    def test_single_observation_promoted(self, small_knowledge, localizer):
        mu = small_knowledge.expected_observation(np.array([[200.0, 200.0]]))[0]
        est = localizer.localize_observations(small_knowledge, mu)
        assert est.shape == (1, 2)

    def test_estimate_stays_inside_region(self, small_knowledge, localizer):
        # Even for a boundary location the estimate must stay in the region.
        target = np.array([5.0, 5.0])
        mu = small_knowledge.expected_observation(target[None, :])[0]
        est = localizer.localize_observations(small_knowledge, mu)[0]
        assert small_knowledge.region.contains_point(est)

    def test_finer_resolution_is_more_accurate(self, small_knowledge):
        target = np.array([237.0, 181.0])
        mu = small_knowledge.expected_observation(target[None, :])[0]
        coarse = BeaconlessLocalizer(resolution=20.0, coarse_step=40.0)
        fine = BeaconlessLocalizer(resolution=1.0)
        err_coarse = np.hypot(
            *(coarse.localize_observations(small_knowledge, mu)[0] - target),
        )
        err_fine = np.hypot(
            *(fine.localize_observations(small_knowledge, mu)[0] - target),
        )
        assert err_fine <= err_coarse + 1e-9

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BeaconlessLocalizer(resolution=0.0)
        with pytest.raises(ValueError):
            BeaconlessLocalizer(refine_factor=1.0)
        with pytest.raises(ValueError):
            BeaconlessLocalizer(coarse_step=1000.0, search_margin=100.0)
