"""Tests for :mod:`repro.localization.tdoa` (hyperbolic multilateration)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.localization.base import LOCALIZERS
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.localization.tdoa import TDOA_SOLVERS, TdoaMultilaterationLocalizer
from repro.types import Region

REGION = Region(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture(scope="module")
def beacons():
    return BeaconSpec(count=16, transmit_range=600.0).build(REGION)


class TestRangeDifferences:
    def test_reference_entry_is_exactly_zero(self, beacons):
        distances = np.array([120.0, 340.0, 75.5])
        differences = beacons.range_differences(distances)
        assert differences[0] == 0.0
        np.testing.assert_allclose(differences, distances - distances[0])

    def test_jitter_deterministic_under_seed(self, beacons):
        distances = np.array([120.0, 340.0, 75.5, 300.0])
        a = beacons.range_differences(
            distances, rng=np.random.default_rng(5), noise_std=2.0
        )
        b = beacons.range_differences(
            distances, rng=np.random.default_rng(5), noise_std=2.0
        )
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, distances - distances[0])
        # Jitter hits the reference too: its difference stays exactly 0.
        assert a[0] == 0.0

    def test_noise_requires_rng(self, beacons):
        with pytest.raises(ValueError, match="rng"):
            beacons.range_differences(np.array([10.0, 20.0]), noise_std=1.0)

    def test_empty_input(self, beacons):
        assert beacons.range_differences(np.array([])).shape == (0,)


class TestTdoaLocalizer:
    def test_registered_with_aliases(self):
        assert "tdoa" in LOCALIZERS.available()
        assert LOCALIZERS.canonical("tdoa_multilateration") == "tdoa"
        assert LOCALIZERS.canonical("time_difference") == "tdoa"
        assert isinstance(
            LOCALIZERS.create("tdoa"), TdoaMultilaterationLocalizer
        )

    def test_modality_flags(self):
        scheme = TdoaMultilaterationLocalizer()
        assert scheme.requires_beacons
        assert scheme.uses_tdoa
        assert not scheme.uses_ranges
        assert scheme.modalities == ("tdoa",)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown TDOA solver"):
            TdoaMultilaterationLocalizer(solver="newton")

    @pytest.mark.parametrize("solver", TDOA_SOLVERS)
    def test_noise_free_localization_is_near_exact(self, beacons, solver):
        scheme = TdoaMultilaterationLocalizer(solver=solver)
        positions = np.array([[300.0, 400.0], [650.0, 200.0], [500.0, 500.0]])
        contexts = beacon_contexts(positions, beacons, scheme)
        results = scheme.localize_many(contexts)
        estimates = np.stack([r.position for r in results])
        np.testing.assert_allclose(estimates, positions, atol=1e-6)
        assert all(r.converged for r in results)

    def test_solvers_agree(self, beacons):
        positions = np.array([[300.0, 400.0], [650.0, 200.0]])
        rng_contexts = lambda scheme: beacon_contexts(
            positions,
            beacons,
            scheme,
            noise_std=1.0,
            rng=np.random.default_rng(11),
        )
        estimates = {}
        for solver in TDOA_SOLVERS:
            scheme = TdoaMultilaterationLocalizer(solver=solver)
            estimates[solver] = np.stack(
                [r.position for r in scheme.localize_many(rng_contexts(scheme))]
            )
        np.testing.assert_allclose(
            estimates["lstsq"], estimates["closed_form"], atol=1e-6
        )

    @pytest.mark.parametrize("solver", TDOA_SOLVERS)
    def test_batch_matches_per_row(self, beacons, solver):
        scheme = TdoaMultilaterationLocalizer(solver=solver)
        positions = np.array(
            [[300.0, 400.0], [650.0, 200.0], [120.0, 880.0], [500.0, 500.0]]
        )
        contexts = beacon_contexts(
            positions,
            beacons,
            scheme,
            noise_std=2.0,
            rng=np.random.default_rng(7),
        )
        batched = scheme.localize_many(contexts)
        looped = [scheme.localize(ctx) for ctx in contexts]
        np.testing.assert_array_equal(
            np.stack([r.position for r in batched]),
            np.stack([r.position for r in looped]),
        )
        assert [r.converged for r in batched] == [r.converged for r in looped]

    def test_under_four_beacons_falls_back_to_audible_centroid(self):
        # 600 m corner-grid: a node in the far corner hears < 4 beacons.
        sparse = BeaconSpec(count=4, transmit_range=300.0).build(REGION)
        scheme = TdoaMultilaterationLocalizer()
        context = beacon_contexts(np.array([[250.0, 250.0]]), sparse, scheme)[0]
        assert context.audible_beacons.size < 4
        result = scheme.localize(context)
        assert not result.converged
        expected = sparse.declared_positions[context.audible_beacons].mean(axis=0)
        np.testing.assert_array_equal(result.position, expected)

    def test_zero_audible_falls_back_to_global_centroid(self):
        sparse = BeaconSpec(count=4, transmit_range=50.0).build(REGION)
        scheme = TdoaMultilaterationLocalizer()
        context = beacon_contexts(np.array([[500.0, 500.0]]), sparse, scheme)[0]
        assert context.audible_beacons.size == 0
        result = scheme.localize(context)
        assert not result.converged
        np.testing.assert_array_equal(
            result.position, sparse.declared_positions.mean(axis=0)
        )

    def test_missing_differences_rejected(self, beacons):
        scheme = TdoaMultilaterationLocalizer()
        context = beacon_contexts(np.array([[500.0, 500.0]]), beacons, scheme)[0]
        with pytest.raises(ValueError, match="tdoa_differences"):
            scheme.localize(replace(context, tdoa_differences=None))

    def test_wrong_difference_shape_rejected(self, beacons):
        scheme = TdoaMultilaterationLocalizer()
        context = beacon_contexts(np.array([[500.0, 500.0]]), beacons, scheme)[0]
        with pytest.raises(ValueError, match="one entry per audible"):
            scheme.localize(replace(context, tdoa_differences=np.zeros(2)))

    def test_solver_reaches_repr(self):
        # Distinct solvers produce different floats, so their cache keys
        # (derived from the repr) must differ.
        reprs = {repr(TdoaMultilaterationLocalizer(solver=s)) for s in TDOA_SOLVERS}
        assert len(reprs) == len(TDOA_SOLVERS)
