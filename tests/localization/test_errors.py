"""Tests for :mod:`repro.localization.errors`."""

import numpy as np
import pytest

from repro.localization.errors import (
    ErrorStatistics,
    is_anomaly,
    localization_error,
    localization_errors,
)


class TestLocalizationError:
    def test_single(self):
        assert localization_error((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_batch(self):
        est = np.array([[0.0, 0.0], [1.0, 1.0]])
        act = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(localization_errors(est, act), [5.0, 0.0])

    def test_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            localization_errors(np.zeros((2, 2)), np.zeros((3, 2)))


class TestIsAnomaly:
    def test_definition_2_and_3(self):
        # Error of 100 m: anomaly for MTE 80, not for MTE 120.
        est, act = (0.0, 0.0), (100.0, 0.0)
        assert is_anomaly(est, act, 80.0)
        assert not is_anomaly(est, act, 120.0)
        # The boundary is strict ("greater than").
        assert not is_anomaly(est, act, 100.0)

    def test_negative_mte_rejected(self):
        with pytest.raises(ValueError):
            is_anomaly((0, 0), (1, 1), -1.0)


class TestErrorStatistics:
    def test_summary_values(self):
        errors = np.arange(1.0, 101.0)
        stats = ErrorStatistics.from_errors(errors)
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.median == pytest.approx(50.5)
        assert stats.maximum == 100.0
        assert stats.p90 >= stats.median
        assert stats.p99 >= stats.p90

    def test_as_dict_keys(self):
        stats = ErrorStatistics.from_errors([1.0, 2.0, 3.0])
        assert set(stats.as_dict()) == {"mean", "median", "p90", "p99", "max", "count"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorStatistics.from_errors([])
