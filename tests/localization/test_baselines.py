"""Tests for the beacon-based localization baselines."""

import numpy as np
import pytest

from repro.localization.apit import ApitLocalizer
from repro.localization.base import BeaconInfrastructure, LocalizationContext
from repro.localization.centroid import CentroidLocalizer
from repro.localization.dvhop import (
    DvHopLocalizer,
    average_hop_distance,
    compute_hop_counts,
)
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.network.network import SensorNetwork
from repro.network.radio import UnitDiskRadio
from repro.types import Region


@pytest.fixture()
def beacons():
    positions = np.array(
        [[100.0, 100.0], [400.0, 100.0], [100.0, 400.0], [400.0, 400.0], [250.0, 250.0]]
    )
    return BeaconInfrastructure(positions=positions, transmit_range=400.0)


class TestBeaconInfrastructure:
    def test_audible_from(self, beacons):
        audible = beacons.audible_from((100.0, 100.0))
        assert 0 in audible
        # The far corner beacon is ~424 m away, outside the 400 m range.
        assert 3 not in audible

    def test_measured_distances_noise(self, beacons):
        rng = np.random.default_rng(0)
        clean = beacons.measured_distances((250.0, 250.0))
        noisy = beacons.measured_distances((250.0, 250.0), rng=rng, noise_std=5.0)
        assert clean.shape == noisy.shape == (5,)
        assert not np.allclose(clean, noisy)
        with pytest.raises(ValueError):
            beacons.measured_distances((0.0, 0.0), noise_std=5.0)

    def test_declare_false_position(self, beacons):
        beacons.declare_false_position(2, (999.0, 999.0))
        np.testing.assert_allclose(beacons.declared_positions[2], [999.0, 999.0])
        assert beacons.compromised[2]
        # True position unchanged.
        np.testing.assert_allclose(beacons.positions[2], [100.0, 400.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BeaconInfrastructure(
                positions=np.zeros((3, 2)), declared_positions=np.zeros((2, 2))
            )


class TestCentroidLocalizer:
    def test_estimate_is_centroid_of_audible(self, beacons):
        context = LocalizationContext(
            beacons=beacons, audible_beacons=np.array([0, 1, 2, 3])
        )
        result = CentroidLocalizer().localize(context)
        np.testing.assert_allclose(result.position, [250.0, 250.0])
        assert result.converged

    def test_uses_true_position_for_audibility(self, beacons):
        context = LocalizationContext(
            beacons=beacons, true_position=np.array([250.0, 250.0])
        )
        result = CentroidLocalizer().localize(context)
        assert beacons.audible_from((250.0, 250.0)).size == 5
        assert result.converged

    def test_no_beacons_audible(self, beacons):
        context = LocalizationContext(
            beacons=beacons,
            audible_beacons=np.array([], dtype=int),
        )
        result = CentroidLocalizer().localize(context)
        assert not result.converged

    def test_compromised_beacon_shifts_estimate(self, beacons):
        honest = CentroidLocalizer().localize(
            LocalizationContext(beacons=beacons, audible_beacons=np.arange(5))
        )
        beacons.declare_false_position(0, (2000.0, 2000.0))
        lied = CentroidLocalizer().localize(
            LocalizationContext(beacons=beacons, audible_beacons=np.arange(5))
        )
        assert np.hypot(*(lied.position - honest.position)) > 100.0

    def test_requires_beacons(self):
        with pytest.raises(ValueError):
            CentroidLocalizer().localize(LocalizationContext())


class TestMultilateration:
    def test_exact_recovery_without_noise(self, beacons):
        true = np.array([230.0, 310.0])
        audible = np.arange(beacons.num_beacons)
        distances = beacons.measured_distances(true)
        context = LocalizationContext(
            beacons=beacons, audible_beacons=audible, measured_distances=distances
        )
        result = MmseMultilaterationLocalizer().localize(context)
        assert result.converged
        np.testing.assert_allclose(result.position, true, atol=1e-6)

    def test_robust_to_small_noise(self, beacons):
        rng = np.random.default_rng(1)
        true = np.array([180.0, 220.0])
        audible = np.arange(beacons.num_beacons)
        distances = beacons.measured_distances(true, rng=rng, noise_std=3.0)
        context = LocalizationContext(
            beacons=beacons, audible_beacons=audible, measured_distances=distances
        )
        result = MmseMultilaterationLocalizer().localize(context)
        assert np.hypot(*(result.position - true)) < 15.0

    def test_single_lying_beacon_causes_large_error(self, beacons):
        """The vulnerability the paper cites: one compromised anchor declaring
        a false position introduces a large localization error."""
        true = np.array([250.0, 250.0])
        audible = np.arange(beacons.num_beacons)
        distances = beacons.measured_distances(true)
        beacons.declare_false_position(4, (900.0, 900.0))
        context = LocalizationContext(
            beacons=beacons, audible_beacons=audible, measured_distances=distances
        )
        result = MmseMultilaterationLocalizer().localize(context)
        assert np.hypot(*(result.position - true)) > 50.0

    def test_near_collinear_anchors_fall_back(self, beacons):
        """Nearly collinear anchors make the linearised solve explode;
        such rows must report non-convergence instead of returning a
        wildly amplified estimate (the removed lstsq path absorbed them
        via its SVD cutoff)."""
        anchors = np.array(
            [[0.0, 0.0], [200.0, 1e-7], [400.0, 2e-7], [600.0, 0.0]]
        )
        collinear = BeaconInfrastructure(positions=anchors, transmit_range=1000.0)
        true = np.array([300.0, 40.0])
        context = LocalizationContext(
            beacons=collinear,
            audible_beacons=np.arange(4),
            measured_distances=collinear.measured_distances(true),
        )
        result = MmseMultilaterationLocalizer().localize(context)
        assert not result.converged
        # The fallback (audible centroid) stays at the problem's scale.
        assert np.linalg.norm(result.position) < 2000.0

    def test_under_determined_falls_back(self, beacons):
        context = LocalizationContext(
            beacons=beacons,
            audible_beacons=np.array([0, 1]),
            measured_distances=np.array([10.0, 20.0]),
        )
        result = MmseMultilaterationLocalizer().localize(context)
        assert not result.converged

    def test_requires_distances(self, beacons):
        with pytest.raises(ValueError):
            MmseMultilaterationLocalizer().localize(
                LocalizationContext(beacons=beacons, audible_beacons=np.arange(5))
            )

    def test_no_refine_path(self, beacons):
        true = np.array([300.0, 150.0])
        audible = np.arange(beacons.num_beacons)
        distances = beacons.measured_distances(true)
        context = LocalizationContext(
            beacons=beacons, audible_beacons=audible, measured_distances=distances
        )
        result = MmseMultilaterationLocalizer(refine=False).localize(context)
        np.testing.assert_allclose(result.position, true, atol=1e-6)


class TestDvHop:
    @pytest.fixture()
    def line_network(self):
        # A line of sensors 60 m apart; radio range 80 m -> chain topology.
        xs = np.arange(0.0, 601.0, 60.0)
        positions = np.column_stack([xs, np.zeros_like(xs)])
        return SensorNetwork(
            positions=positions,
            group_ids=np.zeros(len(xs), dtype=int),
            n_groups=1,
            radio=UnitDiskRadio(80.0),
        )

    def test_hop_counts_on_line(self, line_network):
        beacons = BeaconInfrastructure(
            positions=np.array([[0.0, 0.0], [600.0, 0.0]]), transmit_range=80.0
        )
        hops = compute_hop_counts(line_network, beacons)
        assert hops.shape == (line_network.num_nodes, 2)
        # The node at x=300 is 5 hops from either end beacon... the beacon
        # connects to the node at x=0 (hop 1) wait beacons sit on top of the
        # end nodes, so the node at x=300 (index 5) is reachable.
        assert np.isfinite(hops).all()
        # Hop counts increase monotonically along the line away from beacon 0.
        assert np.all(np.diff(hops[:, 0]) >= 0)

    def test_average_hop_distance(self, line_network):
        beacons = BeaconInfrastructure(
            positions=np.array([[0.0, 0.0], [600.0, 0.0]]), transmit_range=80.0
        )
        hops = compute_hop_counts(line_network, beacons)
        beacon_hops = np.array([[0.0, hops[-1, 0] + 1], [hops[0, 1] + 1, 0.0]])
        avg = average_hop_distance(beacons, beacon_hops)
        assert 40.0 <= avg <= 80.0

    def test_localizer_on_grid_network(self, small_network):
        beacons = BeaconInfrastructure(
            positions=np.array(
                [[50.0, 50.0], [450.0, 50.0], [50.0, 450.0], [450.0, 450.0]]
            ),
            transmit_range=80.0,
        )
        hops = compute_hop_counts(small_network, beacons)
        beacon_hop_matrix = np.zeros((4, 4))
        for i in range(4):
            # Hop count between beacons approximated through the nearest node.
            nearest = int(
                np.argmin(np.hypot(*(small_network.positions - beacons.positions[i]).T))
            )
            beacon_hop_matrix[i] = hops[nearest] + 1
            beacon_hop_matrix[i, i] = 0.0
        avg = average_hop_distance(beacons, beacon_hop_matrix)

        node = 300
        context = LocalizationContext(
            beacons=beacons,
            hop_counts=hops[node],
            avg_hop_distance=avg,
        )
        result = DvHopLocalizer().localize(context)
        error = np.hypot(*(result.position - small_network.positions[node]))
        # DV-Hop is coarse; just require a sane estimate within the region scale.
        assert error < 250.0

    def test_requires_inputs(self, beacons):
        with pytest.raises(ValueError):
            DvHopLocalizer().localize(LocalizationContext(beacons=beacons))
        with pytest.raises(ValueError):
            DvHopLocalizer().localize(LocalizationContext(hop_counts=np.ones(3)))

    def test_unreachable_beacons_fallback(self, beacons):
        hops = np.full(beacons.num_beacons, np.inf)
        context = LocalizationContext(
            beacons=beacons, hop_counts=hops, avg_hop_distance=50.0
        )
        result = DvHopLocalizer().localize(context)
        assert not result.converged


class TestApit:
    def test_estimate_inside_region_and_reasonable(self, beacons):
        region = Region(0, 0, 500, 500)
        true = np.array([220.0, 260.0])
        context = LocalizationContext(
            beacons=beacons,
            audible_beacons=np.arange(beacons.num_beacons),
            true_position=true,
        )
        result = ApitLocalizer(region=region, grid_resolution=20.0).localize(context)
        assert result.converged
        assert region.contains_point(result.position)
        assert np.hypot(*(result.position - true)) < 200.0

    def test_needs_three_beacons(self, beacons):
        region = Region(0, 0, 500, 500)
        context = LocalizationContext(
            beacons=beacons,
            audible_beacons=np.array([0, 1]),
            true_position=np.array([250.0, 250.0]),
        )
        result = ApitLocalizer(region=region).localize(context)
        assert not result.converged

    def test_requires_beacons(self):
        with pytest.raises(ValueError):
            ApitLocalizer(region=Region(0, 0, 10, 10)).localize(LocalizationContext())

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ApitLocalizer(region=Region(0, 0, 10, 10), grid_resolution=0.0)
