"""Tests for :mod:`repro.localization.rssi` (RSSI path-loss localization)."""

import numpy as np
import pytest

from repro.localization.base import LOCALIZERS, BeaconInfrastructure
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.localization.rssi import RssiPathLossLocalizer
from repro.types import Region

REGION = Region(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture(scope="module")
def beacons():
    return BeaconSpec(count=16, transmit_range=600.0).build(REGION)


class TestRadioModel:
    def test_rssi_distance_round_trip(self, beacons):
        distances = np.array([1.0, 10.0, 50.0, 250.0, 600.0])
        rssi = beacons.rssi_from_distance(distances)
        np.testing.assert_allclose(
            beacons.distance_from_rssi(rssi), distances, rtol=1e-12
        )

    def test_rssi_decreases_with_distance(self, beacons):
        rssi = beacons.rssi_from_distance(np.array([1.0, 10.0, 100.0]))
        assert rssi[0] > rssi[1] > rssi[2]
        # At the 1 m reference distance the reading is the reference power.
        assert rssi[0] == beacons.tx_power_dbm

    def test_sub_reference_distances_clamp_to_reference(self, beacons):
        # Closer than the 1 m reference never exceeds the reference power
        # (the log-distance model is not defined below its reference).
        rssi = beacons.rssi_from_distance(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_array_equal(rssi, np.full(3, beacons.tx_power_dbm))

    def test_db_noise_is_lognormal_in_range(self, beacons):
        # A fixed dB offset multiplies the recovered range by a fixed
        # factor: +10*eta dB of shadowing means exactly 10x the distance.
        eta = beacons.path_loss_exponent
        rssi = beacons.rssi_from_distance(np.array([10.0]))
        shifted = beacons.distance_from_rssi(rssi - 10.0 * eta)
        np.testing.assert_allclose(shifted, [100.0], rtol=1e-12)

    def test_rssi_noise_requires_rng(self, beacons):
        with pytest.raises(ValueError, match="rng"):
            beacons.apply_rssi_noise(np.array([-60.0]), noise_db=1.0)

    def test_rssi_noise_deterministic_under_seed(self, beacons):
        rssi = beacons.rssi_from_distance(np.array([10.0, 100.0]))
        a = beacons.apply_rssi_noise(rssi, rng=np.random.default_rng(3), noise_db=2.0)
        b = beacons.apply_rssi_noise(rssi, rng=np.random.default_rng(3), noise_db=2.0)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, rssi)

    def test_tx_power_validation(self):
        with pytest.raises(ValueError, match="finite"):
            BeaconInfrastructure(
                positions=np.zeros((3, 2)),
                transmit_range=100.0,
                tx_power_dbm=float("nan"),
            )
        with pytest.raises(ValueError):
            BeaconInfrastructure(
                positions=np.zeros((3, 2)),
                transmit_range=100.0,
                path_loss_exponent=0.0,
            )


class TestRssiLocalizer:
    def test_registered_with_aliases(self):
        assert "rssi" in LOCALIZERS.available()
        assert LOCALIZERS.canonical("rssi_path_loss") == "rssi"
        assert LOCALIZERS.canonical("rss") == "rssi"
        assert isinstance(LOCALIZERS.create("rssi"), RssiPathLossLocalizer)

    def test_modality_flags(self):
        scheme = RssiPathLossLocalizer()
        assert scheme.requires_beacons
        assert scheme.uses_rssi
        assert not scheme.uses_ranges
        assert scheme.modalities == ("rssi",)

    def test_noise_free_localization_is_near_exact(self, beacons):
        scheme = RssiPathLossLocalizer()
        positions = np.array([[300.0, 400.0], [650.0, 200.0], [500.0, 500.0]])
        contexts = beacon_contexts(positions, beacons, scheme)
        estimates = np.stack(
            [r.position for r in scheme.localize_many(contexts)]
        )
        np.testing.assert_allclose(estimates, positions, atol=1e-6)

    def test_matches_mmse_on_exact_ranges(self, beacons):
        # With zero noise the recovered ranges equal the true distances,
        # so the scheme must reproduce the MMSE baseline bit for bit.
        positions = np.array([[300.0, 400.0], [650.0, 200.0]])
        rssi_scheme = RssiPathLossLocalizer()
        mmse_scheme = MmseMultilaterationLocalizer()
        rssi_est = np.stack(
            [
                r.position
                for r in rssi_scheme.localize_many(
                    beacon_contexts(positions, beacons, rssi_scheme)
                )
            ]
        )
        mmse_est = np.stack(
            [
                r.position
                for r in mmse_scheme.localize_many(
                    beacon_contexts(positions, beacons, mmse_scheme)
                )
            ]
        )
        np.testing.assert_allclose(rssi_est, mmse_est, atol=1e-9)

    def test_contexts_carry_rssi_not_ranges(self, beacons):
        scheme = RssiPathLossLocalizer()
        contexts = beacon_contexts(
            np.array([[500.0, 500.0]]), beacons, scheme
        )
        assert contexts[0].measured_distances is None
        audible = contexts[0].audible_beacons
        assert contexts[0].measured_rssi.shape == (audible.size,)

    def test_missing_rssi_rejected(self, beacons):
        scheme = RssiPathLossLocalizer()
        mmse_contexts = beacon_contexts(
            np.array([[500.0, 500.0]]),
            beacons,
            MmseMultilaterationLocalizer(),
        )
        with pytest.raises(ValueError, match="measured_rssi"):
            scheme.localize(mmse_contexts[0])

    def test_wrong_rssi_shape_rejected(self, beacons):
        scheme = RssiPathLossLocalizer()
        context = beacon_contexts(
            np.array([[500.0, 500.0]]), beacons, scheme
        )[0]
        from dataclasses import replace

        bad = replace(context, measured_rssi=np.array([-60.0]))
        with pytest.raises(ValueError, match="one entry per audible"):
            scheme.localize(bad)

    def test_repr_is_parameterised(self):
        # The repr reaches artifact fingerprints, so the knobs must show.
        assert "refine=False" in repr(RssiPathLossLocalizer(refine=False))
