"""Cross-localizer invariant suite.

Every scheme registered in :data:`repro.localization.base.LOCALIZERS` is run
over the same seeded batch of nodes and must satisfy the shared contract:

* estimates stay within the deployment region (expanded by one radio range
  — the coarse baselines may multilaterate slightly past the boundary);
* estimates are finite;
* the same seed reproduces the same estimates bit for bit;
* where a batch path exists, it matches the per-row ``localize`` bit for
  bit (``localize_many`` for every scheme; additionally
  ``localize_observations`` for the beaconless MLE).

New schemes registered by third parties inherit the suite automatically:
the parametrisation enumerates the registry, not a hard-coded list.
"""

import numpy as np
import pytest

from repro.localization import create
from repro.localization.apit import ApitLocalizer
from repro.localization.base import LOCALIZERS
from repro.localization.beaconless import BeaconlessLocalizer
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.types import Region

#: Nodes localized per scheme (kept small: APIT and DV-Hop loop per row).
BATCH_SIZE = 16

#: Measurement noise exercised by the determinism invariant (range metres,
#: RSSI dB, or TDOA jitter metres depending on the scheme's modality).
NOISE_STD = 2.0


def _measurement_noise(scheme) -> float:
    """The determinism noise for *scheme* (0 for measurement-free schemes)."""
    uses_noise = scheme.uses_ranges or scheme.uses_rssi or scheme.uses_tdoa
    return NOISE_STD if uses_noise else 0.0

TEST_REGION = Region(0.0, 0.0, 500.0, 500.0)


def _scheme(name: str):
    """A registry scheme configured for the small test deployment."""
    if name == "apit":
        # Match the test region and coarsen the raster so the suite stays fast.
        return ApitLocalizer(region=TEST_REGION, grid_resolution=25.0)
    return create(name)


@pytest.fixture(scope="module")
def batch(small_network, small_knowledge):
    """A seeded victim batch plus the shared beacon infrastructure."""
    from repro.network.neighbors import NeighborIndex

    rng = np.random.default_rng(20050404)
    nodes = rng.choice(small_network.num_nodes, size=BATCH_SIZE, replace=False)
    observations = NeighborIndex(small_network).observations_of_nodes(nodes)
    beacons = BeaconSpec(count=9, transmit_range=400.0).build(TEST_REGION)
    return {
        "network": small_network,
        "knowledge": small_knowledge,
        "positions": small_network.positions[nodes],
        "observations": observations,
        "beacons": beacons,
    }


def _contexts(batch, scheme, *, noise_std=0.0, seed=0):
    return beacon_contexts(
        batch["positions"],
        batch["beacons"],
        scheme,
        network=batch["network"],
        observations=batch["observations"],
        knowledge=batch["knowledge"],
        noise_std=noise_std,
        rng=np.random.default_rng(seed) if noise_std > 0 else None,
    )


def _positions(results):
    return np.stack([result.position for result in results])


@pytest.mark.parametrize("name", LOCALIZERS.available())
class TestLocalizerInvariants:
    def test_estimates_inside_region_and_finite(self, name, batch):
        scheme = _scheme(name)
        results = scheme.localize_many(_contexts(batch, scheme))
        positions = _positions(results)
        assert np.isfinite(positions).all()
        margin = batch["network"].radio.nominal_range
        expanded = Region(
            TEST_REGION.x_min - margin,
            TEST_REGION.y_min - margin,
            TEST_REGION.x_max + margin,
            TEST_REGION.y_max + margin,
        )
        assert expanded.contains(positions).all(), positions

    def test_deterministic_under_same_seed(self, name, batch):
        scheme = _scheme(name)
        noise = _measurement_noise(scheme)
        a = scheme.localize_many(_contexts(batch, scheme, noise_std=noise, seed=7))
        b = scheme.localize_many(_contexts(batch, scheme, noise_std=noise, seed=7))
        np.testing.assert_array_equal(_positions(a), _positions(b))

    def test_batch_matches_per_row_bit_for_bit(self, name, batch):
        scheme = _scheme(name)
        contexts = _contexts(batch, scheme)
        batched = scheme.localize_many(contexts)
        looped = [scheme.localize(ctx) for ctx in contexts]
        np.testing.assert_array_equal(_positions(batched), _positions(looped))
        assert [r.converged for r in batched] == [r.converged for r in looped]

    def test_every_result_reports_convergence_flag(self, name, batch):
        scheme = _scheme(name)
        for result in scheme.localize_many(_contexts(batch, scheme)):
            assert isinstance(result.converged, bool)


class TestBeaconlessBatchEngine:
    """The beaconless array engine obeys the same batch == loop contract."""

    def test_localize_observations_matches_per_row_localize(self, batch):
        scheme = BeaconlessLocalizer()
        contexts = _contexts(batch, scheme)
        estimates = scheme.localize_observations(
            batch["knowledge"], batch["observations"]
        )
        looped = _positions([scheme.localize(ctx) for ctx in contexts])
        np.testing.assert_array_equal(estimates, looped)


class TestBatchPathEdgeCases:
    def test_empty_batch(self):
        for name in LOCALIZERS.available():
            assert _scheme(name).localize_many([]) == []

    def test_mixed_infrastructures_fall_back_to_loop(self, batch):
        """Contexts over different beacon sets still localize correctly."""
        scheme = create("centroid")
        a = BeaconSpec(count=9, transmit_range=400.0).build(TEST_REGION)
        b = BeaconSpec(count=4, transmit_range=400.0).build(TEST_REGION)
        contexts = beacon_contexts(
            batch["positions"][:2], a, scheme
        ) + beacon_contexts(batch["positions"][:2], b, scheme)
        batched = scheme.localize_many(contexts)
        looped = [scheme.localize(ctx) for ctx in contexts]
        np.testing.assert_array_equal(_positions(batched), _positions(looped))
