"""Equivalence of the pruned active-group engine with the dense engine.

The pruned kernels skip ``(candidate, group)`` pairs whose likelihood terms
are exact zeros (groups beyond the knowledge's support radius that the row
never observed), so estimates must be *bit-identical* to the dense engine —
the same contract `tests/localization/test_batch_equivalence.py` pins down
for the dense engine against the per-row reference.

The shared fixtures use a deployment large enough (16 x 16 groups over
1600 m) that the active sets genuinely engage: on the small 5 x 5 test
deployment the support radius covers every group and the pruned kernels
simply fall back to the dense path.
"""

import numpy as np
import pytest

from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.models import GridDeploymentModel
from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import Region


@pytest.fixture(scope="module")
def wide_generator():
    """A 256-group deployment whose region dwarfs the support radius."""
    model = GridDeploymentModel(
        region=Region(0.0, 0.0, 1600.0, 1600.0),
        rows=16,
        cols=16,
        distribution=GaussianResidentDistribution(40.0),
    )
    return NetworkGenerator(model=model, group_size=30, radio=UnitDiskRadio(80.0))


@pytest.fixture(scope="module")
def wide_knowledge(wide_generator):
    return wide_generator.knowledge(omega=500)


@pytest.fixture(scope="module")
def wide_observations(wide_generator):
    network = wide_generator.generate(rng=2025)
    index = NeighborIndex(network)
    rng = np.random.default_rng(77)
    nodes = rng.choice(network.num_nodes, size=60, replace=False)
    return index.observations_of_nodes(nodes, batched=False)


@pytest.fixture(scope="module")
def localizer():
    return BeaconlessLocalizer(resolution=2.0)


class TestSupportRadius:
    def test_pruning_engages_on_wide_deployment(self, wide_knowledge):
        radius = wide_knowledge.support_radius
        assert np.isfinite(radius)
        # The support radius must cover the radio range but stay well below
        # the region size, otherwise this suite exercises nothing.
        assert wide_knowledge.radio_range < radius < 800.0

    def test_gz_is_negligible_beyond_support(self, wide_knowledge):
        zs = np.linspace(
            wide_knowledge.support_radius, wide_knowledge.gz_table.z_max, 200
        )
        probs = wide_knowledge.gz_table.fast_lookup(zs)
        # 1 - p == 1.0 exactly: the unobserved likelihood term vanishes.
        assert np.all(1.0 - probs == 1.0)

    def test_active_groups_match_brute_force(self, wide_knowledge):
        rng = np.random.default_rng(3)
        locations = wide_knowledge.region.sample_uniform(rng, 25)
        radius = wide_knowledge.support_radius
        active = wide_knowledge.active_groups(locations)
        for row, location in enumerate(locations):
            distances = np.hypot(
                *(wide_knowledge.deployment_points - location).T
            )
            np.testing.assert_array_equal(
                active[row], np.flatnonzero(distances <= radius)
            )

    def test_explicit_radius_overrides_default(self, wide_knowledge):
        point = wide_knowledge.deployment_points[0][None, :]
        tiny = wide_knowledge.active_groups(point, radius=1.0)
        assert tiny[0].tolist() == [0]
        everything = wide_knowledge.active_groups(point, radius=1e9)
        assert everything[0].size == wide_knowledge.n_groups


class TestPrunedKernels:
    def test_pruned_batch_matches_dense(self, wide_knowledge, wide_observations):
        rng = np.random.default_rng(5)
        candidates = rng.uniform(300.0, 700.0, size=(40, 2))
        obs = wide_observations[:12]
        dense = wide_knowledge.log_likelihood_batch(candidates, obs)
        pruned = wide_knowledge.log_likelihood_batch(candidates, obs, prune=True)
        np.testing.assert_allclose(pruned, dense, rtol=1e-9, atol=1e-9)

    def test_pruned_segmented_matches_dense(self, wide_knowledge, wide_observations):
        rng = np.random.default_rng(6)
        obs = wide_observations[:5]
        counts = np.array([7, 1, 12, 3, 9])
        centers = rng.uniform(200.0, 1400.0, size=(5, 2))
        blocks = [
            center + rng.uniform(-40.0, 40.0, size=(int(c), 2))
            for center, c in zip(centers, counts)
        ]
        locations = np.vstack(blocks)
        active = wide_knowledge.active_groups(
            centers, radius=wide_knowledge.support_radius + 60.0
        )
        dense = wide_knowledge.log_likelihood_segmented(locations, obs, counts)
        pruned = wide_knowledge.log_likelihood_segmented(
            locations, obs, counts, active=active
        )
        np.testing.assert_allclose(pruned, dense, rtol=1e-9, atol=1e-9)

    def test_empty_active_set_row(self, wide_knowledge):
        """A victim outside every group's reach: all terms are exact zeros."""
        obs = np.zeros((1, wide_knowledge.n_groups))
        # Candidates far outside the region, beyond the support radius of
        # every deployment point.
        candidates = np.full((4, 2), 1e7)
        active = wide_knowledge.active_groups(candidates[:1])
        assert active[0].size == 0
        pruned = wide_knowledge.log_likelihood_segmented(
            candidates, obs, np.array([4]), active=active
        )
        dense = wide_knowledge.log_likelihood_segmented(
            candidates, obs, np.array([4])
        )
        np.testing.assert_array_equal(pruned, np.zeros(4))
        np.testing.assert_array_equal(pruned, dense)

    def test_all_groups_active_falls_back_to_dense(
        self, wide_knowledge, wide_observations
    ):
        """A radius covering every group must reproduce the dense result
        exactly (the sparse path falls back rather than gather/scatter a
        full matrix)."""
        obs = wide_observations[:3]
        rng = np.random.default_rng(8)
        locations = wide_knowledge.region.sample_uniform(rng, 9)
        counts = np.array([3, 3, 3])
        active = wide_knowledge.active_groups(locations[::3], radius=1e9)
        assert all(a.size == wide_knowledge.n_groups for a in active)
        dense = wide_knowledge.log_likelihood_segmented(locations, obs, counts)
        pruned = wide_knowledge.log_likelihood_segmented(
            locations, obs, counts, active=active
        )
        np.testing.assert_array_equal(pruned, dense)

    def test_observed_far_group_is_not_pruned(self, wide_knowledge):
        """A non-zero count for a group outside the active set must still
        poison the likelihood (p == 0 there), exactly like the dense path."""
        obs = np.zeros((1, wide_knowledge.n_groups))
        obs[0, -1] = 2.0  # far corner group
        candidates = wide_knowledge.deployment_points[0][None, :] + 5.0
        active = wide_knowledge.active_groups(candidates)
        assert wide_knowledge.n_groups - 1 not in active[0]
        dense = wide_knowledge.log_likelihood_segmented(
            candidates, obs, np.array([1])
        )
        pruned = wide_knowledge.log_likelihood_segmented(
            candidates, obs, np.array([1]), active=active
        )
        np.testing.assert_array_equal(pruned, dense)
        assert np.isneginf(pruned[0])

    def test_out_of_support_observation_poisons_segment(self, wide_knowledge):
        bad = np.zeros((1, wide_knowledge.n_groups))
        bad[0, 0] = wide_knowledge.group_size + 3  # k > m: impossible
        candidates = wide_knowledge.deployment_points[:6]
        active = wide_knowledge.active_groups(candidates[:1])
        flat = wide_knowledge.log_likelihood_segmented(
            candidates, bad, np.array([6]), active=active
        )
        assert np.all(np.isneginf(flat))


class TestPrunedEngine:
    def test_pruned_engine_matches_dense_and_reference(
        self, wide_knowledge, wide_observations, localizer
    ):
        pruned = localizer.localize_observations(wide_knowledge, wide_observations)
        dense = localizer.localize_observations(
            wide_knowledge, wide_observations, prune=False
        )
        looped = localizer.localize_observations(
            wide_knowledge, wide_observations, batched=False
        )
        np.testing.assert_array_equal(pruned, dense)
        np.testing.assert_array_equal(pruned, looped)

    def test_duplicate_and_empty_rows(
        self, wide_knowledge, wide_observations, localizer
    ):
        obs = np.vstack(
            [
                wide_observations[:8],
                np.zeros(wide_knowledge.n_groups),
                wide_observations[2],
                np.zeros(wide_knowledge.n_groups),
                wide_observations[2],
            ]
        )
        pruned = localizer.localize_observations(wide_knowledge, obs)
        looped = localizer.localize_observations(wide_knowledge, obs, batched=False)
        np.testing.assert_array_equal(pruned, looped)
        # Duplicate rows (including the all-zero pair) share their estimates.
        np.testing.assert_array_equal(pruned[9], pruned[2])
        np.testing.assert_array_equal(pruned[11], pruned[2])
        np.testing.assert_array_equal(pruned[8], pruned[10])

    def test_boundary_rows(self, wide_generator, wide_knowledge, localizer):
        """Rows whose refinement windows cross the region edge must match."""
        network = wide_generator.generate(rng=909)
        positions = network.positions
        edge = np.flatnonzero(
            (positions[:, 0] < 60)
            | (positions[:, 0] > 1540)
            | (positions[:, 1] < 60)
            | (positions[:, 1] > 1540)
        )[:30]
        obs = NeighborIndex(network).observations_of_nodes(edge, batched=False)
        np.testing.assert_array_equal(
            localizer.localize_observations(wide_knowledge, obs),
            localizer.localize_observations(wide_knowledge, obs, batched=False),
        )

    def test_small_dense_deployment_unaffected(
        self, small_knowledge, localizer, small_index, small_network
    ):
        """On the small deployment the support radius covers every group;
        pruning must quietly fall back to the dense engine."""
        rng = np.random.default_rng(99)
        nodes = rng.choice(small_network.num_nodes, size=20, replace=False)
        obs = small_index.observations_of_nodes(nodes, batched=False)
        np.testing.assert_array_equal(
            localizer.localize_observations(small_knowledge, obs),
            localizer.localize_observations(small_knowledge, obs, prune=False),
        )
