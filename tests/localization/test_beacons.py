"""Tests for :mod:`repro.localization.beacons` (declarative beacon specs)."""

import numpy as np
import pytest

from repro.localization.beacons import BEACON_LAYOUTS, BeaconSpec, beacon_contexts
from repro.localization.centroid import CentroidLocalizer
from repro.localization.dvhop import DvHopLocalizer
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.localization.rssi import RssiPathLossLocalizer
from repro.localization.tdoa import TdoaMultilaterationLocalizer
from repro.types import Region

#: One scheme per measurement modality that consumes noise draws.
NOISY_SCHEMES = [
    MmseMultilaterationLocalizer,
    RssiPathLossLocalizer,
    TdoaMultilaterationLocalizer,
]

REGION = Region(0.0, 0.0, 1000.0, 1000.0)


class TestBeaconSpec:
    @pytest.mark.parametrize("layout", BEACON_LAYOUTS)
    def test_layouts_place_count_beacons_inside_region(self, layout):
        spec = BeaconSpec(count=13, layout=layout)
        beacons = spec.build(REGION)
        assert beacons.num_beacons == 13
        assert REGION.contains(beacons.positions).all()
        assert beacons.transmit_range == spec.transmit_range

    def test_grid_layout_is_even_and_deterministic(self):
        spec = BeaconSpec(count=16, layout="grid")
        a = spec.build(REGION).positions
        b = spec.build(REGION).positions
        np.testing.assert_array_equal(a, b)
        # 4 x 4 lattice of cell centres.
        assert sorted(set(a[:, 0])) == [125.0, 375.0, 625.0, 875.0]
        assert sorted(set(a[:, 1])) == [125.0, 375.0, 625.0, 875.0]

    def test_perimeter_layout_sits_on_boundary(self):
        positions = BeaconSpec(count=8, layout="perimeter").build(REGION).positions
        on_edge = (
            (positions[:, 0] == REGION.x_min)
            | (positions[:, 0] == REGION.x_max)
            | (positions[:, 1] == REGION.y_min)
            | (positions[:, 1] == REGION.y_max)
        )
        assert on_edge.all()
        # Evenly spread: every edge gets at least one beacon.
        assert (positions[:, 1] == REGION.y_min).any()
        assert (positions[:, 1] == REGION.y_max).any()
        assert (positions[:, 0] == REGION.x_min).any()
        assert (positions[:, 0] == REGION.x_max).any()

    def test_random_layout_uses_seed(self):
        a = BeaconSpec(count=6, layout="random", seed=1).build(REGION).positions
        b = BeaconSpec(count=6, layout="random", seed=1).build(REGION).positions
        c = BeaconSpec(count=6, layout="random", seed=2).build(REGION).positions
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_explicit_rng_overrides_seed(self):
        spec = BeaconSpec(count=6, layout="random", seed=1)
        a = spec.build(REGION, rng=np.random.default_rng(99)).positions
        b = spec.build(REGION, rng=np.random.default_rng(99)).positions
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown beacon layout"):
            BeaconSpec(layout="ring")
        with pytest.raises(ValueError):
            BeaconSpec(count=0)
        with pytest.raises(ValueError):
            BeaconSpec(transmit_range=0.0)
        with pytest.raises(ValueError):
            BeaconSpec(noise_std=-1.0)

    def test_dict_round_trip(self):
        spec = BeaconSpec(count=9, layout="perimeter", noise_std=3.0, seed=4)
        assert BeaconSpec.from_dict(spec.as_dict()) == spec
        with pytest.raises(ValueError, match="unknown beacon field"):
            BeaconSpec.from_dict({"count": 9, "typo": 1})

    def test_rssi_fields_round_trip(self):
        spec = BeaconSpec(
            tx_power_dbm=-45.0,
            path_loss_exponent=3.0,
            compromised=0.25,
            compromise_displacement=150.0,
        )
        assert BeaconSpec.from_dict(spec.as_dict()) == spec
        with pytest.raises(ValueError):
            BeaconSpec(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            BeaconSpec(tx_power_dbm=float("inf"))
        with pytest.raises(ValueError):
            BeaconSpec(compromised=1.5)

    def test_none_seed_normalises_to_zero(self):
        # A spec built without a seed must stay deterministic (and share
        # its fingerprint with the explicit seed=0 spec) instead of
        # falling through to OS entropy.
        assert BeaconSpec(seed=None) == BeaconSpec(seed=0)
        assert BeaconSpec(seed=None).seed == 0

    @pytest.mark.parametrize("seed", [None, 0, 3])
    def test_repeat_builds_are_identical(self, seed):
        spec = BeaconSpec(
            count=8, layout="random", seed=seed, compromised=0.25
        )
        a = spec.build(REGION)
        b = spec.build(REGION)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.declared_positions, b.declared_positions)
        np.testing.assert_array_equal(a.compromised, b.compromised)

    def test_compromised_beacons_declare_false_positions(self):
        spec = BeaconSpec(count=16, compromised=0.25, compromise_displacement=200.0)
        beacons = spec.build(REGION)
        lying = np.flatnonzero(beacons.compromised)
        assert lying.size == 4  # round(16 * 0.25)
        offsets = beacons.declared_positions - beacons.positions
        displacement = np.hypot(offsets[:, 0], offsets[:, 1])
        np.testing.assert_allclose(displacement[lying], 200.0)
        honest = np.setdiff1d(np.arange(16), lying)
        np.testing.assert_array_equal(displacement[honest], 0.0)

    def test_zero_compromised_declares_truthfully(self):
        beacons = BeaconSpec(count=9).build(REGION)
        np.testing.assert_array_equal(
            beacons.declared_positions, beacons.positions
        )
        assert not beacons.compromised.any()


class TestFingerprint:
    """Modality-aware cache fingerprints (cross-scheme aliasing rules)."""

    LEGACY_KEYS = {"count", "layout", "transmit_range", "noise_std", "seed"}

    def test_non_rssi_schemes_keep_legacy_keys(self):
        # Pre-existing artifacts of the range/hop schemes must survive the
        # new fields: their fingerprints carry exactly the legacy keys.
        spec = BeaconSpec()
        for scheme in (
            MmseMultilaterationLocalizer(),
            DvHopLocalizer(),
            CentroidLocalizer(),
        ):
            assert set(spec.fingerprint(scheme)) == self.LEGACY_KEYS

    def test_rssi_scheme_sees_the_radio_model(self):
        spec = BeaconSpec(tx_power_dbm=-45.0, path_loss_exponent=3.0)
        print_keys = spec.fingerprint(RssiPathLossLocalizer())
        assert print_keys["tx_power_dbm"] == -45.0
        assert print_keys["path_loss_exponent"] == 3.0

    def test_radio_retune_never_invalidates_other_schemes(self):
        a = BeaconSpec(tx_power_dbm=-59.0)
        b = BeaconSpec(tx_power_dbm=-45.0)
        scheme = DvHopLocalizer()
        assert a.fingerprint(scheme) == b.fingerprint(scheme)
        rssi = RssiPathLossLocalizer()
        assert a.fingerprint(rssi) != b.fingerprint(rssi)

    def test_compromise_axis_reaches_every_scheme(self):
        # Lying beacons change every beacon-based scheme's results, so the
        # compromise fields fold into all fingerprints once non-zero.
        honest = BeaconSpec()
        lying = BeaconSpec(compromised=0.25)
        for scheme in (CentroidLocalizer(), RssiPathLossLocalizer()):
            assert honest.fingerprint(scheme) != lying.fingerprint(scheme)
            assert "compromised" in lying.fingerprint(scheme)
            assert "compromised" not in honest.fingerprint(scheme)

    def test_no_scheme_is_the_conservative_superset(self):
        print_keys = BeaconSpec(compromised=0.1).fingerprint(None)
        assert self.LEGACY_KEYS < set(print_keys)
        assert "tx_power_dbm" in print_keys
        assert "compromised" in print_keys


class TestBeaconContexts:
    @pytest.fixture()
    def beacons(self):
        return BeaconSpec(count=9, transmit_range=400.0).build(REGION)

    def test_contexts_carry_audibility_and_distances(self, beacons):
        positions = np.array([[100.0, 100.0], [900.0, 900.0]])
        contexts = beacon_contexts(
            positions, beacons, MmseMultilaterationLocalizer()
        )
        for row, context in enumerate(contexts):
            expected_audible = beacons.audible_from(positions[row])
            np.testing.assert_array_equal(context.audible_beacons, expected_audible)
            np.testing.assert_allclose(
                context.measured_distances,
                beacons.measured_distances(positions[row])[expected_audible],
            )
            np.testing.assert_array_equal(context.true_position, positions[row])

    def test_range_free_scheme_gets_no_distances(self, beacons):
        contexts = beacon_contexts(
            np.array([[500.0, 500.0]]), beacons, CentroidLocalizer()
        )
        assert contexts[0].measured_distances is None

    @pytest.mark.parametrize("scheme_cls", NOISY_SCHEMES)
    def test_noise_requires_rng(self, beacons, scheme_cls):
        with pytest.raises(ValueError, match="rng is required"):
            beacon_contexts(
                np.array([[500.0, 500.0]]),
                beacons,
                scheme_cls(),
                noise_std=2.0,
            )

    @pytest.mark.parametrize("scheme_cls", NOISY_SCHEMES)
    def test_zero_noise_needs_no_rng(self, beacons, scheme_cls):
        contexts = beacon_contexts(
            np.array([[500.0, 500.0]]), beacons, scheme_cls(), noise_std=0.0
        )
        assert len(contexts) == 1

    def test_rssi_contexts_are_noisy_in_db(self, beacons):
        positions = np.array([[500.0, 500.0]])
        clean = beacon_contexts(positions, beacons, RssiPathLossLocalizer())
        noisy = beacon_contexts(
            positions,
            beacons,
            RssiPathLossLocalizer(),
            noise_std=2.0,
            rng=np.random.default_rng(1),
        )
        db_error = noisy[0].measured_rssi - clean[0].measured_rssi
        # Additive in dB (each reading shifted, none clipped)...
        assert np.all(db_error != 0.0)
        assert np.abs(db_error).max() < 10.0
        # ...which means multiplicative (log-normal) in recovered range.
        ratio = beacons.distance_from_rssi(
            noisy[0].measured_rssi
        ) / beacons.distance_from_rssi(clean[0].measured_rssi)
        np.testing.assert_allclose(
            ratio,
            10.0 ** (-db_error / (10.0 * beacons.path_loss_exponent)),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("scheme_cls", NOISY_SCHEMES)
    def test_noise_draw_ordering_is_pinned(self, beacons, scheme_cls):
        """The per-row noise loop consumes the rng row by row.

        Cached artifacts depend on this exact draw order: contexts built
        one position at a time from one shared generator must equal the
        batch build bit for bit.  A refactor that vectorises the noise
        across rows (or reorders the modality branches) would break warm
        caches and fail here.
        """
        scheme = scheme_cls()
        positions = np.array([[320.0, 250.0], [540.0, 610.0], [720.0, 420.0]])
        batch = beacon_contexts(
            positions,
            beacons,
            scheme,
            noise_std=2.0,
            rng=np.random.default_rng(42),
        )
        shared = np.random.default_rng(42)
        rows = [
            beacon_contexts(
                positions[row : row + 1],
                beacons,
                scheme,
                noise_std=2.0,
                rng=shared,
            )[0]
            for row in range(positions.shape[0])
        ]
        for got, expected in zip(batch, rows):
            for field in ("measured_distances", "measured_rssi", "tdoa_differences"):
                got_value = getattr(got, field)
                expected_value = getattr(expected, field)
                assert (got_value is None) == (expected_value is None)
                if got_value is not None:
                    np.testing.assert_array_equal(got_value, expected_value)

    def test_dvhop_contexts_need_network(self, beacons):
        with pytest.raises(ValueError, match="network"):
            beacon_contexts(
                np.array([[500.0, 500.0]]), beacons, DvHopLocalizer()
            )

    def test_dvhop_contexts_carry_flooding_profile(self, small_network):
        beacons = BeaconSpec(count=4, transmit_range=200.0).build(
            Region(0.0, 0.0, 500.0, 500.0)
        )
        rng = np.random.default_rng(3)
        nodes = rng.choice(small_network.num_nodes, size=4, replace=False)
        contexts = beacon_contexts(
            small_network.positions[nodes],
            beacons,
            DvHopLocalizer(),
            network=small_network,
        )
        for context in contexts:
            assert context.hop_counts.shape == (4,)
            assert context.avg_hop_distance > 0.0

    def test_bad_positions_shape_rejected(self, beacons):
        with pytest.raises(ValueError, match="shape"):
            beacon_contexts(np.zeros(4), beacons, CentroidLocalizer())


class TestHopsForMovedPositions:
    """Regression: hop rows must resolve by node index, not float equality.

    The historical lookup matched positions against ``network.positions``
    by exact tuple — correct only while the caller's positions were
    bit-identical to the deployment's.  Mobility jitter (the temporal
    engine) or any dtype round trip broke it.  With ``nodes=`` the rows
    are gathered by index; the exact lookup survives only as the fallback
    for coordinate-only callers.
    """

    @pytest.fixture()
    def beacons(self):
        return BeaconSpec(count=4, transmit_range=200.0).build(
            Region(0.0, 0.0, 500.0, 500.0)
        )

    def test_jittered_positions_resolve_via_nodes(self, small_network, beacons):
        rng = np.random.default_rng(6)
        nodes = rng.choice(small_network.num_nodes, size=5, replace=False)
        exact = beacon_contexts(
            small_network.positions[nodes],
            beacons,
            DvHopLocalizer(),
            network=small_network,
            nodes=nodes,
        )
        jittered = beacon_contexts(
            small_network.positions[nodes] + rng.normal(0.0, 3.0, size=(5, 2)),
            beacons,
            DvHopLocalizer(),
            network=small_network,
            nodes=nodes,
        )
        # Hop rows follow the node identity, not the (moved) coordinates.
        for a, b in zip(exact, jittered):
            np.testing.assert_array_equal(a.hop_counts, b.hop_counts)
            assert a.avg_hop_distance == b.avg_hop_distance

    def test_moved_positions_without_nodes_still_raise(
        self, small_network, beacons
    ):
        with pytest.raises(ValueError, match="pass nodes="):
            beacon_contexts(
                small_network.positions[:2] + 0.5,
                beacons,
                DvHopLocalizer(),
                network=small_network,
            )

    def test_nodes_shape_validated(self, small_network, beacons):
        with pytest.raises(ValueError, match="one network index"):
            beacon_contexts(
                small_network.positions[:3],
                beacons,
                DvHopLocalizer(),
                network=small_network,
                nodes=np.array([0]),
            )

    def test_nodes_agree_with_exact_lookup(self, small_network, beacons):
        """On unmoved positions the index path equals the legacy lookup."""
        rng = np.random.default_rng(9)
        nodes = rng.choice(small_network.num_nodes, size=4, replace=False)
        by_index = beacon_contexts(
            small_network.positions[nodes],
            beacons,
            DvHopLocalizer(),
            network=small_network,
            nodes=nodes,
        )
        by_position = beacon_contexts(
            small_network.positions[nodes],
            beacons,
            DvHopLocalizer(),
            network=small_network,
        )
        for a, b in zip(by_index, by_position):
            np.testing.assert_array_equal(a.hop_counts, b.hop_counts)
