"""Tests for :mod:`repro.localization.beacons` (declarative beacon specs)."""

import numpy as np
import pytest

from repro.localization.beacons import BEACON_LAYOUTS, BeaconSpec, beacon_contexts
from repro.localization.centroid import CentroidLocalizer
from repro.localization.dvhop import DvHopLocalizer
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.types import Region

REGION = Region(0.0, 0.0, 1000.0, 1000.0)


class TestBeaconSpec:
    @pytest.mark.parametrize("layout", BEACON_LAYOUTS)
    def test_layouts_place_count_beacons_inside_region(self, layout):
        spec = BeaconSpec(count=13, layout=layout)
        beacons = spec.build(REGION)
        assert beacons.num_beacons == 13
        assert REGION.contains(beacons.positions).all()
        assert beacons.transmit_range == spec.transmit_range

    def test_grid_layout_is_even_and_deterministic(self):
        spec = BeaconSpec(count=16, layout="grid")
        a = spec.build(REGION).positions
        b = spec.build(REGION).positions
        np.testing.assert_array_equal(a, b)
        # 4 x 4 lattice of cell centres.
        assert sorted(set(a[:, 0])) == [125.0, 375.0, 625.0, 875.0]
        assert sorted(set(a[:, 1])) == [125.0, 375.0, 625.0, 875.0]

    def test_perimeter_layout_sits_on_boundary(self):
        positions = BeaconSpec(count=8, layout="perimeter").build(REGION).positions
        on_edge = (
            (positions[:, 0] == REGION.x_min)
            | (positions[:, 0] == REGION.x_max)
            | (positions[:, 1] == REGION.y_min)
            | (positions[:, 1] == REGION.y_max)
        )
        assert on_edge.all()
        # Evenly spread: every edge gets at least one beacon.
        assert (positions[:, 1] == REGION.y_min).any()
        assert (positions[:, 1] == REGION.y_max).any()
        assert (positions[:, 0] == REGION.x_min).any()
        assert (positions[:, 0] == REGION.x_max).any()

    def test_random_layout_uses_seed(self):
        a = BeaconSpec(count=6, layout="random", seed=1).build(REGION).positions
        b = BeaconSpec(count=6, layout="random", seed=1).build(REGION).positions
        c = BeaconSpec(count=6, layout="random", seed=2).build(REGION).positions
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_explicit_rng_overrides_seed(self):
        spec = BeaconSpec(count=6, layout="random", seed=1)
        a = spec.build(REGION, rng=np.random.default_rng(99)).positions
        b = spec.build(REGION, rng=np.random.default_rng(99)).positions
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown beacon layout"):
            BeaconSpec(layout="ring")
        with pytest.raises(ValueError):
            BeaconSpec(count=0)
        with pytest.raises(ValueError):
            BeaconSpec(transmit_range=0.0)
        with pytest.raises(ValueError):
            BeaconSpec(noise_std=-1.0)

    def test_dict_round_trip(self):
        spec = BeaconSpec(count=9, layout="perimeter", noise_std=3.0, seed=4)
        assert BeaconSpec.from_dict(spec.as_dict()) == spec
        with pytest.raises(ValueError, match="unknown beacon field"):
            BeaconSpec.from_dict({"count": 9, "typo": 1})


class TestBeaconContexts:
    @pytest.fixture()
    def beacons(self):
        return BeaconSpec(count=9, transmit_range=400.0).build(REGION)

    def test_contexts_carry_audibility_and_distances(self, beacons):
        positions = np.array([[100.0, 100.0], [900.0, 900.0]])
        contexts = beacon_contexts(
            positions, beacons, MmseMultilaterationLocalizer()
        )
        for row, context in enumerate(contexts):
            expected_audible = beacons.audible_from(positions[row])
            np.testing.assert_array_equal(context.audible_beacons, expected_audible)
            np.testing.assert_allclose(
                context.measured_distances,
                beacons.measured_distances(positions[row])[expected_audible],
            )
            np.testing.assert_array_equal(context.true_position, positions[row])

    def test_range_free_scheme_gets_no_distances(self, beacons):
        contexts = beacon_contexts(
            np.array([[500.0, 500.0]]), beacons, CentroidLocalizer()
        )
        assert contexts[0].measured_distances is None

    def test_noise_requires_rng(self, beacons):
        with pytest.raises(ValueError, match="rng"):
            beacon_contexts(
                np.array([[500.0, 500.0]]),
                beacons,
                MmseMultilaterationLocalizer(),
                noise_std=2.0,
            )

    def test_dvhop_contexts_need_network(self, beacons):
        with pytest.raises(ValueError, match="network"):
            beacon_contexts(
                np.array([[500.0, 500.0]]), beacons, DvHopLocalizer()
            )

    def test_dvhop_contexts_carry_flooding_profile(self, small_network):
        beacons = BeaconSpec(count=4, transmit_range=200.0).build(
            Region(0.0, 0.0, 500.0, 500.0)
        )
        rng = np.random.default_rng(3)
        nodes = rng.choice(small_network.num_nodes, size=4, replace=False)
        contexts = beacon_contexts(
            small_network.positions[nodes],
            beacons,
            DvHopLocalizer(),
            network=small_network,
        )
        for context in contexts:
            assert context.hop_counts.shape == (4,)
            assert context.avg_hop_distance > 0.0

    def test_bad_positions_shape_rejected(self, beacons):
        with pytest.raises(ValueError, match="shape"):
            beacon_contexts(np.zeros(4), beacons, CentroidLocalizer())
