"""Batch-vs-loop equivalence of the vectorised evaluation engine.

The batched localization engine and the one-pass observation collection must
reproduce their per-row reference implementations exactly — same estimates,
same argmax tie-breaking — on seeded networks, including custom-range and
empty-observation rows.  These tests lock that contract in.
"""

import numpy as np
import pytest

from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.neighbors import NeighborIndex
from repro.utils.stats import binomial_log_pmf


@pytest.fixture(scope="module")
def localizer():
    return BeaconlessLocalizer(resolution=2.0)


@pytest.fixture(scope="module")
def seeded_observations(small_network, small_index):
    rng = np.random.default_rng(99)
    nodes = rng.choice(small_network.num_nodes, size=60, replace=False)
    return small_index.observations_of_nodes(nodes, batched=False)


class TestLocalizationEquivalence:
    def test_batch_matches_reference_exactly(
        self, small_knowledge, localizer, seeded_observations
    ):
        batched = localizer.localize_observations(small_knowledge, seeded_observations)
        looped = localizer.localize_observations(
            small_knowledge, seeded_observations, batched=False
        )
        np.testing.assert_array_equal(batched, looped)

    def test_empty_and_duplicate_rows(
        self,
        small_knowledge,
        localizer,
        seeded_observations,
    ):
        obs = np.vstack(
            [
                seeded_observations[:10],
                np.zeros(small_knowledge.n_groups),
                seeded_observations[3],
                np.zeros(small_knowledge.n_groups),
            ]
        )
        batched = localizer.localize_observations(small_knowledge, obs)
        looped = localizer.localize_observations(small_knowledge, obs, batched=False)
        np.testing.assert_array_equal(batched, looped)
        # Duplicate rows get duplicate estimates.
        np.testing.assert_array_equal(batched[10], batched[12])
        np.testing.assert_array_equal(batched[11], batched[3])

    def test_boundary_rows(
        self,
        small_network,
        small_index,
        small_knowledge,
        localizer,
    ):
        """Rows whose refinement windows cross the region edge (the clipped
        grid construction) must also match the reference."""
        pos = small_network.positions
        edge = np.flatnonzero(
            (pos[:, 0] < 50)
            | (pos[:, 0] > 450)
            | (pos[:, 1] < 50)
            | (pos[:, 1] > 450)
        )[:40]
        obs = small_index.observations_of_nodes(edge, batched=False)
        np.testing.assert_array_equal(
            localizer.localize_observations(small_knowledge, obs),
            localizer.localize_observations(small_knowledge, obs, batched=False),
        )

    def test_custom_range_network(self, small_generator, small_knowledge, localizer):
        network = small_generator.generate(rng=31)
        rng = np.random.default_rng(31)
        for node in rng.choice(network.num_nodes, size=8, replace=False):
            network.set_node_range(int(node), 150.0)
        index = NeighborIndex(network)
        nodes = rng.choice(network.num_nodes, size=30, replace=False)
        obs = index.observations_of_nodes(nodes)
        np.testing.assert_array_equal(
            index.observations_of_nodes(nodes, batched=False), obs
        )
        np.testing.assert_array_equal(
            localizer.localize_observations(small_knowledge, obs),
            localizer.localize_observations(small_knowledge, obs, batched=False),
        )

    def test_single_row_promoted(self, small_knowledge, localizer, seeded_observations):
        single = localizer.localize_observations(
            small_knowledge, seeded_observations[0]
        )
        assert single.shape == (1, 2)
        np.testing.assert_array_equal(
            single[0],
            localizer.localize_observations(small_knowledge, seeded_observations)[0],
        )


class TestLikelihoodKernels:
    def test_batch_kernel_matches_broadcast_pmf(
        self,
        small_knowledge,
        seeded_observations,
    ):
        rng = np.random.default_rng(5)
        candidates = small_knowledge.region.sample_uniform(rng, 40)
        obs = seeded_observations[:12]
        got = small_knowledge.log_likelihood_batch(candidates, obs)
        probs = small_knowledge.membership_probabilities(candidates)
        expected = binomial_log_pmf(
            obs[:, None, :], small_knowledge.group_size, probs[None, :, :]
        ).sum(axis=-1)
        assert got.shape == (12, 40)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_batch_kernel_matches_per_row_log_likelihood(
        self, small_knowledge, seeded_observations
    ):
        rng = np.random.default_rng(6)
        candidates = small_knowledge.region.sample_uniform(rng, 25)
        got = small_knowledge.log_likelihood_batch(candidates, seeded_observations[:8])
        for row in range(8):
            np.testing.assert_allclose(
                got[row],
                small_knowledge.log_likelihood(candidates, seeded_observations[row]),
                rtol=1e-9,
                atol=1e-9,
            )

    def test_segmented_kernel_matches_per_row_log_likelihood(
        self, small_knowledge, seeded_observations
    ):
        rng = np.random.default_rng(7)
        counts = np.array([5, 1, 17, 3])
        obs = seeded_observations[:4]
        blocks = [small_knowledge.region.sample_uniform(rng, int(c)) for c in counts]
        flat = small_knowledge.log_likelihood_segmented(
            np.vstack(blocks), obs, counts
        )
        offset = 0
        for row, block in enumerate(blocks):
            np.testing.assert_allclose(
                flat[offset : offset + counts[row]],
                small_knowledge.log_likelihood(block, obs[row]),
                rtol=1e-9,
                atol=1e-9,
            )
            offset += counts[row]

    def test_kernels_handle_out_of_support_observations(self, small_knowledge):
        rng = np.random.default_rng(8)
        candidates = small_knowledge.region.sample_uniform(rng, 6)
        bad = np.full((1, small_knowledge.n_groups), 0.0)
        bad[0, 0] = small_knowledge.group_size + 5  # k > m: impossible
        assert np.all(
            np.isneginf(small_knowledge.log_likelihood_batch(candidates, bad)),
        )
        flat = small_knowledge.log_likelihood_segmented(
            candidates, bad, np.array([candidates.shape[0]])
        )
        assert np.all(np.isneginf(flat))

    def test_segmented_rejects_mismatched_counts(self, small_knowledge):
        candidates = np.zeros((4, 2))
        obs = np.zeros((2, small_knowledge.n_groups))
        with pytest.raises(ValueError):
            small_knowledge.log_likelihood_segmented(candidates, obs, np.array([3, 3]))
        with pytest.raises(ValueError):
            small_knowledge.log_likelihood_segmented(candidates, obs, np.array([4]))
