"""Tests for :mod:`repro.experiments.session`."""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.localization.beacons import BeaconSpec


@pytest.fixture(scope="module")
def tiny_simulation():
    """A fast simulation: paper physics but few Monte-Carlo samples and a
    sparser network (m=60) so the module's tests run in seconds."""
    config = SimulationConfig(
        group_size=60,
        num_training_samples=60,
        training_samples_per_network=30,
        num_victims=60,
        victims_per_network=30,
        gz_omega=400,
        seed=99,
    )
    return LadSession(config)


class TestCaching:
    def test_knowledge_cached(self, tiny_simulation):
        assert tiny_simulation.knowledge is tiny_simulation.knowledge

    def test_training_data_cached(self, tiny_simulation):
        assert tiny_simulation.training_data is tiny_simulation.training_data
        assert tiny_simulation.training_data.num_samples == 60

    def test_benign_scores_cached_per_metric(self, tiny_simulation):
        a = tiny_simulation.benign_scores("diff")
        b = tiny_simulation.benign_scores("diff")
        assert a is b
        c = tiny_simulation.benign_scores("add_all")
        assert c is not a

    def test_victims_cached(self, tiny_simulation):
        sample = tiny_simulation.victims()
        assert sample is tiny_simulation.victims()
        assert sample.observations.shape[0] == 60
        assert sample.actual_locations.shape == (60, 2)


class TestEvaluationEntryPoints:
    def test_attacked_scores_shape(self, tiny_simulation):
        scores = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        assert scores.shape == (60,)

    def test_attack_scores_deterministic_per_parameters(self, tiny_simulation):
        a = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        b = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        np.testing.assert_allclose(a, b)

    def test_roc_and_detection_rate(self, tiny_simulation):
        roc = tiny_simulation.roc(
            "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
        )
        assert roc.detection_rate_at(1.0) == 1.0
        dr, thr = tiny_simulation.detection_rate(
            "diff",
            "dec_bounded",
            degree_of_damage=160.0,
            compromised_fraction=0.1,
            false_positive_rate=0.05,
        )
        assert 0.0 <= dr <= 1.0
        assert np.isfinite(thr)

    def test_detection_rate_increases_with_damage(self, tiny_simulation):
        low, _ = tiny_simulation.detection_rate(
            "diff", "dec_bounded", degree_of_damage=30.0, compromised_fraction=0.1
        )
        high, _ = tiny_simulation.detection_rate(
            "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
        )
        assert high >= low

    def test_outcome_bundle(self, tiny_simulation):
        outcome = tiny_simulation.outcome(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        assert outcome.attacked_scores.shape == (60,)
        assert 0.0 <= outcome.detection_rate <= 1.0

    def test_benign_localization_error_reported(self, tiny_simulation):
        error = tiny_simulation.benign_localization_error()
        assert 0.0 < error < 100.0

    def test_default_config_used_when_omitted(self):
        sim = LadSession()
        assert sim.config.group_size == 300


class TestLegacyShimRemoval:
    """The one-release deprecation shims are gone, not just deprecated."""

    def test_lad_simulation_removed(self):
        import repro
        import repro.experiments

        with pytest.raises(AttributeError, match="LadSimulation"):
            repro.LadSimulation
        assert not hasattr(repro.experiments, "LadSimulation")
        with pytest.raises(ModuleNotFoundError):
            import repro.experiments.harness  # noqa: F401

    def test_get_metric_removed(self):
        import repro
        import repro.core

        with pytest.raises(AttributeError, match="get_metric"):
            repro.get_metric
        assert not hasattr(repro.core, "get_metric")


class TestBeaconSessions:
    """Beacon-based localizers are first-class session citizens."""

    @pytest.fixture(scope="class")
    def beacon_config(self):
        return SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=31,
            beacons=BeaconSpec(count=9, layout="grid", transmit_range=450.0),
        )

    def test_session_deploys_configured_beacons(self, beacon_config):
        session = LadSession(beacon_config, localizer="centroid")
        beacons = session.beacons
        assert beacons is not None
        assert beacons.num_beacons == 9
        assert session.beacons is beacons  # cached
        # The whole pipeline runs end to end behind the beacon scheme.
        rate, threshold = session.detection_rate(
            "diff",
            "dec_bounded",
            degree_of_damage=160.0,
            compromised_fraction=0.1,
            false_positive_rate=0.05,
        )
        assert 0.0 <= rate <= 1.0 and np.isfinite(threshold)

    def test_beacon_scheme_defaults_spec_when_config_has_none(self):
        config = SimulationConfig(
            group_size=40,
            num_training_samples=20,
            training_samples_per_network=10,
            num_victims=20,
            victims_per_network=10,
            gz_omega=300,
            seed=31,
        )
        session = LadSession(config, localizer="mmse")
        assert session.beacon_spec == BeaconSpec()
        assert session.beacons.num_beacons == BeaconSpec().count

    def test_beaconless_session_deploys_no_beacons(self, tiny_simulation):
        assert tiny_simulation.beacon_spec is None
        assert tiny_simulation.beacons is None

    def test_beacon_placement_is_seed_deterministic(self, beacon_config):
        from dataclasses import replace

        random_config = replace(
            beacon_config,
            beacons=BeaconSpec(count=7, layout="random", seed=3),
        )
        a = LadSession(random_config, localizer="centroid").beacons
        b = LadSession(random_config, localizer="centroid").beacons
        np.testing.assert_array_equal(a.positions, b.positions)
        reseeded = replace(
            random_config,
            beacons=BeaconSpec(count=7, layout="random", seed=4),
        )
        c = LadSession(reseeded, localizer="centroid").beacons
        assert not np.array_equal(a.positions, c.positions)

    def test_apit_localizer_matches_config_region(self):
        config = SimulationConfig(group_size=40, region_size=500.0)
        session = LadSession(config, localizer="apit")
        assert session.localizer.region.x_max == 500.0
