"""Tests for :mod:`repro.experiments.session` and the legacy harness shim."""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.harness import LadSimulation
from repro.experiments.session import LadSession


@pytest.fixture(scope="module")
def tiny_simulation():
    """A fast simulation: paper physics but few Monte-Carlo samples and a
    sparser network (m=60) so the module's tests run in seconds."""
    config = SimulationConfig(
        group_size=60,
        num_training_samples=60,
        training_samples_per_network=30,
        num_victims=60,
        victims_per_network=30,
        gz_omega=400,
        seed=99,
    )
    return LadSession(config)


class TestCaching:
    def test_knowledge_cached(self, tiny_simulation):
        assert tiny_simulation.knowledge is tiny_simulation.knowledge

    def test_training_data_cached(self, tiny_simulation):
        assert tiny_simulation.training_data is tiny_simulation.training_data
        assert tiny_simulation.training_data.num_samples == 60

    def test_benign_scores_cached_per_metric(self, tiny_simulation):
        a = tiny_simulation.benign_scores("diff")
        b = tiny_simulation.benign_scores("diff")
        assert a is b
        c = tiny_simulation.benign_scores("add_all")
        assert c is not a

    def test_victims_cached(self, tiny_simulation):
        sample = tiny_simulation.victims()
        assert sample is tiny_simulation.victims()
        assert sample.observations.shape[0] == 60
        assert sample.actual_locations.shape == (60, 2)


class TestEvaluationEntryPoints:
    def test_attacked_scores_shape(self, tiny_simulation):
        scores = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        assert scores.shape == (60,)

    def test_attack_scores_deterministic_per_parameters(self, tiny_simulation):
        a = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        b = tiny_simulation.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        np.testing.assert_allclose(a, b)

    def test_roc_and_detection_rate(self, tiny_simulation):
        roc = tiny_simulation.roc(
            "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
        )
        assert roc.detection_rate_at(1.0) == 1.0
        dr, thr = tiny_simulation.detection_rate(
            "diff",
            "dec_bounded",
            degree_of_damage=160.0,
            compromised_fraction=0.1,
            false_positive_rate=0.05,
        )
        assert 0.0 <= dr <= 1.0
        assert np.isfinite(thr)

    def test_detection_rate_increases_with_damage(self, tiny_simulation):
        low, _ = tiny_simulation.detection_rate(
            "diff", "dec_bounded", degree_of_damage=30.0, compromised_fraction=0.1
        )
        high, _ = tiny_simulation.detection_rate(
            "diff", "dec_bounded", degree_of_damage=160.0, compromised_fraction=0.1
        )
        assert high >= low

    def test_outcome_bundle(self, tiny_simulation):
        outcome = tiny_simulation.outcome(
            "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
        )
        assert outcome.attacked_scores.shape == (60,)
        assert 0.0 <= outcome.detection_rate <= 1.0

    def test_benign_localization_error_reported(self, tiny_simulation):
        error = tiny_simulation.benign_localization_error()
        assert 0.0 < error < 100.0

    def test_default_config_used_when_omitted(self):
        sim = LadSession()
        assert sim.config.group_size == 300


class TestLegacyShim:
    def test_lad_simulation_warns_and_is_a_session(self):
        with pytest.warns(DeprecationWarning, match="LadSimulation is deprecated"):
            sim = LadSimulation(SimulationConfig(group_size=40))
        assert isinstance(sim, LadSession)

    def test_shim_results_match_session(self):
        config = SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=31,
        )
        with pytest.warns(DeprecationWarning):
            legacy = LadSimulation(config)
        modern = LadSession(config)
        np.testing.assert_array_equal(
            legacy.benign_scores("diff"), modern.benign_scores("diff")
        )
        np.testing.assert_array_equal(
            legacy.attacked_scores(
                "diff", "dec_bounded",
                degree_of_damage=120.0, compromised_fraction=0.1,
            ),
            modern.attacked_scores(
                "diff", "dec_bounded",
                degree_of_damage=120.0, compromised_fraction=0.1,
            ),
        )
