"""Tests for :mod:`repro.experiments.reporting`."""

from repro.experiments.reporting import format_figure, format_panel, format_series
from repro.experiments.results import FigureResult, PanelResult, SeriesResult


def _panel_shared_grid():
    panel = PanelResult(title="D=80", x_label="FP", y_label="DR")
    panel.add_series(SeriesResult(label="diff", x=[0.0, 0.5, 1.0], y=[0.2, 0.9, 1.0]))
    panel.add_series(SeriesResult(label="prob", x=[0.0, 0.5, 1.0], y=[0.1, 0.7, 1.0]))
    return panel


class TestFormatting:
    def test_series_contains_label_and_values(self):
        text = format_series(SeriesResult(label="x=10%", x=[40.0], y=[0.5]))
        assert "x=10%" in text
        assert "0.500" in text
        assert "40" in text

    def test_panel_tabular_when_grids_match(self):
        text = format_panel(_panel_shared_grid())
        lines = text.splitlines()
        assert lines[0].startswith("-- D=80")
        assert "diff" in lines[1] and "prob" in lines[1]
        # Three data rows follow the header.
        assert len(lines) == 5

    def test_panel_fallback_when_grids_differ(self):
        panel = PanelResult(title="mixed", x_label="x", y_label="y")
        panel.add_series(SeriesResult(label="a", x=[0.0, 1.0], y=[1.0, 2.0]))
        panel.add_series(SeriesResult(label="b", x=[0.0, 2.0], y=[1.0, 2.0]))
        text = format_panel(panel)
        assert "a" in text and "b" in text

    def test_empty_panel(self):
        text = format_panel(PanelResult(title="empty", x_label="x", y_label="y"))
        assert "(no series)" in text

    def test_figure_includes_parameters_and_panels(self):
        figure = FigureResult(figure_id="fig7", title="demo", parameters={"m": 300})
        figure.add_panel(_panel_shared_grid())
        text = format_figure(figure)
        assert "fig7" in text
        assert "m=300" in text
        assert "D=80" in text
