"""Cache-aliasing regression tests.

The artifact store is content-addressed, so the only way a warm cache can
lie is a fingerprint that under-describes what produced an artifact.  These
tests pin the guarantee the beacon work introduced: two sessions differing
only in their localizer (or beacon layout) produce disjoint artifact keys
and a sweep under one scheme never consumes another scheme's cached scores
— while a repeated sweep of the *same* beacon scheme is served entirely
from cache, bit-identical to the cold run.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore, fingerprint_key
from repro.localization.beacons import BeaconSpec


@pytest.fixture()
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=20,
        training_samples_per_network=10,
        num_victims=20,
        victims_per_network=10,
        gz_omega=300,
        seed=90210,
        beacons=BeaconSpec(count=9, transmit_range=450.0),
    )


def _attacked_key(session):
    return session.attacked_scores_key(
        "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
    )


def _benign_key(session, metric="diff"):
    fingerprint = session.training_fingerprint()
    fingerprint["metric"] = metric
    return fingerprint_key(fingerprint)


class TestDisjointKeys:
    def test_sessions_differing_only_in_localizer(self, tiny_config):
        from repro.localization.base import LOCALIZERS

        sessions = {
            name: LadSession(tiny_config, localizer=name)
            for name in LOCALIZERS.available()
        }
        benign_keys = [_benign_key(s) for s in sessions.values()]
        attacked_keys = [_attacked_key(s) for s in sessions.values()]
        assert len(set(benign_keys)) == len(sessions)
        assert len(set(attacked_keys)) == len(sessions)

    def test_rssi_radio_retune_only_touches_rssi_keys(self, tiny_config):
        """Modality-aware fingerprints: re-tuning the RSSI radio model
        changes the rssi scheme's keys and nobody else's."""
        retuned = tiny_config.with_beacons(
            BeaconSpec(
                count=9,
                transmit_range=450.0,
                tx_power_dbm=-45.0,
                path_loss_exponent=3.0,
            )
        )
        for localizer in ("centroid", "mmse", "dvhop", "apit", "tdoa"):
            a = LadSession(tiny_config, localizer=localizer)
            b = LadSession(retuned, localizer=localizer)
            assert _benign_key(a) == _benign_key(b)
            assert _attacked_key(a) == _attacked_key(b)
        a = LadSession(tiny_config, localizer="rssi")
        b = LadSession(retuned, localizer="rssi")
        assert _benign_key(a) != _benign_key(b)
        assert _attacked_key(a) != _attacked_key(b)

    def test_beacon_compromise_touches_every_beacon_scheme(self, tiny_config):
        compromised = tiny_config.with_beacons(
            BeaconSpec(count=9, transmit_range=450.0, compromised=0.25)
        )
        for localizer in ("centroid", "mmse", "dvhop", "rssi", "tdoa"):
            a = LadSession(tiny_config, localizer=localizer)
            b = LadSession(compromised, localizer=localizer)
            assert _benign_key(a) != _benign_key(b)

    def test_tdoa_solver_variants_have_disjoint_keys(self, tiny_config):
        """The two hyperbolic solvers agree only to conditioning, so their
        artifacts must never alias (the solver knob reaches the repr)."""
        from repro.localization.tdoa import TdoaMultilaterationLocalizer

        a = LadSession(
            tiny_config, localizer=TdoaMultilaterationLocalizer(solver="lstsq")
        )
        b = LadSession(
            tiny_config,
            localizer=TdoaMultilaterationLocalizer(solver="closed_form"),
        )
        assert _benign_key(a) != _benign_key(b)
        assert _attacked_key(a) != _attacked_key(b)

    def test_sessions_differing_only_in_beacon_layout(self, tiny_config):
        variants = [
            BeaconSpec(count=9, transmit_range=450.0),
            BeaconSpec(count=16, transmit_range=450.0),
            BeaconSpec(count=9, layout="perimeter", transmit_range=450.0),
            BeaconSpec(count=9, transmit_range=450.0, noise_std=2.0),
            BeaconSpec(count=9, transmit_range=450.0, seed=1),
        ]
        sessions = [
            LadSession(tiny_config.with_beacons(spec), localizer="centroid")
            for spec in variants
        ]
        assert len({_benign_key(s) for s in sessions}) == len(variants)
        assert len({_attacked_key(s) for s in sessions}) == len(variants)

    def test_beaconless_ignores_beacon_spec(self, tiny_config):
        """A beaconless session never reads the beacons, so two configs
        differing only there legitimately share trained artifacts."""
        with_beacons = LadSession(tiny_config, localizer="beaconless")
        without = LadSession(
            tiny_config.with_beacons(None), localizer="beaconless"
        )
        assert _benign_key(with_beacons) == _benign_key(without)
        assert _attacked_key(with_beacons) == _attacked_key(without)


class TestZeroCrossHits:
    def test_second_localizer_recomputes_everything_scored(
        self, tiny_config, tmp_path
    ):
        spec = ScenarioSpec(
            name="alias",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
            config=tiny_config,
        )
        first = spec.session(localizer="centroid", store=ArtifactStore(tmp_path))
        first.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert first.store.hits == 0

        second = spec.session(localizer="mmse", store=ArtifactStore(tmp_path))
        second.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        # Nothing scored under one scheme is served to the other.
        assert second.store.hit_counts["benign_scores"] == 0
        assert second.store.hit_counts["attacked_scores"] == 0
        # The victims' honest observations are localizer-independent by
        # construction, so sharing them across schemes is correct (and
        # documented) — pin that this is the *only* shared artifact.
        assert second.store.hit_counts["victims"] == 1
        assert set(second.store.hit_counts) == {"victims"}


class TestWarmEqualsColdForBeaconSweep:
    @pytest.mark.parametrize("localizer", ["centroid", "dvhop"])
    def test_warm_sweep_fully_hits_and_matches_cold(
        self, tiny_config, tmp_path, localizer
    ):
        spec = ScenarioSpec(
            name="beacon_warm",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
            localizer=localizer,
            config=tiny_config,
        )
        cold_session = spec.session(store=ArtifactStore(tmp_path))
        cold = dict(
            cold_session.sweep().iter_attacked_scores(spec.points())
        )
        cold_rates = cold_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )

        warm_session = spec.session(store=ArtifactStore(tmp_path))
        warm = dict(
            warm_session.sweep().iter_attacked_scores(spec.points())
        )
        warm_rates = warm_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert warm_session.store.misses == 0
        assert warm_session.store.hit_counts["attacked_scores"] >= len(
            spec.points()
        )
        assert warm_rates == cold_rates
        for point, scores in cold.items():
            np.testing.assert_array_equal(scores, warm[point])


class TestModalityMatrixScenario:
    """Acceptance: the shipped `modality_matrix.toml` sweeps all seven
    schemes with zero cross-scheme score aliasing, and a warm re-run is
    served entirely from cache with identical rates."""

    def test_all_seven_schemes_cold_then_warm(self, tmp_path):
        spec = ScenarioSpec.from_file(
            Path(__file__).resolve().parents[2]
            / "examples"
            / "specs"
            / "modality_matrix.toml"
        )
        localizers = spec.localizer_values()
        assert len(localizers) == 7

        def run_all(store):
            rates = {}
            for localizer in localizers:
                session = spec.session(localizer=localizer, store=store)
                rates[localizer] = session.sweep().detection_rates(
                    spec.points(),
                    false_positive_rate=spec.false_positive_rate,
                )
            return rates

        cold_store = ArtifactStore(tmp_path)
        cold = run_all(cold_store)
        # Scored artifacts are never shared between schemes...
        assert cold_store.hit_counts["benign_scores"] == 0
        assert cold_store.hit_counts["attacked_scores"] == 0

        warm_store = ArtifactStore(tmp_path)
        warm = run_all(warm_store)
        # ...while the same scheme re-run is a pure cache read.
        assert warm_store.misses == 0
        assert warm == cold
