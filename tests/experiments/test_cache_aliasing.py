"""Cache-aliasing regression tests.

The artifact store is content-addressed, so the only way a warm cache can
lie is a fingerprint that under-describes what produced an artifact.  These
tests pin the guarantee the beacon work introduced: two sessions differing
only in their localizer (or beacon layout) produce disjoint artifact keys
and a sweep under one scheme never consumes another scheme's cached scores
— while a repeated sweep of the *same* beacon scheme is served entirely
from cache, bit-identical to the cold run.
"""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore, fingerprint_key
from repro.localization.beacons import BeaconSpec


@pytest.fixture()
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=20,
        training_samples_per_network=10,
        num_victims=20,
        victims_per_network=10,
        gz_omega=300,
        seed=90210,
        beacons=BeaconSpec(count=9, transmit_range=450.0),
    )


def _attacked_key(session):
    return session.attacked_scores_key(
        "diff", "dec_bounded", degree_of_damage=120.0, compromised_fraction=0.1
    )


def _benign_key(session, metric="diff"):
    fingerprint = session.training_fingerprint()
    fingerprint["metric"] = metric
    return fingerprint_key(fingerprint)


class TestDisjointKeys:
    def test_sessions_differing_only_in_localizer(self, tiny_config):
        sessions = {
            name: LadSession(tiny_config, localizer=name)
            for name in ("beaconless", "centroid", "mmse", "dvhop", "apit")
        }
        benign_keys = [_benign_key(s) for s in sessions.values()]
        attacked_keys = [_attacked_key(s) for s in sessions.values()]
        assert len(set(benign_keys)) == len(sessions)
        assert len(set(attacked_keys)) == len(sessions)

    def test_sessions_differing_only_in_beacon_layout(self, tiny_config):
        variants = [
            BeaconSpec(count=9, transmit_range=450.0),
            BeaconSpec(count=16, transmit_range=450.0),
            BeaconSpec(count=9, layout="perimeter", transmit_range=450.0),
            BeaconSpec(count=9, transmit_range=450.0, noise_std=2.0),
            BeaconSpec(count=9, transmit_range=450.0, seed=1),
        ]
        sessions = [
            LadSession(tiny_config.with_beacons(spec), localizer="centroid")
            for spec in variants
        ]
        assert len({_benign_key(s) for s in sessions}) == len(variants)
        assert len({_attacked_key(s) for s in sessions}) == len(variants)

    def test_beaconless_ignores_beacon_spec(self, tiny_config):
        """A beaconless session never reads the beacons, so two configs
        differing only there legitimately share trained artifacts."""
        with_beacons = LadSession(tiny_config, localizer="beaconless")
        without = LadSession(
            tiny_config.with_beacons(None), localizer="beaconless"
        )
        assert _benign_key(with_beacons) == _benign_key(without)
        assert _attacked_key(with_beacons) == _attacked_key(without)


class TestZeroCrossHits:
    def test_second_localizer_recomputes_everything_scored(
        self, tiny_config, tmp_path
    ):
        spec = ScenarioSpec(
            name="alias",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
            config=tiny_config,
        )
        first = spec.session(localizer="centroid", store=ArtifactStore(tmp_path))
        first.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert first.store.hits == 0

        second = spec.session(localizer="mmse", store=ArtifactStore(tmp_path))
        second.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        # Nothing scored under one scheme is served to the other.
        assert second.store.hit_counts["benign_scores"] == 0
        assert second.store.hit_counts["attacked_scores"] == 0
        # The victims' honest observations are localizer-independent by
        # construction, so sharing them across schemes is correct (and
        # documented) — pin that this is the *only* shared artifact.
        assert second.store.hit_counts["victims"] == 1
        assert set(second.store.hit_counts) == {"victims"}


class TestWarmEqualsColdForBeaconSweep:
    @pytest.mark.parametrize("localizer", ["centroid", "dvhop"])
    def test_warm_sweep_fully_hits_and_matches_cold(
        self, tiny_config, tmp_path, localizer
    ):
        spec = ScenarioSpec(
            name="beacon_warm",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
            localizer=localizer,
            config=tiny_config,
        )
        cold_session = spec.session(store=ArtifactStore(tmp_path))
        cold = dict(
            cold_session.sweep().iter_attacked_scores(spec.points())
        )
        cold_rates = cold_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )

        warm_session = spec.session(store=ArtifactStore(tmp_path))
        warm = dict(
            warm_session.sweep().iter_attacked_scores(spec.points())
        )
        warm_rates = warm_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert warm_session.store.misses == 0
        assert warm_session.store.hit_counts["attacked_scores"] >= len(
            spec.points()
        )
        assert warm_rates == cold_rates
        for point, scores in cold.items():
            np.testing.assert_array_equal(scores, warm[point])
