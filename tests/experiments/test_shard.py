"""Cross-topology tests for the deterministic sweep shard partitioner.

The fleet dispatch mode only works if (a) the partition itself is a real
partition — disjoint slices whose union is the full grid, stable across
hosts, re-runs and grid orderings — and (b) every execution topology
(serial, shm pool, N shards merged through a shared store, interrupted and
resumed shards) publishes bit-identical attacked scores.  Both halves are
pinned here: the partition properties with hypothesis over random grids,
the topology invariance end to end on a small spec.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import session as session_module
from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.store import ArtifactStore
from repro.experiments.sweep import (
    SweepRunner,
    shard_of_point,
    shard_points,
)

_SETTINGS = settings(max_examples=60, deadline=None)

# Random grids: small axes of distinct values so the cartesian product
# stays manageable while exercising float formatting in stream names.
_metric_names = st.lists(
    st.sampled_from(["diff", "add_all", "probability"]),
    min_size=1,
    max_size=3,
    unique=True,
)
_attack_names = st.lists(
    st.sampled_from(["dec_bounded", "dec_only", "random_bounded"]),
    min_size=1,
    max_size=2,
    unique=True,
)
_degrees = st.lists(
    st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=4,
    unique=True,
)
_fractions = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=3,
    unique=True,
)
_grids = st.builds(SweepRunner.grid, _metric_names, _attack_names, _degrees, _fractions)
_counts = st.integers(min_value=1, max_value=7)


class TestPartitionProperties:
    @_SETTINGS
    @given(grid=_grids, count=_counts)
    def test_disjoint_and_union_is_full_grid(self, grid, count):
        slices = [shard_points(grid, i, count) for i in range(count)]
        combined = [point for piece in slices for point in piece]
        # Pairwise disjoint and the union is exactly the grid: the
        # concatenation has no duplicates and equals the grid as a set.
        assert len(combined) == len(set(combined)) == len(set(grid))
        assert set(combined) == set(grid)

    @_SETTINGS
    @given(grid=_grids, count=_counts, seed=st.integers(0, 2**32 - 1))
    def test_assignment_is_stable_under_reordering(self, grid, count, seed):
        shuffled = list(grid)
        np.random.default_rng(seed).shuffle(shuffled)
        for i in range(count):
            # Same members regardless of grid order; within one ordering
            # the slice preserves that ordering.
            assert set(shard_points(grid, i, count)) == set(
                shard_points(shuffled, i, count)
            )

    @_SETTINGS
    @given(grid=_grids, count=_counts)
    def test_assignment_depends_only_on_the_point(self, grid, count):
        # Re-runs and sub-grids agree: a point's shard never changes when
        # other points appear or disappear around it.
        full = {p: shard_of_point(p, count) for p in grid}
        subset = grid[:: max(1, len(grid) // 2)]
        for point in subset:
            assert shard_of_point(point, count) == full[point]
        assert {p: shard_of_point(p, count) for p in grid} == full

    def test_single_shard_is_identity(self):
        grid = SweepRunner.grid(
            ["diff", "probability"], ["dec_bounded"], [80.0, 160.0], [0.1]
        )
        assert shard_points(grid, 0, 1) == grid

    def test_invalid_selectors_are_rejected(self):
        grid = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0], [0.1])
        with pytest.raises(ValueError, match="shard count"):
            shard_points(grid, 0, 0)
        with pytest.raises(ValueError, match="shard index"):
            shard_points(grid, 2, 2)
        with pytest.raises(ValueError, match="shard index"):
            shard_points(grid, -1, 2)


@pytest.fixture()
def tiny_spec():
    return ScenarioSpec(
        name="shard",
        metrics=("diff", "add_all"),
        attacks=("dec_bounded",),
        degrees=(80.0, 160.0),
        fractions=(0.1,),
        false_positive_rate=0.05,
        config=SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=2424,
        ),
    )


class TestTopologyInvariance:
    """serial == shm pool == N-shard merge, bit for bit."""

    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_shard_union_equals_serial_run(self, tiny_spec, tmp_path, count):
        points = tiny_spec.points()
        serial = dict(tiny_spec.session().sweep().iter_attacked_scores(points))

        cache = tmp_path / f"shards-{count}"
        for index in range(count):
            shard_session = tiny_spec.session(store=ArtifactStore(cache))
            produced = dict(
                shard_session.sweep().iter_attacked_scores(
                    points, shard=(index, count)
                )
            )
            assert list(produced) == shard_points(points, index, count)

        # A follow-up full run over the shared cache must be fully warm and
        # bit-identical to the serial reference.
        warm = tiny_spec.session(store=ArtifactStore(cache))
        merged = dict(warm.sweep().iter_attacked_scores(points))
        assert warm.store.miss_counts["attacked_scores"] == 0
        assert warm.store.hit_counts["attacked_scores"] == len(points)
        assert list(merged) == points
        for point in points:
            np.testing.assert_array_equal(merged[point], serial[point])

    def test_pool_matches_serial_and_sharded(self, tiny_spec, tmp_path):
        points = tiny_spec.points()
        serial = dict(tiny_spec.session().sweep().iter_attacked_scores(points))
        pooled = tiny_spec.session().sweep(workers=2).attacked_scores(points)

        cache = tmp_path / "cache"
        for index in range(2):
            session = tiny_spec.session(store=ArtifactStore(cache))
            dict(
                session.sweep(workers=2).iter_attacked_scores(
                    points, shard=(index, 2)
                )
            )
        merged = dict(
            tiny_spec.session(store=ArtifactStore(cache))
            .sweep()
            .iter_attacked_scores(points)
        )
        for point in points:
            np.testing.assert_array_equal(pooled[point], serial[point])
            np.testing.assert_array_equal(merged[point], serial[point])

    def test_interrupted_shard_resumes_without_recomputing(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        """A shard that crashes mid-slice resumes recomputing only its
        missing points; the merged grid still equals the serial run."""
        points = tiny_spec.points()
        serial = dict(tiny_spec.session().sweep().iter_attacked_scores(points))

        # Pick the shard with the bigger slice so the crash interrupts it.
        sizes = [len(shard_points(points, i, 2)) for i in range(2)]
        index = int(np.argmax(sizes))
        slice_size = sizes[index]
        assert slice_size >= 2, "seed must give the crashing shard >= 2 points"

        cache = tmp_path / "cache"
        completed = 1
        calls = {"n": 0}
        real = session_module.attacked_scores_from_observations

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > completed:
                raise RuntimeError("simulated mid-shard crash")
            return real(*args, **kwargs)

        with monkeypatch.context() as patch:
            patch.setattr(
                session_module, "attacked_scores_from_observations", flaky
            )
            crashing = tiny_spec.session(store=ArtifactStore(cache))
            with pytest.raises(RuntimeError, match="simulated mid-shard crash"):
                list(
                    crashing.sweep().iter_attacked_scores(
                        points, shard=(index, 2)
                    )
                )

        # Resume the same shard: the completed point is served from disk.
        resumed = tiny_spec.session(store=ArtifactStore(cache))
        dict(resumed.sweep().iter_attacked_scores(points, shard=(index, 2)))
        assert resumed.store.hit_counts["attacked_scores"] == completed
        assert (
            resumed.store.miss_counts["attacked_scores"]
            == slice_size - completed
        )

        # Run the other shard, then merge: fully warm, bit-identical.
        other = tiny_spec.session(store=ArtifactStore(cache))
        dict(other.sweep().iter_attacked_scores(points, shard=(1 - index, 2)))
        warm = tiny_spec.session(store=ArtifactStore(cache))
        merged = dict(warm.sweep().iter_attacked_scores(points))
        assert warm.store.miss_counts["attacked_scores"] == 0
        for point in points:
            np.testing.assert_array_equal(merged[point], serial[point])
