"""Resumable-sweep integration tests (the per-point attacked-score cache).

An interrupted ``lad-repro sweep`` re-run with the same ``--cache-dir``
must recompute exactly the points that never finished and still reproduce
an uninterrupted cold run bit for bit.  The tests simulate the crash by
making the scorer raise after N points, then assert the resume behaviour
through the store's per-category hit/miss counters.
"""

import numpy as np
import pytest

from repro.experiments import session as session_module
from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore


@pytest.fixture()
def tiny_spec():
    return ScenarioSpec(
        name="resume",
        metrics=("diff", "add_all"),
        attacks=("dec_bounded",),
        degrees=(80.0, 160.0),
        fractions=(0.1,),
        false_positive_rate=0.05,
        config=SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=4711,
        ),
    )


class TestCrashResume:
    COMPLETED = 2  # points that finish before the simulated crash

    def _run_interrupted(self, spec, store_root, monkeypatch):
        """Run the sweep until the scorer dies after ``COMPLETED`` points."""
        calls = {"n": 0}
        real = session_module.attacked_scores_from_observations

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > self.COMPLETED:
                raise RuntimeError("simulated mid-sweep crash")
            return real(*args, **kwargs)

        partial = []
        with monkeypatch.context() as patch:
            patch.setattr(
                session_module, "attacked_scores_from_observations", flaky
            )
            crashing = spec.session(store=ArtifactStore(store_root))
            with pytest.raises(RuntimeError, match="simulated mid-sweep crash"):
                for pair in crashing.sweep().iter_attacked_scores(spec.points()):
                    partial.append(pair)
        assert len(partial) == self.COMPLETED
        return partial

    def test_resume_recomputes_only_missing_points(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        points = tiny_spec.points()
        assert len(points) == 4

        # Reference: one uninterrupted cold run without any store.
        cold = dict(
            tiny_spec.session().sweep().iter_attacked_scores(points)
        )

        partial = self._run_interrupted(tiny_spec, tmp_path / "cache", monkeypatch)

        # Resume with the same cache directory: exactly the completed
        # points are served from disk, the rest are recomputed.
        warm = tiny_spec.session(store=ArtifactStore(tmp_path / "cache"))
        resumed = dict(warm.sweep().iter_attacked_scores(points))
        assert warm.store.hit_counts["attacked_scores"] == self.COMPLETED
        assert (
            warm.store.miss_counts["attacked_scores"]
            == len(points) - self.COMPLETED
        )
        # The victims' honest observations also came from the store.
        assert warm.store.hit_counts["victims"] == 1

        # Bit-identical to the uninterrupted cold run, in grid order.
        assert list(resumed) == points
        for point in points:
            np.testing.assert_array_equal(resumed[point], cold[point])
        for point, scores in partial:
            np.testing.assert_array_equal(resumed[point], scores)

    def test_third_run_is_fully_warm(self, tiny_spec, tmp_path, monkeypatch):
        self._run_interrupted(tiny_spec, tmp_path / "cache", monkeypatch)
        resumed = tiny_spec.session(store=ArtifactStore(tmp_path / "cache"))
        dict(resumed.sweep().iter_attacked_scores(tiny_spec.points()))

        warm = tiny_spec.session(store=ArtifactStore(tmp_path / "cache"))
        rates = warm.sweep().detection_rates(
            tiny_spec.points(), false_positive_rate=0.05
        )
        assert len(rates) == len(tiny_spec.points())
        assert warm.store.miss_counts["attacked_scores"] == 0
        assert warm.store.hit_counts["attacked_scores"] == len(
            tiny_spec.points()
        )


class TestPerPointCache:
    def test_single_point_entry_shares_the_sweep_cache(
        self, tiny_spec, tmp_path
    ):
        """``LadSession.attacked_scores`` publishes under the same key the
        sweep path reads, so the two entry points warm each other."""
        cold = tiny_spec.session(store=ArtifactStore(tmp_path))
        direct = cold.attacked_scores(
            "diff", "dec_bounded", degree_of_damage=80.0,
            compromised_fraction=0.1,
        )
        assert cold.store.miss_counts["attacked_scores"] == 1

        warm = tiny_spec.session(store=ArtifactStore(tmp_path))
        swept = dict(warm.sweep().iter_attacked_scores(tiny_spec.points()))
        assert warm.store.hit_counts["attacked_scores"] == 1
        point = tiny_spec.points()[0]
        assert (point.metric, point.attack) == ("diff", "dec_bounded")
        np.testing.assert_array_equal(swept[point], direct)

    def test_parallel_sweep_publishes_points(self, tiny_spec, tmp_path):
        """Cold points scored via the worker pool are persisted by the
        parent exactly like serial ones."""
        cold = tiny_spec.session(store=ArtifactStore(tmp_path))
        parallel = cold.sweep(workers=2).attacked_scores(tiny_spec.points())
        assert cold.store.miss_counts["attacked_scores"] == len(
            tiny_spec.points()
        )

        warm = tiny_spec.session(store=ArtifactStore(tmp_path))
        serial = warm.sweep().attacked_scores(tiny_spec.points())
        assert warm.store.miss_counts["attacked_scores"] == 0
        for point in tiny_spec.points():
            np.testing.assert_array_equal(serial[point], parallel[point])

    def test_cache_key_insensitive_to_other_grid_points(
        self, tiny_spec, tmp_path
    ):
        """A point's artifact is keyed by the point alone: sweeping a
        different grid that shares the point still hits."""
        first = tiny_spec.session(store=ArtifactStore(tmp_path))
        dict(first.sweep().iter_attacked_scores(tiny_spec.points()))

        import dataclasses

        narrowed = dataclasses.replace(
            tiny_spec, metrics=("diff",), degrees=(160.0,)
        )
        second = narrowed.session(store=ArtifactStore(tmp_path))
        dict(second.sweep().iter_attacked_scores(narrowed.points()))
        assert second.store.miss_counts["attacked_scores"] == 0
        assert second.store.hit_counts["attacked_scores"] == 1
