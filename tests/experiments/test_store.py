"""Tests for :mod:`repro.experiments.store` (the trained-state cache)."""

import multiprocessing

import numpy as np
import pytest

from repro.core import training as training_module
from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore, fingerprint_key


@pytest.fixture()
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=30,
        training_samples_per_network=15,
        num_victims=30,
        victims_per_network=15,
        gz_omega=300,
        seed=4242,
    )


class TestArtifactStore:
    def test_miss_then_hit_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"seed": 7})
        assert store.load("benign_scores", key) is None
        store.save("benign_scores", key, scores=np.arange(5.0))
        loaded = store.load("benign_scores", key)
        np.testing.assert_array_equal(loaded["scores"], np.arange(5.0))
        assert store.stats() == {"hits": 1, "misses": 1}
        assert store.hit_counts["benign_scores"] == 1

    def test_fingerprint_key_is_order_insensitive_and_value_sensitive(self):
        a = fingerprint_key({"x": 1, "y": 2.5})
        b = fingerprint_key({"y": 2.5, "x": 1})
        c = fingerprint_key({"x": 1, "y": 2.5000001})
        assert a == b
        assert a != c

    @pytest.mark.parametrize(
        "payload",
        [
            b"not an npz",
            b"PK\x03\x04 truncated zip garbage",  # raises zipfile.BadZipFile
        ],
    )
    def test_corrupt_artifact_counts_as_miss(self, tmp_path, payload):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"seed": 1})
        path = store.path_for("victims", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        assert store.load("victims", key) is None
        assert store.misses == 1

    def test_truncated_archive_is_quarantined_and_recoverable(self, tmp_path):
        """A corrupt artifact is moved aside on the failed load, so the
        subsequent ``save`` of the same key publishes onto a free path
        instead of racing the half-read file; the re-saved artifact then
        loads as a normal hit."""
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"seed": 13})
        path = store.save("attacked_scores", key, scores=np.arange(16.0))
        # Truncate the real npz mid-archive (a crashed non-atomic writer).
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])

        assert store.load("attacked_scores", key) is None
        assert store.misses == 1 and store.hits == 0
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        assert quarantined.read_bytes() == payload[: len(payload) // 2]

        # The key is writable and readable again.
        store.save("attacked_scores", key, scores=np.arange(16.0))
        reloaded = store.load("attacked_scores", key)
        np.testing.assert_array_equal(reloaded["scores"], np.arange(16.0))
        assert store.hit_counts["attacked_scores"] == 1

    def test_missing_artifact_is_not_quarantined(self, tmp_path):
        """A plain miss (no file at all) must not leave quarantine debris."""
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"seed": 14})
        assert store.load("victims", key) is None
        assert list(tmp_path.rglob("*.corrupt")) == []

    def test_empty_artifact_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="empty artifact"):
            store.save("victims", "deadbeef")

    def test_multiple_arrays_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"k": 1})
        store.save(
            "victims", key, observations=np.ones((2, 3)), locations=np.zeros((2, 2))
        )
        loaded = store.load("victims", key)
        assert set(loaded) == {"observations", "locations"}


def _spam_npz(root, category, key, value, rounds):
    """Child-process body: hammer one key with whole-document publishes."""
    store = ArtifactStore(root)
    payload = np.full(64, float(value))
    for _ in range(rounds):
        store.save(category, key, scores=payload)


def _spam_json(root, category, key, value, rounds):
    store = ArtifactStore(root)
    payload = {"writer": value, "blob": [value] * 128}
    for _ in range(rounds):
        store.save_json(category, key, payload)


class TestJsonSidecars:
    def test_round_trip_and_missing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"m": 1})
        assert store.load_json("manifest", key) is None
        payload = {"version": 1, "points": [{"key": "a", "status": "done"}]}
        path = store.save_json("manifest", key, payload)
        assert path == store.json_path_for("manifest", key)
        assert store.load_json("manifest", key) == payload
        # Sidecar I/O is advisory: the cache counters never move.
        assert store.stats() == {"hits": 0, "misses": 0}

    def test_corrupt_sidecar_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"m": 2})
        path = store.json_path_for("manifest", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ this is not json")
        assert store.load_json("manifest", key) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.stats() == {"hits": 0, "misses": 0}

    def test_non_mapping_document_reads_as_absent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint_key({"m": 3})
        path = store.json_path_for("manifest", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert store.load_json("manifest", key) is None


class TestCrossProcessPublish:
    """Two processes racing to publish the same key: readers must never
    see a torn document, and the race must leave no filesystem debris."""

    @pytest.fixture()
    def fork(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        return multiprocessing.get_context("fork")

    def test_racing_npz_writers_never_expose_a_torn_artifact(
        self, tmp_path, fork
    ):
        key = fingerprint_key({"race": "npz"})
        writers = [
            fork.Process(
                target=_spam_npz,
                args=(tmp_path, "attacked_scores", key, value, 150),
            )
            for value in (1.0, 2.0)
        ]
        for writer in writers:
            writer.start()
        reader = ArtifactStore(tmp_path)
        observed = set()
        try:
            while any(writer.is_alive() for writer in writers):
                loaded = reader.load("attacked_scores", key)
                if loaded is None:
                    continue
                scores = loaded["scores"]
                # Whole-document atomicity: every successful read is one
                # writer's complete payload, never a mixture or truncation.
                assert scores.shape == (64,)
                np.testing.assert_array_equal(scores, np.full(64, scores[0]))
                observed.add(float(scores[0]))
        finally:
            for writer in writers:
                writer.join()
        assert all(writer.exitcode == 0 for writer in writers)
        assert observed <= {1.0, 2.0}
        # Last rename wins: exactly one artifact, no temp or quarantine
        # debris anywhere in the store.
        final = ArtifactStore(tmp_path).load("attacked_scores", key)
        assert float(final["scores"][0]) in (1.0, 2.0)
        category_dir = reader.path_for("attacked_scores", key).parent
        assert [p.name for p in category_dir.iterdir()] == [f"{key}.npz"]
        assert list(tmp_path.rglob("*.corrupt")) == []
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_racing_json_writers_never_expose_a_torn_sidecar(
        self, tmp_path, fork
    ):
        key = fingerprint_key({"race": "json"})
        writers = [
            fork.Process(
                target=_spam_json,
                args=(tmp_path, "manifest", key, value, 200),
            )
            for value in ("a", "b")
        ]
        for writer in writers:
            writer.start()
        reader = ArtifactStore(tmp_path)
        complete = {
            value: {"writer": value, "blob": [value] * 128}
            for value in ("a", "b")
        }
        try:
            while any(writer.is_alive() for writer in writers):
                payload = reader.load_json("manifest", key)
                if payload is not None:
                    assert payload in complete.values()
        finally:
            for writer in writers:
                writer.join()
        assert all(writer.exitcode == 0 for writer in writers)
        assert reader.load_json("manifest", key) in complete.values()
        category_dir = reader.json_path_for("manifest", key).parent
        assert [p.name for p in category_dir.iterdir()] == [f"{key}.json"]
        assert list(tmp_path.rglob("*.corrupt")) == []


class TestSessionCaching:
    def test_warm_cache_skips_training_with_identical_results(
        self, tiny_config, tmp_path, monkeypatch
    ):
        cold = LadSession(tiny_config, store=ArtifactStore(tmp_path))
        benign_cold = cold.benign_scores("diff")
        victims_cold = cold.victims()
        assert cold.store.hits == 0 and cold.store.misses == 2

        # The warm session must never collect training data: make the
        # collection explode if it is reached.
        def boom(*args, **kwargs):
            raise AssertionError("training pass was not skipped")

        monkeypatch.setattr(training_module, "collect_training_data", boom)
        monkeypatch.setattr(
            "repro.experiments.session.collect_training_data", boom
        )

        warm = LadSession(tiny_config, store=ArtifactStore(tmp_path))
        benign_warm = warm.benign_scores("diff")
        victims_warm = warm.victims()
        assert warm.store.hits == 2 and warm.store.misses == 0
        assert warm._training is None  # training never materialised
        np.testing.assert_array_equal(benign_cold, benign_warm)
        np.testing.assert_array_equal(
            victims_cold.observations, victims_warm.observations
        )
        np.testing.assert_array_equal(
            victims_cold.actual_locations, victims_warm.actual_locations
        )

    def test_cached_results_match_storeless_session(self, tiny_config, tmp_path):
        LadSession(tiny_config, store=tmp_path).benign_scores("diff")
        warm = LadSession(tiny_config, store=tmp_path)
        plain = LadSession(tiny_config)
        np.testing.assert_array_equal(
            warm.benign_scores("diff"), plain.benign_scores("diff")
        )

    def test_warm_sweep_reproduces_cold_sweep(self, tiny_config, tmp_path):
        spec = ScenarioSpec(
            name="cache",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
            config=tiny_config,
        )
        cold_session = spec.session(store=tmp_path)
        cold = cold_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert cold_session.store.misses > 0

        warm_session = spec.session(store=tmp_path)
        warm = warm_session.sweep().detection_rates(
            spec.points(), false_positive_rate=spec.false_positive_rate
        )
        assert warm_session.store.hits >= 2  # benign scores + victims
        assert warm_session.store.misses == 0
        assert warm == cold

    def test_training_fingerprint_ignores_victim_fields(self, tiny_config):
        a = LadSession(tiny_config)
        b = LadSession(
            SimulationConfig(
                **{
                    **{
                        f: getattr(tiny_config, f)
                        for f in (
                            "group_size",
                            "radio_range",
                            "sigma",
                            "grid_rows",
                            "grid_cols",
                            "region_size",
                            "num_training_samples",
                            "training_samples_per_network",
                            "localization_resolution",
                            "gz_omega",
                            "seed",
                        )
                    },
                    "num_victims": 10,
                    "victims_per_network": 5,
                }
            )
        )
        assert a.training_fingerprint() == b.training_fingerprint()
        assert a.victims_fingerprint() != b.victims_fingerprint()

    def test_fingerprint_sensitive_to_seed_and_density(self, tiny_config):
        a = LadSession(tiny_config)
        b = LadSession(tiny_config.with_seed(1))
        c = LadSession(tiny_config.with_group_size(80))
        assert a.training_fingerprint() != b.training_fingerprint()
        assert a.training_fingerprint() != c.training_fingerprint()

    def test_store_accepts_path_like(self, tiny_config, tmp_path):
        session = LadSession(tiny_config, store=str(tmp_path / "cache"))
        assert isinstance(session.store, ArtifactStore)

    def test_overridden_metric_does_not_hit_stock_cache(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """The benign-score key includes the metric implementation: a
        re-registered 'diff' must not be served the stock DiffMetric's
        cached scores."""
        from repro.core.metrics import METRICS, DiffMetric

        stock = LadSession(tiny_config, store=tmp_path).benign_scores("diff")

        class ScaledDiffMetric(DiffMetric):
            def compute(self, observations, expected, group_size=None):
                return 2.0 * super().compute(observations, expected, group_size)

        monkeypatch.setitem(METRICS._classes, "diff", ScaledDiffMetric)
        warm = LadSession(tiny_config, store=tmp_path)
        scores = warm.benign_scores("diff")
        assert warm.store.miss_counts["benign_scores"] == 1
        np.testing.assert_array_equal(scores, 2.0 * stock)
