"""Tests for :mod:`repro.experiments.scenario` (declarative scenario specs)."""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.sweep import SweepPoint
from repro.localization.beacons import BeaconSpec


@pytest.fixture()
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=30,
        training_samples_per_network=15,
        num_victims=30,
        victims_per_network=15,
        gz_omega=300,
        seed=777,
    )


@pytest.fixture()
def spec(tiny_config):
    return ScenarioSpec(
        name="roundtrip",
        description="spec round-trip fixture",
        metrics=("diff", "add_all"),
        attacks=("dec_bounded", "dec_only"),
        degrees=(80.0, 160.0),
        fractions=(0.1, 0.3),
        false_positive_rate=0.05,
        config=tiny_config,
    )


class TestConstruction:
    def test_names_canonicalised(self):
        spec = ScenarioSpec(
            metrics=("DM", "Add-All"), attacks=("Dec-Bounded",), localizer="MLE"
        )
        assert spec.metrics == ("diff", "add_all")
        assert spec.attacks == ("dec_bounded",)
        assert spec.localizer == "beaconless"

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            ScenarioSpec(metrics=("entropy",))
        with pytest.raises(ValueError, match="unknown attack class"):
            ScenarioSpec(attacks=("mitm",))
        with pytest.raises(ValueError, match="unknown localizer"):
            ScenarioSpec(localizer="gps")

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            ScenarioSpec(degrees=())

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(fractions=(1.5,))
        with pytest.raises(ValueError):
            ScenarioSpec(degrees=(-10.0,))

    def test_grid_compiles_to_sweep_points(self, spec):
        points = spec.points()
        assert len(points) == spec.grid_size == 2 * 2 * 2 * 2
        assert points[0] == SweepPoint("diff", "dec_bounded", 80.0, 0.1)
        assert points[-1] == SweepPoint("add_all", "dec_only", 160.0, 0.3)

    def test_density_values_default_to_config(self, spec):
        assert spec.density_values() == (40,)
        dense = ScenarioSpec(group_sizes=(100, 300))
        assert dense.density_values() == (100, 300)

    def test_localizer_values_default_to_single_localizer(self, spec):
        assert spec.localizer_values() == ("beaconless",)
        multi = ScenarioSpec(localizers=("Centroid", "dv-hop"))
        assert multi.localizers == ("centroid", "dvhop")
        assert multi.localizer_values() == ("centroid", "dvhop")
        with pytest.raises(ValueError, match="unknown localizer"):
            ScenarioSpec(localizers=("gps",))


class TestRoundTrip:
    def test_toml_round_trip_is_lossless(self, spec):
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip_is_lossless(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_round_trip_preserves_grid(self, spec, tmp_path, suffix):
        path = tmp_path / f"spec{suffix}"
        spec.to_file(path)
        loaded = ScenarioSpec.from_file(path)
        assert loaded == spec
        assert loaded.points() == spec.points()

    def test_partial_config_keeps_defaults(self):
        spec = ScenarioSpec.from_toml(
            'name = "partial"\n[config]\ngroup_size = 50\n'
        )
        assert spec.config.group_size == 50
        assert spec.config.radio_range == 100.0
        assert spec.config.seed == SimulationConfig().seed

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec.from_toml('name = "x"\ntypo_field = 1\n')
        with pytest.raises(ValueError, match="unknown config field"):
            ScenarioSpec.from_toml('[config]\ntypo_field = 1\n')

    def test_beacon_table_round_trips(self, tiny_config):
        spec = ScenarioSpec(
            name="beacons",
            localizer="centroid",
            localizers=("centroid", "mmse"),
            config=tiny_config.with_beacons(
                BeaconSpec(count=9, layout="perimeter", noise_std=2.0, seed=5)
            ),
        )
        text = spec.to_toml()
        assert "[beacons]" in text
        loaded = ScenarioSpec.from_toml(text)
        assert loaded == spec
        assert loaded.beacons == spec.config.beacons
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_beacons_omitted_when_not_configured(self, spec):
        assert "beacons" not in spec.as_dict()
        assert "[beacons]" not in spec.to_toml()

    def test_timeline_table_round_trips(self, tiny_config):
        from repro.events import EventSpec, TimelineSpec

        spec = ScenarioSpec(
            name="temporal",
            config=tiny_config,
            timeline=TimelineSpec(
                epochs=8,
                epoch_duration=0.5,
                events=(
                    EventSpec(kind="attack", action="on", at=(2.0,)),
                    EventSpec(
                        kind="mobility",
                        action="jitter",
                        period=1.0,
                        start=1.0,
                        fraction=0.25,
                        amplitude=5.0,
                    ),
                ),
            ),
        )
        text = spec.to_toml()
        assert "[timeline]" in text
        assert text.count("[[timeline.events]]") == 2
        loaded = ScenarioSpec.from_toml(text)
        assert loaded == spec
        assert loaded.timeline == spec.timeline
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_timeline_coerced_from_plain_dict(self, tiny_config):
        from repro.events import TimelineSpec

        spec = ScenarioSpec(
            name="temporal",
            config=tiny_config,
            timeline={
                "epochs": 4,
                "events": [{"kind": "attack", "action": "on", "at": [1.0]}],
            },
        )
        assert isinstance(spec.timeline, TimelineSpec)
        assert spec.timeline.epochs == 4
        assert spec.timeline.events[0].kind == "attack"

    def test_timeline_survives_scaling(self, tiny_config):
        from repro.events import TimelineSpec

        spec = ScenarioSpec(
            name="temporal",
            config=tiny_config,
            timeline=TimelineSpec(epochs=3),
        )
        assert spec.scaled(0.5).timeline == spec.timeline

    def test_timeline_omitted_when_not_configured(self, spec):
        assert "timeline" not in spec.as_dict()
        assert "[timeline]" not in spec.to_toml()

    def test_unknown_timeline_field_rejected(self):
        with pytest.raises(ValueError, match="unknown timeline field"):
            ScenarioSpec.from_toml('name = "x"\n[timeline]\ntypo = 1\n')

    def test_unknown_beacon_field_rejected(self):
        with pytest.raises(ValueError, match="unknown beacon field"):
            ScenarioSpec.from_toml('name = "x"\n[beacons]\ntypo = 1\n')

    def test_conflicting_beacon_tables_rejected(self):
        with pytest.raises(ValueError, match="single \\[beacons\\] table"):
            ScenarioSpec.from_dict(
                {
                    "beacons": {"count": 4},
                    "config": {"beacons": {"count": 99}},
                }
            )
        # A config-level table alone still parses (legacy placement).
        spec = ScenarioSpec.from_dict({"config": {"beacons": {"count": 4}}})
        assert spec.beacons == BeaconSpec(count=4)

    def test_unsupported_suffix_rejected(self, spec, tmp_path):
        with pytest.raises(ValueError, match="unsupported spec format"):
            spec.to_file(tmp_path / "spec.yaml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("name: x\n")
        with pytest.raises(ValueError, match="unsupported spec format"):
            ScenarioSpec.from_file(bad)


class TestEngineEquivalence:
    def test_spec_sweep_matches_direct_session_sweep(self, spec):
        """The spec-driven path reproduces a hand-built ``LadSession``
        sweep bit for bit: same grid, same scores, same rates."""
        session = spec.session()
        direct = LadSession(spec.config)

        points = spec.points()
        direct_points = type(session.sweep()).grid(
            spec.metrics, spec.attacks, spec.degrees, spec.fractions
        )
        assert points == direct_points

        spec_scores = session.sweep().attacked_scores(points)
        direct_scores = direct.sweep().attacked_scores(points)
        for point in points:
            np.testing.assert_array_equal(
                spec_scores[point], direct_scores[point]
            )

        spec_rates = session.sweep().detection_rates(
            points, false_positive_rate=spec.false_positive_rate
        )
        direct_rates = direct.sweep().detection_rates(
            points, false_positive_rate=spec.false_positive_rate
        )
        assert spec_rates == direct_rates

    def test_scaled_spec_scales_config_samples(self, spec):
        scaled = spec.scaled(0.5)
        assert scaled.config.num_training_samples == 20  # floor is 20
        assert scaled.metrics == spec.metrics
        assert spec.scaled(1.0) is spec

    def test_session_uses_spec_localizer_and_density(self, spec):
        session = spec.session(group_size=80)
        assert isinstance(session, LadSession)
        assert session.config.group_size == 80
        assert type(session.localizer).__name__ == "BeaconlessLocalizer"
        assert (
            session.localizer.resolution
            == spec.config.localization_resolution
        )

    def test_sessions_one_per_density(self, tiny_config):
        spec = ScenarioSpec(group_sizes=(20, 40), config=tiny_config)
        sessions = spec.sessions()
        assert [m for m, _ in sessions] == [20, 40]
        assert [s.config.group_size for _, s in sessions] == [20, 40]
