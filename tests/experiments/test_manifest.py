"""Tests for :mod:`repro.experiments.manifest`.

The manifest is advisory — the ``.npz`` artifacts stay the source of
truth — so these tests pin the two directions it can go stale (phantom
"done" after an artifact is deleted behind its back, lagging "pending"
after another shard publishes) and the invariant that manifest I/O never
touches the store's hit/miss counters.
"""

import json

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.manifest import (
    MANIFEST_CATEGORY,
    SweepManifest,
    manifest_key,
)
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.store import ArtifactStore
from repro.experiments.sweep import SweepRunner


@pytest.fixture()
def tiny_spec():
    return ScenarioSpec(
        name="manifest",
        metrics=("diff", "add_all"),
        attacks=("dec_bounded",),
        degrees=(80.0, 160.0),
        fractions=(0.1,),
        false_positive_rate=0.05,
        config=SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=9090,
        ),
    )


class TestManifestDocument:
    def _grid_and_keys(self):
        grid = SweepRunner.grid(
            ["diff", "add_all"], ["dec_bounded"], [80.0, 160.0], [0.1]
        )
        keys = [f"key-{i}" for i in range(len(grid))]
        return grid, keys

    def test_payload_round_trip(self):
        grid, keys = self._grid_and_keys()
        manifest = SweepManifest.for_points(grid, keys, done=[keys[1]])
        rebuilt = SweepManifest.from_payload(manifest.as_payload())
        assert rebuilt is not None
        assert rebuilt.key == manifest.key == manifest_key(keys)
        assert rebuilt.entries == manifest.entries
        assert rebuilt.total == len(grid)
        assert rebuilt.done_count == 1
        assert rebuilt.status(keys[1]) == "done"
        assert rebuilt.status(keys[0]) == "pending"
        assert rebuilt.status("unknown") is None

    def test_key_is_order_sensitive_and_content_addressed(self):
        grid, keys = self._grid_and_keys()
        forward = SweepManifest.for_points(grid, keys)
        backward = SweepManifest.for_points(grid[::-1], keys[::-1])
        assert forward.key != backward.key
        # Status changes must not move the document: progress updates
        # rewrite the same artifact instead of littering new ones.
        done = SweepManifest.for_points(grid, keys, done=keys)
        assert done.key == forward.key

    def test_absorb_done_merges_without_undoing(self):
        grid, keys = self._grid_and_keys()
        ours = SweepManifest.for_points(grid, keys, done=[keys[0]])
        theirs = SweepManifest.for_points(grid, keys, done=[keys[2]])
        ours.absorb_done(theirs)
        assert ours.status(keys[0]) == "done"
        assert ours.status(keys[2]) == "done"
        assert ours.done_count == 2

    def test_unusable_payloads_parse_to_none(self):
        grid, keys = self._grid_and_keys()
        good = SweepManifest.for_points(grid, keys).as_payload()
        assert SweepManifest.from_payload("not a dict") is None
        assert SweepManifest.from_payload({**good, "version": 99}) is None
        assert SweepManifest.from_payload({**good, "points": "nope"}) is None
        duplicated = {**good, "points": good["points"] + good["points"][:1]}
        assert SweepManifest.from_payload(duplicated) is None


class TestSweepIntegration:
    def test_sweep_publishes_manifest(self, tiny_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        session = tiny_spec.session(store=store)
        points = tiny_spec.points()
        dict(session.sweep().iter_attacked_scores(points))

        keys = session.attacked_scores_keys(points)
        key = manifest_key(keys)
        assert store.json_path_for(MANIFEST_CATEGORY, key).exists()
        manifest = SweepManifest.load(store, key)
        assert manifest is not None
        assert [entry["key"] for entry in manifest.entries] == keys
        assert manifest.done_count == manifest.total == len(points)

    def test_progress_without_store_is_rejected(self, tiny_spec):
        runner = tiny_spec.session().sweep()
        with pytest.raises(ValueError, match="artifact store"):
            runner.progress(tiny_spec.points())

    def test_progress_reads_only_the_manifest(self, tiny_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        points = tiny_spec.points()
        dict(tiny_spec.session(store=store).sweep().iter_attacked_scores(points))

        fresh = tiny_spec.session(store=ArtifactStore(tmp_path))
        progress = fresh.sweep().progress(points)
        assert progress.total == len(points)
        assert progress.done == len(points)
        assert progress.remaining == 0
        assert progress.healed == 0
        # Progress accounting is advisory: no hit/miss counter movement.
        assert fresh.store.hit_counts["attacked_scores"] == 0
        assert fresh.store.miss_counts["attacked_scores"] == 0

    def test_stale_manifest_heals_and_resume_recomputes_one_point(
        self, tiny_spec, tmp_path
    ):
        """Delete one ``.npz`` behind the manifest's back: progress reports
        the phantom done as healed, and resume recomputes exactly that
        point, bit-identical to the original."""
        store = ArtifactStore(tmp_path)
        session = tiny_spec.session(store=store)
        points = tiny_spec.points()
        original = dict(session.sweep().iter_attacked_scores(points))

        victim = points[1]
        victim_key = session.attacked_scores_keys(points)[1]
        store.path_for("attacked_scores", victim_key).unlink()

        status_session = tiny_spec.session(store=ArtifactStore(tmp_path))
        progress = status_session.sweep().progress(points)
        assert progress.done == len(points) - 1
        assert progress.healed == 1
        # The healed manifest was republished: a reload sees the truth.
        reloaded = SweepManifest.load(status_session.store, progress.key)
        assert reloaded.status(victim_key) == "pending"
        assert reloaded.done_count == len(points) - 1

        resumed = tiny_spec.session(store=ArtifactStore(tmp_path))
        scores = dict(resumed.sweep().iter_attacked_scores(points))
        assert resumed.store.hit_counts["attacked_scores"] == len(points) - 1
        assert resumed.store.miss_counts["attacked_scores"] == 1
        for point in points:
            np.testing.assert_array_equal(scores[point], original[point])
        assert resumed.sweep().progress(points).remaining == 0

    def test_corrupt_manifest_is_ignored_and_rebuilt(self, tiny_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        session = tiny_spec.session(store=store)
        points = tiny_spec.points()
        dict(session.sweep().iter_attacked_scores(points))

        key = manifest_key(session.attacked_scores_keys(points))
        path = store.json_path_for(MANIFEST_CATEGORY, key)
        path.write_text("{ this is not json")

        fresh = tiny_spec.session(store=ArtifactStore(tmp_path))
        progress = fresh.sweep().progress(points)
        assert progress.done == len(points)
        assert progress.healed == 0
        # The corrupt document was quarantined and a clean one rebuilt.
        payload = json.loads(path.read_text())
        assert SweepManifest.from_payload(payload) is not None
        assert path.with_name(path.name + ".corrupt").exists()
