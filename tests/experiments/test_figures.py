"""Tests for the per-figure experiment definitions.

Each figure is run at a very small Monte-Carlo scale on a sparse network so
the suite stays fast; the tests check structure (panels/series/labels match
the paper's figure layout) plus the coarse qualitative trends that survive
small sample sizes.
"""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import FIGURES, get_figure, run_figure
from repro.experiments.figures import fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments.session import LadSession


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig(
        group_size=60,
        num_training_samples=50,
        training_samples_per_network=25,
        num_victims=50,
        victims_per_network=25,
        gz_omega=300,
        seed=4242,
    )


@pytest.fixture(scope="module")
def tiny_simulation(tiny_config):
    return LadSession(tiny_config)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "figl",
            "figm",
            "figt",
        }

    def test_get_figure_lookup(self):
        assert get_figure("FIG7") is fig7.run
        with pytest.raises(KeyError):
            get_figure("fig99")

    def test_renderers_cover_every_figure(self):
        from repro.experiments.figures import FIGURE_RENDERERS, FIGURE_SPECS

        assert set(FIGURE_RENDERERS) == set(FIGURES) == set(FIGURE_SPECS)


class TestSpecRendering:
    """``run_figure_spec`` / ``ScenarioSpec.figure`` reproduce the drivers."""

    @pytest.mark.parametrize("figure_id", ["fig4", "fig5", "fig7", "fig8"])
    def test_run_figure_spec_matches_run_driver(
        self, figure_id, tiny_config, tiny_simulation
    ):
        from repro.experiments.figures import FIGURE_SPECS, run_figure_spec

        spec = FIGURE_SPECS[figure_id](tiny_config)
        via_spec = run_figure_spec(spec, session=tiny_simulation)
        via_run = run_figure(figure_id, simulation=tiny_simulation)
        assert via_spec.as_dict() == via_run.as_dict()

    def test_scenario_spec_figure_method(self, tiny_config, tiny_simulation):
        from repro.experiments.figures import fig7 as fig7_module

        spec = fig7_module.spec(tiny_config, degrees=(160.0,), fractions=(0.1,))
        result = spec.figure(session=tiny_simulation)
        assert result.figure_id == "fig7"
        assert result.get_panel("DR-D-x").get_series("x=10%")

    def test_unregistered_spec_name_raises(self, tiny_config):
        from repro.experiments.scenario import ScenarioSpec

        spec = ScenarioSpec(name="not_a_figure", config=tiny_config)
        with pytest.raises(KeyError, match="no figure renderer"):
            spec.figure()


class TestFig4(object):
    def test_structure_and_trends(self, tiny_simulation):
        result = fig4.run(simulation=tiny_simulation, degrees=(80.0, 160.0))
        assert result.figure_id == "fig4"
        assert [p.title for p in result.panels] == ["D=80", "D=160"]
        for panel in result.panels:
            labels = [s.label for s in panel.series]
            assert labels == ["Diff Metric", "Add All Metric", "Probability Metric"]
            for series in panel.series:
                # ROC curves: detection rate non-decreasing in FP, ending at 1.
                assert series.y[-1] == pytest.approx(1.0)
                assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:]))
        # Larger D should not hurt the Diff metric's detection at 5% FP.
        d80 = result.get_panel("D=80").get_series("Diff Metric").y_at(0.05)
        d160 = result.get_panel("D=160").get_series("Diff Metric").y_at(0.05)
        assert d160 >= d80 - 0.1


class TestFig5AndFig6:
    def test_fig5_structure(self, tiny_simulation):
        result = fig5.run(simulation=tiny_simulation, degrees=(40.0,))
        assert result.figure_id == "fig5"
        panel = result.get_panel("D=40")
        labels = [s.label for s in panel.series]
        assert labels == ["Dec-Bounded Attacks", "Dec-Only Attacks"]
        # Dec-Only is easier to detect (or equal) at every sampled FP.
        bounded = panel.get_series("Dec-Bounded Attacks")
        only = panel.get_series("Dec-Only Attacks")
        assert np.mean(np.array(only.y) - np.array(bounded.y)) >= -0.05

    def test_fig6_reuses_fig5_with_large_degrees(self, tiny_simulation):
        result = fig6.run(simulation=tiny_simulation, degrees=(160.0,))
        assert result.figure_id == "fig6"
        assert [p.title for p in result.panels] == ["D=160"]


class TestFig7:
    def test_structure_and_trend(self, tiny_simulation):
        result = fig7.run(
            simulation=tiny_simulation, degrees=(40.0, 160.0), fractions=(0.1,)
        )
        panel = result.get_panel("DR-D-x")
        series = panel.get_series("x=10%")
        assert series.x == [40.0, 160.0]
        assert series.y[1] >= series.y[0]
        assert all(0.0 <= y <= 1.0 for y in series.y)


class TestFig8:
    def test_structure_and_trend(self, tiny_simulation):
        result = fig8.run(
            simulation=tiny_simulation, fractions=(0.0, 0.5), degrees=(160.0,)
        )
        panel = result.get_panel("DR-x-D")
        series = panel.get_series("D=160")
        assert series.x == [0.0, 50.0]
        # More compromise cannot make detection easier.
        assert series.y[1] <= series.y[0] + 0.1


class TestFig9:
    def test_structure(self, tiny_config):
        result = fig9.run(
            config=tiny_config,
            group_sizes=(40, 80),
            degrees=(160.0,),
            fractions=(0.1,),
        )
        assert result.figure_id == "fig9"
        panel = result.get_panel("D=160")
        series = panel.get_series("x=10")
        assert series.x == [40.0, 80.0]
        assert all(0.0 <= y <= 1.0 for y in series.y)

    def test_density_fan_out_matches_serial(self, tiny_config):
        """Each density trains its own thresholds, so fig9 fans out across
        densities; the name-derived streams make the result identical."""
        kwargs = dict(
            config=tiny_config,
            group_sizes=(40, 80),
            degrees=(160.0,),
            fractions=(0.1, 0.3),
        )
        serial = fig9.run(**kwargs)
        parallel = fig9.run(**kwargs, density_workers=2)
        for panel_serial, panel_parallel in zip(serial.panels, parallel.panels):
            for a, b in zip(panel_serial.series, panel_parallel.series):
                assert a.label == b.label
                assert a.y == b.y

    def test_density_fan_out_falls_back_serially(self, tiny_config, monkeypatch):
        from repro.experiments.figures import fig9 as fig9_module

        def broken_pool(*args, **kwargs):
            raise OSError("no process support")

        monkeypatch.setattr(fig9_module, "ProcessPoolExecutor", broken_pool)
        with pytest.warns(RuntimeWarning, match="running the densities serially"):
            result = fig9_module.run(
                config=tiny_config,
                group_sizes=(40,),
                degrees=(160.0,),
                fractions=(0.1,),
                density_workers=2,
            )
        assert result.figure_id == "fig9"


class TestFigL:
    def test_structure_and_localizer_series(self, tiny_config):
        from repro.experiments.figures import figl

        result = figl.run(
            config=tiny_config,
            localizers=("beaconless", "centroid"),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
        )
        assert result.figure_id == "figl"
        panel = result.get_panel("x=10%")
        assert [s.label for s in panel.series] == ["beaconless", "centroid"]
        for series in panel.series:
            assert series.x == [80.0, 160.0]
            assert all(0.0 <= y <= 1.0 for y in series.y)
        # The effective beacon infrastructure is recorded for the reader.
        assert result.parameters["beacons"] is not None

    def test_localizer_fan_out_matches_serial(self, tiny_config):
        from repro.experiments.figures import figl

        kwargs = dict(
            config=tiny_config,
            localizers=("beaconless", "centroid"),
            degrees=(160.0,),
            fractions=(0.1,),
        )
        serial = figl.run(**kwargs)
        parallel = figl.run(**kwargs, density_workers=2)
        for panel_serial, panel_parallel in zip(serial.panels, parallel.panels):
            for a, b in zip(panel_serial.series, panel_parallel.series):
                assert a.label == b.label
                assert a.y == b.y


class TestFigM:
    def test_structure_is_the_attack_by_localizer_matrix(self, tiny_config):
        from repro.experiments.figures import figm

        result = figm.run(
            config=tiny_config,
            localizers=("dvhop", "rssi"),
            attacks=("dec_bounded", "rssi_amp"),
            degrees=(120.0,),
            fractions=(0.1,),
        )
        assert result.figure_id == "figm"
        assert [panel.title for panel in result.panels] == [
            "attack=dec_bounded",
            "attack=rssi_amp",
        ]
        for panel in result.panels:
            assert [s.label for s in panel.series] == ["dvhop", "rssi"]
            for series in panel.series:
                assert series.x == [120.0]
                assert all(0.0 <= y <= 1.0 for y in series.y)
        assert result.parameters["attacks"] == ["dec_bounded", "rssi_amp"]
        assert result.parameters["beacons"] is not None

    def test_modality_gating_shows_in_the_matrix(self, tiny_config):
        """The rssi_amp column is zero for every non-RSSI scheme.

        A modality attack against a scheme that never reads the attacked
        channel displaces nothing, so the claim distribution matches the
        benign one and the detection rate sits at (or below) the
        false-positive budget.
        """
        from repro.experiments.figures import figm

        result = figm.run(
            config=tiny_config,
            localizers=("dvhop", "rssi"),
            attacks=("rssi_amp",),
            degrees=(120.0,),
            fractions=(0.1,),
        )
        panel = result.get_panel("attack=rssi_amp")
        dvhop_rate = panel.get_series("dvhop").y[0]
        rssi_rate = panel.get_series("rssi").y[0]
        assert dvhop_rate <= 0.2  # futile attack: benign-level flagging
        assert rssi_rate > dvhop_rate  # the attacked modality is detectable

    def test_localizer_fan_out_matches_serial(self, tiny_config):
        from repro.experiments.figures import figm

        kwargs = dict(
            config=tiny_config,
            localizers=("dvhop", "rssi"),
            attacks=("dec_bounded", "rssi_amp"),
            degrees=(120.0,),
            fractions=(0.1,),
        )
        serial = figm.run(**kwargs)
        parallel = figm.run(**kwargs, density_workers=2)
        for panel_serial, panel_parallel in zip(serial.panels, parallel.panels):
            for a, b in zip(panel_serial.series, panel_parallel.series):
                assert a.label == b.label
                assert a.y == b.y

    def test_spec_render_matches_run_driver(self, tiny_config):
        from repro.experiments.figures import figm, run_figure_spec

        kwargs = dict(
            localizers=("dvhop", "rssi"),
            attacks=("dec_bounded", "rssi_amp"),
            degrees=(120.0,),
            fractions=(0.1,),
        )
        spec = figm.spec(tiny_config, **kwargs)
        via_spec = run_figure_spec(spec)
        via_run = figm.run(config=tiny_config, **kwargs)
        assert via_spec.as_dict() == via_run.as_dict()


class TestFigT:
    def test_structure_and_online_metrics(self, tiny_config):
        from repro.events import EventSpec, TimelineSpec
        from repro.experiments.figures import figt

        timeline = TimelineSpec(
            epochs=4,
            events=(EventSpec(kind="attack", action="on", at=(2.0,)),),
        )
        result = figt.run(
            config=tiny_config,
            timeline=timeline,
            degrees=(160.0,),
            fractions=(0.1,),
            false_positive_rate=0.05,
        )
        assert result.figure_id == "figt"
        assert len(result.panels) == 1
        panel = result.panels[0]
        assert [s.label for s in panel.series] == [
            "detection rate",
            "delivery rate",
            "false positives",
        ]
        for series in panel.series:
            assert series.x == [0.0, 1.0, 2.0, 3.0]
            assert all(0.0 <= y <= 1.0 for y in series.y)
        # Nothing is attacked before epoch 2, so nothing can be detected;
        # once the attack switches on the latency must record epoch 2.
        detection = panel.series[0]
        assert detection.y[0] == 0.0 and detection.y[1] == 0.0
        (point,) = result.parameters["points"]
        assert point["detection_latency"] == 2
        assert result.parameters["epochs"] == 4


class TestRunFigureDispatch:
    def test_run_figure_with_scale(self, tiny_config):
        result = run_figure(
            "fig7",
            config=tiny_config,
            scale=1.0,
            degrees=(160.0,),
            fractions=(0.1,),
        )
        assert result.figure_id == "fig7"
