"""Tests for :mod:`repro.experiments.results`."""

import json

import numpy as np
import pytest

from repro.experiments.results import FigureResult, PanelResult, SeriesResult


@pytest.fixture()
def figure():
    fig = FigureResult(figure_id="figX", title="demo", parameters={"m": 300})
    panel = PanelResult(title="D=80", x_label="FP", y_label="DR")
    panel.add_series(SeriesResult(label="diff", x=[0.0, 0.1, 1.0], y=[0.1, 0.5, 1.0]))
    panel.add_series(
        SeriesResult(label="add_all", x=[0.0, 0.1, 1.0], y=[0.05, 0.3, 1.0]),
    )
    fig.add_panel(panel)
    return fig


class TestSeriesResult:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            SeriesResult(label="bad", x=[1.0, 2.0], y=[1.0])

    def test_y_at_interpolates(self):
        series = SeriesResult(label="s", x=[0.0, 1.0], y=[0.0, 10.0])
        assert series.y_at(0.5) == pytest.approx(5.0)
        assert series.y_at(2.0) == 10.0  # clamped

    def test_y_at_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesResult(label="s", x=[], y=[]).y_at(0.5)

    def test_numpy_inputs_coerced(self):
        series = SeriesResult(label="s", x=np.arange(3), y=np.arange(3) * 2.0)
        assert isinstance(series.x[0], float)


class TestPanelAndFigure:
    def test_get_series_and_panel(self, figure):
        panel = figure.get_panel("D=80")
        assert panel.get_series("diff").label == "diff"
        with pytest.raises(KeyError):
            panel.get_series("nope")
        with pytest.raises(KeyError):
            figure.get_panel("nope")

    def test_json_round_trip(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        text = figure.to_json(path)
        loaded = FigureResult.from_dict(json.loads(text))
        assert loaded.figure_id == figure.figure_id
        assert loaded.parameters == figure.parameters
        assert loaded.get_panel("D=80").get_series("diff").y == [0.1, 0.5, 1.0]
        assert path.exists()

    def test_csv_export(self, figure, tmp_path):
        path = tmp_path / "fig.csv"
        figure.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "figure,panel,series,x,y"
        # 2 series x 3 points = 6 data rows.
        assert len(lines) == 7

    def test_as_dict_structure(self, figure):
        data = figure.as_dict()
        assert data["figure_id"] == "figX"
        assert len(data["panels"][0]["series"]) == 2
