"""Tests for :mod:`repro.experiments.sweep`."""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.sweep import SweepPoint, SweepRunner, attack_stream_name


@pytest.fixture(scope="module")
def tiny_simulation():
    return LadSession(
        SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=777,
        )
    )


class TestGrid:
    def test_cartesian_product_and_normalisation(self):
        points = SweepRunner.grid(
            ["diff", "add_all"], ["dec_bounded"], [80, 160], [0.1]
        )
        assert len(points) == 4
        assert points[0] == SweepPoint("diff", "dec_bounded", 80.0, 0.1)
        metrics = {p.metric for p in points}
        assert "diff" in metrics and len(metrics) == 2

    def test_stream_name_matches_harness_convention(self):
        point = SweepPoint("diff", "dec_only", 120.0, 0.25)
        assert point.stream_name() == attack_stream_name(
            "diff", "dec_only", 120.0, 0.25
        )
        assert point.stream_name() == "attack/diff/dec_only/120/0.25"


class TestSerialSweep:
    def test_matches_simulation_entry_points(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0, 160.0], [0.1])
        scores = runner.attacked_scores(points)
        for point in points:
            expected = tiny_simulation.attacked_scores(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
            )
            np.testing.assert_array_equal(scores[point], expected)

    def test_detection_rates_match_simulation(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [160.0], [0.1, 0.3])
        rates = runner.detection_rates(points, false_positive_rate=0.05)
        for point in points:
            expected = tiny_simulation.detection_rate(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
                false_positive_rate=0.05,
            )
            assert rates[point] == pytest.approx(expected)

    def test_rocs_match_simulation(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        (point,) = SweepRunner.grid(["diff"], ["dec_only"], [120.0], [0.2])
        roc = runner.rocs([point])[point]
        expected = tiny_simulation.roc(
            "diff",
            "dec_only",
            degree_of_damage=120.0,
            compromised_fraction=0.2,
        )
        np.testing.assert_array_equal(
            roc.false_positive_rates,
            expected.false_positive_rates,
        )
        np.testing.assert_array_equal(roc.detection_rates, expected.detection_rates)


class TestParallelSweep:
    def test_workers_reproduce_serial_results(self, tiny_simulation):
        points = SweepRunner.grid(
            ["diff"], ["dec_bounded", "dec_only"], [80.0, 160.0], [0.1]
        )
        serial = tiny_simulation.sweep().attacked_scores(points)
        parallel = tiny_simulation.sweep(workers=2).attacked_scores(points)
        assert set(serial) == set(parallel)
        for point in points:
            np.testing.assert_array_equal(serial[point], parallel[point])

    def test_falls_back_to_serial_without_shared_memory(
        self, tiny_simulation, monkeypatch
    ):
        """Platforms without fork/shared-memory support degrade to the
        serial path with a warning instead of crashing mid-sweep."""
        from repro.experiments import sweep as sweep_module

        def broken_share(array):
            raise OSError("shared memory unavailable on this platform")

        monkeypatch.setattr(sweep_module, "_share_array", broken_share)
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0], [0.1, 0.3])
        serial = tiny_simulation.sweep().attacked_scores(points)
        with pytest.warns(RuntimeWarning, match="falling back to the serial path"):
            fallback = tiny_simulation.sweep(workers=2).attacked_scores(points)
        for point in points:
            np.testing.assert_array_equal(fallback[point], serial[point])

    def test_shared_segments_are_released(self, tiny_simulation, monkeypatch):
        """The parent unlinks every shared-memory segment it created, even
        when a worker blows up mid-sweep."""
        from repro.experiments import sweep as sweep_module

        created = []
        original = sweep_module._share_array

        def tracking_share(array):
            segment, meta = original(array)
            created.append(segment)
            return segment, meta

        monkeypatch.setattr(sweep_module, "_share_array", tracking_share)
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0], [0.1])
        tiny_simulation.sweep(workers=2).attacked_scores(points)
        assert len(created) == 2  # observations + locations
        for segment in created:
            with pytest.raises(FileNotFoundError):
                type(segment)(name=segment.name)


class TestFigureIntegration:
    def test_fig7_accepts_workers(self, tiny_simulation):
        from repro.experiments.figures import fig7

        serial = fig7.run(
            simulation=tiny_simulation,
            degrees=(160.0,),
            fractions=(0.1,),
        )
        parallel = fig7.run(
            simulation=tiny_simulation,
            degrees=(160.0,),
            fractions=(0.1,),
            workers=2,
        )
        assert serial.get_panel("DR-D-x").get_series("x=10%").y == (
            parallel.get_panel("DR-D-x").get_series("x=10%").y
        )
