"""Tests for :mod:`repro.experiments.sweep`."""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.sweep import SweepPoint, SweepRunner, attack_stream_name


@pytest.fixture(scope="module")
def tiny_simulation():
    return LadSession(
        SimulationConfig(
            group_size=40,
            num_training_samples=30,
            training_samples_per_network=15,
            num_victims=30,
            victims_per_network=15,
            gz_omega=300,
            seed=777,
        )
    )


class TestGrid:
    def test_cartesian_product_and_normalisation(self):
        points = SweepRunner.grid(
            ["diff", "add_all"], ["dec_bounded"], [80, 160], [0.1]
        )
        assert len(points) == 4
        assert points[0] == SweepPoint("diff", "dec_bounded", 80.0, 0.1)
        metrics = {p.metric for p in points}
        assert "diff" in metrics and len(metrics) == 2

    def test_stream_name_matches_harness_convention(self):
        point = SweepPoint("diff", "dec_only", 120.0, 0.25)
        assert point.stream_name() == attack_stream_name(
            "diff", "dec_only", 120.0, 0.25
        )
        assert point.stream_name() == "attack/diff/dec_only/120/0.25"


class TestSerialSweep:
    def test_matches_simulation_entry_points(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0, 160.0], [0.1])
        scores = runner.attacked_scores(points)
        for point in points:
            expected = tiny_simulation.attacked_scores(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
            )
            np.testing.assert_array_equal(scores[point], expected)

    def test_detection_rates_match_simulation(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [160.0], [0.1, 0.3])
        rates = runner.detection_rates(points, false_positive_rate=0.05)
        for point in points:
            expected = tiny_simulation.detection_rate(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
                false_positive_rate=0.05,
            )
            assert rates[point] == pytest.approx(expected)

    def test_rocs_match_simulation(self, tiny_simulation):
        runner = tiny_simulation.sweep()
        (point,) = SweepRunner.grid(["diff"], ["dec_only"], [120.0], [0.2])
        roc = runner.rocs([point])[point]
        expected = tiny_simulation.roc(
            "diff",
            "dec_only",
            degree_of_damage=120.0,
            compromised_fraction=0.2,
        )
        np.testing.assert_array_equal(
            roc.false_positive_rates,
            expected.false_positive_rates,
        )
        np.testing.assert_array_equal(roc.detection_rates, expected.detection_rates)


class TestParallelSweep:
    def test_workers_reproduce_serial_results(self, tiny_simulation):
        points = SweepRunner.grid(
            ["diff"], ["dec_bounded", "dec_only"], [80.0, 160.0], [0.1]
        )
        serial = tiny_simulation.sweep().attacked_scores(points)
        parallel = tiny_simulation.sweep(workers=2).attacked_scores(points)
        assert set(serial) == set(parallel)
        for point in points:
            np.testing.assert_array_equal(serial[point], parallel[point])

    def test_falls_back_to_serial_without_shared_memory(
        self, tiny_simulation, monkeypatch
    ):
        """Platforms without fork/shared-memory support degrade to the
        serial path with a warning instead of crashing mid-sweep."""
        from repro.experiments import sweep as sweep_module

        def broken_share(array):
            raise OSError("shared memory unavailable on this platform")

        monkeypatch.setattr(sweep_module, "_share_array", broken_share)
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0], [0.1, 0.3])
        serial = tiny_simulation.sweep().attacked_scores(points)
        with pytest.warns(RuntimeWarning, match="falling back to the serial path"):
            fallback = tiny_simulation.sweep(workers=2).attacked_scores(points)
        for point in points:
            np.testing.assert_array_equal(fallback[point], serial[point])

    def test_shared_segments_are_released(self, tiny_simulation, monkeypatch):
        """The parent unlinks every shared-memory segment it created, even
        when a worker blows up mid-sweep."""
        from repro.experiments import sweep as sweep_module

        created = []
        original = sweep_module._share_array

        def tracking_share(array):
            segment, meta = original(array)
            created.append(segment)
            return segment, meta

        monkeypatch.setattr(sweep_module, "_share_array", tracking_share)
        points = SweepRunner.grid(["diff"], ["dec_bounded"], [80.0], [0.1])
        tiny_simulation.sweep(workers=2).attacked_scores(points)
        # observations + locations + knowledge (lattice, g(z) knots, values)
        assert len(created) == 5
        for segment in created:
            with pytest.raises(FileNotFoundError):
                type(segment)(name=segment.name)


class TestSharedKnowledge:
    """The metadata-only pool payload and its worker-side rehydration."""

    def test_share_parts_round_trip_is_bit_identical(self, tiny_simulation):
        from repro.deployment.knowledge import DeploymentKnowledge

        knowledge = tiny_simulation.knowledge
        arrays, skeleton = knowledge.share_parts()
        rebuilt = DeploymentKnowledge.from_share_parts(skeleton, arrays)
        assert rebuilt.n_groups == knowledge.n_groups
        assert rebuilt.group_size == knowledge.group_size
        assert rebuilt.radio_range == knowledge.radio_range
        assert rebuilt.support_radius == knowledge.support_radius
        assert rebuilt.gz_table.omega == knowledge.gz_table.omega
        assert rebuilt.gz_table.z_max == knowledge.gz_table.z_max
        sample = tiny_simulation.victims()
        locations = sample.actual_locations[:8]
        np.testing.assert_array_equal(
            rebuilt.expected_observation(locations),
            knowledge.expected_observation(locations),
        )
        np.testing.assert_array_equal(
            rebuilt.log_likelihood_batch(
                locations, sample.observations[:8], prune=True
            ),
            knowledge.log_likelihood_batch(
                locations, sample.observations[:8], prune=True
            ),
        )

    def test_pool_payload_is_metadata_only(self, tiny_simulation):
        """The pickled initializer payload must not carry the knowledge
        arrays — they travel through shared memory."""
        import pickle

        runner = tiny_simulation.sweep(workers=2)
        segments, payload = runner._pool_payload()
        try:
            assert "knowledge" not in payload
            assert set(payload["shared_arrays"]) == {
                "observations",
                "locations",
                "knowledge_points",
                "knowledge_gz_knots",
                "knowledge_gz_values",
            }
            payload_bytes = len(pickle.dumps(payload))
            knowledge_bytes = len(pickle.dumps(tiny_simulation.knowledge))
            assert payload_bytes < knowledge_bytes / 2
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_worker_initializer_rebuilds_bit_identical_state(
        self, tiny_simulation
    ):
        """Running the real initializer + scorer in-process (attach, rebuild
        knowledge from the shared arrays, score) reproduces the session's
        own attacked scores bit for bit."""
        import contextlib
        import pickle

        from repro.experiments import sweep as sweep_module

        runner = tiny_simulation.sweep(workers=2)
        segments, payload = runner._pool_payload()
        saved_state = dict(sweep_module._WORKER_STATE)
        worker_segments = []
        try:
            sweep_module._WORKER_STATE.clear()
            # Round-trip through pickle exactly as the pool initargs would.
            sweep_module._init_worker(pickle.loads(pickle.dumps(payload)))
            worker_segments = sweep_module._WORKER_STATE.get(
                "_shared_segments", []
            )
            point = SweepPoint("diff", "dec_bounded", 80.0, 0.1)
            scores = sweep_module._score_point(point)
            expected = tiny_simulation.attacked_scores(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
            )
            np.testing.assert_array_equal(scores, expected)
        finally:
            sweep_module._WORKER_STATE.clear()
            sweep_module._WORKER_STATE.update(saved_state)
            for segment in worker_segments:
                # The attached views were dropped with the state dict; a
                # lingering export would raise BufferError, which only
                # means the GC has not collected them yet.
                with contextlib.suppress(BufferError):
                    segment.close()
            for segment in segments:
                segment.close()
                segment.unlink()


class TestFigureIntegration:
    def test_fig7_accepts_workers(self, tiny_simulation):
        from repro.experiments.figures import fig7

        serial = fig7.run(
            simulation=tiny_simulation,
            degrees=(160.0,),
            fractions=(0.1,),
        )
        parallel = fig7.run(
            simulation=tiny_simulation,
            degrees=(160.0,),
            fractions=(0.1,),
            workers=2,
        )
        assert serial.get_panel("DR-D-x").get_series("x=10%").y == (
            parallel.get_panel("DR-D-x").get_series("x=10%").y
        )
