"""Tests for :mod:`repro.experiments.config`."""

import pytest

from repro.experiments.config import SimulationConfig


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.group_size == 300
        assert config.radio_range == 100.0
        assert config.sigma == 50.0
        assert config.n_groups == 100
        assert config.num_nodes == 30_000
        assert config.region_size == 1000.0

    def test_with_group_size(self):
        config = SimulationConfig().with_group_size(500)
        assert config.group_size == 500
        assert config.num_nodes == 50_000
        # The original is unchanged (frozen dataclass).
        assert SimulationConfig().group_size == 300

    def test_with_seed(self):
        assert SimulationConfig().with_seed(7).seed == 7

    def test_scaled_reduces_sample_sizes_only(self):
        config = SimulationConfig()
        scaled = config.scaled(0.25)
        assert scaled.num_training_samples == 100
        assert scaled.num_victims == 100
        assert scaled.group_size == config.group_size
        assert scaled.radio_range == config.radio_range

    def test_scaled_has_floor(self):
        scaled = SimulationConfig().scaled(0.0001)
        assert scaled.num_training_samples >= 20
        assert scaled.num_victims >= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(group_size=0)
        with pytest.raises(ValueError):
            SimulationConfig(radio_range=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(gz_omega=5)
        with pytest.raises(ValueError):
            SimulationConfig().scaled(0.0)
