"""Tests for :mod:`repro.geometry.grid`."""

import numpy as np
import pytest

from repro.geometry.grid import SpatialHashGrid


@pytest.fixture()
def random_points():
    rng = np.random.default_rng(7)
    return rng.uniform(0, 1000, size=(500, 2))


class TestSpatialHashGrid:
    def test_query_matches_brute_force(self, random_points):
        grid = SpatialHashGrid(random_points, cell_size=100.0)
        rng = np.random.default_rng(8)
        for _ in range(20):
            q = rng.uniform(0, 1000, size=2)
            got = grid.query_radius(q, 100.0)
            dists = np.hypot(*(random_points - q).T)
            expected = np.sort(np.flatnonzero(dists <= 100.0))
            np.testing.assert_array_equal(got, expected)

    def test_radius_larger_than_cell(self, random_points):
        grid = SpatialHashGrid(random_points, cell_size=50.0)
        q = np.array([500.0, 500.0])
        got = grid.query_radius(q, 180.0)
        dists = np.hypot(*(random_points - q).T)
        expected = np.sort(np.flatnonzero(dists <= 180.0))
        np.testing.assert_array_equal(got, expected)

    def test_empty_result(self):
        grid = SpatialHashGrid(np.array([[0.0, 0.0]]), cell_size=10.0)
        assert grid.query_radius((1000.0, 1000.0), 5.0).size == 0

    def test_batch_query(self, random_points):
        grid = SpatialHashGrid(random_points, cell_size=100.0)
        queries = random_points[:5]
        results = grid.query_radius_batch(queries, 60.0)
        assert len(results) == 5
        # Every point is within radius 0 of itself, so each result contains
        # the query point's own index.
        for i, res in enumerate(results):
            assert i in res

    def test_properties(self, random_points):
        grid = SpatialHashGrid(random_points, cell_size=25.0)
        assert grid.num_points == 500
        assert grid.cell_size == 25.0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialHashGrid(np.zeros((3, 2)), cell_size=0.0)

    def test_negative_radius_rejected(self, random_points):
        grid = SpatialHashGrid(random_points, cell_size=10.0)
        with pytest.raises(ValueError):
            grid.query_radius((0, 0), -1.0)
