"""Tests for :mod:`repro.geometry.points`."""

import numpy as np
import pytest

from repro.geometry.points import (
    distance,
    distances_to_point,
    pairwise_distances,
    points_on_circle,
    random_point_at_distance,
    random_points_at_distance,
)
from repro.types import Region


class TestDistance:
    def test_basic(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_symmetric(self):
        assert distance((1, 2), (7, -3)) == pytest.approx(distance((7, -3), (1, 2)))

    def test_zero(self):
        assert distance((2.5, 2.5), (2.5, 2.5)) == 0.0


class TestDistancesToPoint:
    def test_batch(self):
        pts = [[0, 0], [3, 4], [0, 5]]
        out = distances_to_point(pts, (0, 0))
        np.testing.assert_allclose(out, [0.0, 5.0, 5.0])


class TestPairwiseDistances:
    def test_square_matrix_self(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        d = pairwise_distances(pts)
        assert d.shape == (3, 3)
        np.testing.assert_allclose(np.diag(d), 0.0)
        assert d[0, 1] == pytest.approx(1.0)
        assert d[0, 2] == pytest.approx(2.0)

    def test_rectangular(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0], [6.0, 8.0]])
        d = pairwise_distances(a, b)
        np.testing.assert_allclose(d, [[5.0, 10.0]])

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(20, 2))
        d = pairwise_distances(pts)
        np.testing.assert_allclose(d, d.T, atol=1e-9)


class TestPointsOnCircle:
    def test_radius_respected(self):
        pts = points_on_circle((5.0, 5.0), 3.0, 16)
        dists = distances_to_point(pts, (5.0, 5.0))
        np.testing.assert_allclose(dists, 3.0)

    def test_count(self):
        assert points_on_circle((0, 0), 1.0, 7).shape == (7, 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            points_on_circle((0, 0), 1.0, 0)
        with pytest.raises(ValueError):
            points_on_circle((0, 0), -1.0, 4)


class TestRandomPointAtDistance:
    def test_exact_distance(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = random_point_at_distance(rng, (500.0, 500.0), 120.0)
            assert distance(p, (500.0, 500.0)) == pytest.approx(120.0)

    def test_respects_region(self):
        rng = np.random.default_rng(1)
        region = Region(0, 0, 1000, 1000)
        for _ in range(50):
            p = random_point_at_distance(rng, (50.0, 50.0), 200.0, region=region)
            assert region.contains_point(p)

    def test_negative_distance_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            random_point_at_distance(rng, (0, 0), -1.0)

    def test_impossible_region_falls_back_to_clipping(self):
        # Origin at the centre of a tiny region with a huge displacement:
        # no direction stays inside, so the fallback clips to the boundary.
        rng = np.random.default_rng(3)
        region = Region(0, 0, 10, 10)
        p = random_point_at_distance(
            rng,
            (5.0, 5.0),
            1000.0,
            region=region,
            max_tries=8,
        )
        assert region.contains_point(p)


class TestRandomPointsAtDistance:
    def test_batch_distances(self):
        rng = np.random.default_rng(4)
        origins = np.array([[100.0, 100.0], [300.0, 400.0], [900.0, 900.0]])
        region = Region(0, 0, 1000, 1000)
        out = random_points_at_distance(rng, origins, 80.0, region=region)
        dists = np.hypot(*(out - origins).T)
        np.testing.assert_allclose(dists, 80.0, atol=1e-9)
        assert region.contains(out).all()

    def test_no_region(self):
        rng = np.random.default_rng(5)
        origins = np.zeros((10, 2))
        out = random_points_at_distance(rng, origins, 5.0)
        np.testing.assert_allclose(np.hypot(out[:, 0], out[:, 1]), 5.0)
