"""Tests for :mod:`repro.geometry.shapes`."""

import numpy as np
import pytest

from repro.geometry.shapes import (
    circle_circle_intersection_area,
    disk_area,
    point_in_triangle,
    triangle_area,
)


class TestDiskArea:
    def test_value(self):
        assert disk_area(2.0) == pytest.approx(4 * np.pi)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            disk_area(-1.0)


class TestCircleCircleIntersection:
    def test_identical_circles(self):
        assert circle_circle_intersection_area(0.0, 5.0, 5.0) == pytest.approx(
            np.pi * 25.0
        )

    def test_contained_circle(self):
        assert circle_circle_intersection_area(1.0, 2.0, 10.0) == pytest.approx(
            np.pi * 4.0
        )

    def test_disjoint_circles(self):
        assert circle_circle_intersection_area(20.0, 5.0, 5.0) == 0.0

    def test_half_overlap_monotone_in_distance(self):
        ds = np.linspace(0.0, 10.0, 21)
        areas = circle_circle_intersection_area(ds, 5.0, 5.0)
        assert np.all(np.diff(areas) <= 1e-9)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(0)
        r1, r2, d = 3.0, 4.0, 2.5
        # Sample in the bounding box of the first circle.
        pts = rng.uniform(-r1, r1, size=(200_000, 2))
        inside1 = np.hypot(pts[:, 0], pts[:, 1]) <= r1
        inside2 = np.hypot(pts[:, 0] - d, pts[:, 1]) <= r2
        mc = np.mean(inside1 & inside2) * (2 * r1) ** 2
        exact = circle_circle_intersection_area(d, r1, r2)
        assert exact == pytest.approx(mc, rel=0.02)

    def test_zero_radius(self):
        assert circle_circle_intersection_area(1.0, 0.0, 5.0) == 0.0

    def test_vector_input(self):
        out = circle_circle_intersection_area(np.array([0.0, 100.0]), 5.0, 5.0)
        assert out.shape == (2,)
        assert out[0] > 0 and out[1] == 0.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            circle_circle_intersection_area(1.0, -1.0, 2.0)


class TestTriangle:
    def test_area(self):
        assert triangle_area((0, 0), (4, 0), (0, 3)) == pytest.approx(6.0)

    def test_degenerate_area(self):
        assert triangle_area((0, 0), (1, 1), (2, 2)) == pytest.approx(0.0)

    def test_point_in_triangle_inside_outside(self):
        a, b, c = (0, 0), (10, 0), (0, 10)
        pts = [[1, 1], [5, 4], [9, 9], [-1, 0]]
        mask = point_in_triangle(pts, a, b, c)
        assert mask.tolist() == [True, True, False, False]

    def test_point_on_edge_counts_as_inside(self):
        a, b, c = (0, 0), (10, 0), (0, 10)
        mask = point_in_triangle([[5, 0], [0, 5]], a, b, c)
        assert mask.all()

    def test_vertex_order_irrelevant(self):
        pts = np.random.default_rng(1).uniform(-5, 15, size=(200, 2))
        m1 = point_in_triangle(pts, (0, 0), (10, 0), (0, 10))
        m2 = point_in_triangle(pts, (0, 10), (10, 0), (0, 0))
        np.testing.assert_array_equal(m1, m2)

    def test_degenerate_triangle_contains_nothing(self):
        mask = point_in_triangle([[1, 1]], (0, 0), (1, 1), (2, 2))
        assert not mask.any()
