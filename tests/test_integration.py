"""End-to-end integration tests of the full LAD pipeline.

These exercise the complete chain — deployment, neighbour discovery,
beaconless localization, threshold training, attack simulation, detection —
through the public API, on a deliberately small deployment so they stay
fast.
"""

import numpy as np
import pytest

import repro
from repro import (
    AttackBudget,
    BeaconlessLocalizer,
    DisplacementAttack,
    GreedyMetricMinimizer,
    LADDetector,
    NeighborIndex,
    NetworkGenerator,
    UnitDiskRadio,
    collect_training_data,
)
from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.models import GridDeploymentModel
from repro.types import Region


@pytest.fixture(scope="module")
def pipeline():
    """Deploy, train and package everything the scenarios below need."""
    model = GridDeploymentModel(
        region=Region(0, 0, 500, 500),
        rows=5,
        cols=5,
        distribution=GaussianResidentDistribution(40.0),
    )
    generator = NetworkGenerator(model, group_size=40, radio=UnitDiskRadio(80.0))
    knowledge = generator.knowledge(omega=400)
    training = collect_training_data(
        generator, num_samples=80, samples_per_network=40, rng=101
    )
    detector = LADDetector.from_training_data(
        knowledge,
        training,
        metric="diff",
        tau=0.99,
    )
    network = generator.generate(rng=202)
    index = NeighborIndex(network)
    return {
        "generator": generator,
        "knowledge": knowledge,
        "training": training,
        "detector": detector,
        "network": network,
        "index": index,
    }


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestBenignOperation:
    def test_benign_nodes_rarely_flagged(self, pipeline):
        """An honest node localising itself should rarely raise an alarm
        (false positives stay near the trained 1% budget)."""
        detector = pipeline["detector"]
        knowledge = pipeline["knowledge"]
        network = pipeline["network"]
        index = pipeline["index"]
        localizer = BeaconlessLocalizer()

        rng = np.random.default_rng(5)
        nodes = rng.choice(network.num_nodes, size=60, replace=False)
        observations = index.observations_of_nodes(nodes)
        estimates = localizer.localize_observations(knowledge, observations)
        alarms = detector.detect_batch(estimates, observations)
        assert alarms.mean() <= 0.15

    def test_benign_localization_is_accurate(self, pipeline):
        errors = pipeline["training"].localization_errors()
        assert np.median(errors) < 40.0


class TestAttackDetection:
    def test_large_displacement_detected_despite_tainting(self, pipeline):
        """A D=200 m anomaly with 10% compromised neighbours and a greedy
        Dec-Bounded adversary is still detected for most victims."""
        detector = pipeline["detector"]
        knowledge = pipeline["knowledge"]
        network = pipeline["network"]
        index = pipeline["index"]

        rng = np.random.default_rng(6)
        victims = rng.choice(network.num_nodes, size=50, replace=False)
        honest = index.observations_of_nodes(victims)
        actual = network.positions[victims]

        displacement = DisplacementAttack(200.0)
        spoofed = displacement.spoof_locations(actual, rng, region=network.region)
        expected = knowledge.expected_observation(spoofed)

        adversary = GreedyMetricMinimizer("diff", "dec_bounded")
        budgets = [
            AttackBudget.from_fraction(int(o.sum()), 0.10) for o in honest
        ]
        tainted = adversary.taint_batch(
            honest,
            expected,
            budgets,
            group_size=knowledge.group_size,
        )

        alarms = detector.detect_batch(spoofed, tainted)
        assert alarms.mean() > 0.7

    def test_small_displacement_mostly_undetected(self, pipeline):
        """A D=15 m error is inside the localization noise floor, so LAD
        should *not* flag it aggressively — matching the paper's observation
        that low-damage attacks are hard (and unimportant) to catch."""
        detector = pipeline["detector"]
        knowledge = pipeline["knowledge"]
        network = pipeline["network"]
        index = pipeline["index"]

        rng = np.random.default_rng(7)
        victims = rng.choice(network.num_nodes, size=50, replace=False)
        honest = index.observations_of_nodes(victims)
        actual = network.positions[victims]
        spoofed = DisplacementAttack(
            15.0,
        ).spoof_locations(actual, rng, region=network.region)
        alarms = detector.detect_batch(spoofed, honest)
        assert alarms.mean() < 0.5

    def test_detection_rate_grows_with_damage(self, pipeline):
        knowledge = pipeline["knowledge"]
        network = pipeline["network"]
        index = pipeline["index"]
        detector = pipeline["detector"]

        rng = np.random.default_rng(8)
        victims = rng.choice(network.num_nodes, size=60, replace=False)
        honest = index.observations_of_nodes(victims)
        actual = network.positions[victims]
        adversary = GreedyMetricMinimizer("diff", "dec_bounded")

        rates = []
        for degree in (30.0, 100.0, 220.0):
            spoofed = DisplacementAttack(degree).spoof_locations(
                actual, rng, region=network.region
            )
            expected = knowledge.expected_observation(spoofed)
            budgets = [AttackBudget.from_fraction(int(o.sum()), 0.10) for o in honest]
            tainted = adversary.taint_batch(
                honest, expected, budgets, group_size=knowledge.group_size
            )
            rates.append(float(detector.detect_batch(spoofed, tainted).mean()))
        assert rates[0] <= rates[1] <= rates[2]
        assert rates[2] > 0.8


class TestApplicationLevelImpact:
    def test_lad_filtering_improves_surveillance_reports(self, pipeline):
        """Suppressing reports from sensors whose location fails the LAD
        check removes the grossly wrong event positions."""
        from repro.applications.surveillance import SurveillanceField

        detector = pipeline["detector"]
        knowledge = pipeline["knowledge"]
        network = pipeline["network"]
        index = pipeline["index"]

        rng = np.random.default_rng(9)
        believed = network.positions.copy()
        # Attack a third of the sensors with a 250 m displacement.
        attacked_nodes = rng.choice(
            network.num_nodes,
            size=network.num_nodes // 3,
            replace=False,
        )
        believed[attacked_nodes] = DisplacementAttack(250.0).spoof_locations(
            network.positions[attacked_nodes], rng, region=network.region
        )

        # Each sensor runs LAD on its believed position.
        observations = index.observations_of_nodes(np.arange(network.num_nodes))
        alarms = detector.detect_batch(believed, observations)

        events = rng.uniform(100, 400, size=(15, 2))
        unfiltered = SurveillanceField(
            network,
            believed,
            sensing_range=60.0,
        ).report_events(events)
        filtered_field = SurveillanceField(network, believed, sensing_range=60.0)
        filtered_field.suppress_sensors(np.flatnonzero(alarms))
        filtered = filtered_field.report_events(events)

        assert filtered.mean_report_error < unfiltered.mean_report_error
