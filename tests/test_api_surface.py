"""The public API surface: ``repro.__all__`` imports cleanly and lazily."""

import os
import subprocess
import sys
from pathlib import Path

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_scenario_api_exported(self):
        for name in (
            "LadSession",
            "ScenarioSpec",
            "SimulationConfig",
            "ArtifactStore",
            "SweepPoint",
            "SweepRunner",
            "Registry",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_registry_facades_reachable_from_package(self):
        assert repro.metrics.available() == ["add_all", "diff", "probability"]

    def test_dir_lists_lazy_names(self):
        listing = dir(repro)
        assert "LadSession" in listing and "ScenarioSpec" in listing

    def test_unknown_attribute_raises(self):
        try:
            repro.does_not_exist
        except AttributeError as exc:
            assert "does_not_exist" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected AttributeError")

    def test_import_repro_stays_light(self):
        """``import repro`` must not pull the heavy experiments layer
        (sessions, sweeps, figures); those load lazily on first access."""
        code = (
            "import sys; import repro; "
            "heavy = [m for m in sys.modules if m.startswith("
            "'repro.experiments')]; "
            "assert not heavy, heavy; "
            "repro.LadSession; "
            "assert 'repro.experiments.session' in sys.modules"
        )
        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
