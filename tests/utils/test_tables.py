"""Tests for :mod:`repro.utils.tables`."""

import numpy as np
import pytest

from repro.utils.tables import LookupTable1D


class TestConstruction:
    def test_from_function_knot_count(self):
        table = LookupTable1D.from_function(np.sin, 0.0, np.pi, 10)
        assert table.num_intervals == 10
        assert table.knots.shape == (11,)
        assert table.domain == (0.0, pytest.approx(np.pi))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LookupTable1D(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0]))

    def test_rejects_non_monotone_knots(self):
        with pytest.raises(ValueError):
            LookupTable1D(np.array([0.0, 2.0, 1.0]), np.array([0.0, 1.0, 2.0]))

    def test_rejects_single_knot(self):
        with pytest.raises(ValueError):
            LookupTable1D(np.array([0.0]), np.array([1.0]))

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            LookupTable1D.from_function(np.sin, 1.0, 1.0, 5)

    def test_knots_are_read_only(self):
        table = LookupTable1D.from_function(np.cos, 0.0, 1.0, 4)
        with pytest.raises(ValueError):
            table.knots[0] = 99.0


class TestFastLookup:
    def test_uniform_tables_detected(self):
        table = LookupTable1D.from_function(np.square, 0.0, 4.0, 8)
        assert table.is_uniform
        ragged = LookupTable1D(np.array([0.0, 1.0, 3.0]), np.array([0.0, 1.0, 9.0]))
        assert not ragged.is_uniform

    def test_matches_interp_on_uniform_table(self):
        table = LookupTable1D.from_function(np.exp, -1.0, 2.0, 64)
        z = np.random.default_rng(0).uniform(-2.0, 3.0, 5000)
        np.testing.assert_allclose(
            table.fast_lookup(z),
            table(z),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_matches_interp_on_nonuniform_table(self):
        xs = np.array([0.0, 0.5, 2.0, 3.0])
        ys = np.array([1.0, 0.5, 0.25, 0.0])
        table = LookupTable1D(xs, ys)
        z = np.linspace(-1.0, 4.0, 101)
        np.testing.assert_allclose(
            table.fast_lookup(z),
            table(z),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_exact_at_domain_edges(self):
        table = LookupTable1D.from_function(np.square, 0.0, 4.0, 8)
        np.testing.assert_allclose(
            table.fast_lookup(np.array([-1.0, 0.0, 4.0, 5.0])),
            [0.0, 0.0, 16.0, 16.0],
        )

    def test_extrapolating_table_falls_back_to_exact_path(self):
        table = LookupTable1D.from_function(lambda x: 2.0 * x, 0.0, 1.0, 2, clamp=False)
        z = np.array([-0.5, 0.25, 2.0])
        np.testing.assert_allclose(table.fast_lookup(z), table(z))
        assert table.fast_lookup(np.array([2.0]))[0] == pytest.approx(4.0)


class TestEvaluation:
    def test_exact_at_knots(self):
        table = LookupTable1D.from_function(np.square, 0.0, 4.0, 8)
        np.testing.assert_allclose(table(table.knots), np.square(table.knots))

    def test_interpolates_linear_function_exactly(self):
        table = LookupTable1D.from_function(lambda x: 3 * x + 1, 0.0, 10.0, 5)
        zs = np.linspace(0.0, 10.0, 37)
        np.testing.assert_allclose(table(zs), 3 * zs + 1, atol=1e-12)

    def test_scalar_query_returns_float(self):
        table = LookupTable1D.from_function(np.square, 0.0, 2.0, 4)
        out = table(1.3)
        assert isinstance(out, float)

    def test_clamping_outside_domain(self):
        table = LookupTable1D.from_function(np.square, 1.0, 3.0, 4)
        assert table(0.0) == pytest.approx(1.0)
        assert table(10.0) == pytest.approx(9.0)

    def test_extrapolation_mode(self):
        table = LookupTable1D.from_function(lambda x: 2 * x, 0.0, 1.0, 2, clamp=False)
        assert table(2.0) == pytest.approx(4.0)
        assert table(-1.0) == pytest.approx(-2.0)

    def test_accuracy_improves_with_resolution(self):
        coarse = LookupTable1D.from_function(np.sin, 0.0, np.pi, 8)
        fine = LookupTable1D.from_function(np.sin, 0.0, np.pi, 256)
        assert fine.max_abs_error(np.sin) < coarse.max_abs_error(np.sin)

    def test_max_abs_error_small_for_smooth_function(self):
        table = LookupTable1D.from_function(np.sin, 0.0, np.pi, 500)
        assert table.max_abs_error(np.sin, samples=2000) < 1e-4
