"""Tests for :mod:`repro.utils.validation`."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_shape,
    check_fraction,
    check_int,
    check_positive,
    check_probability,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_and_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        assert check_fraction("p", 0.5) == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
        with pytest.raises(ValueError):
            check_probability("p", 1.01)


class TestCheckInt:
    def test_accepts_int_and_numpy_int(self):
        assert check_int("n", 5) == 5
        assert check_int("n", np.int64(7)) == 7

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_int("n", True)
        with pytest.raises(TypeError):
            check_int("n", 3.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            check_int("n", 2, minimum=3)
        with pytest.raises(ValueError):
            check_int("n", 9, maximum=5)


class TestArrayChecks:
    def test_check_array_shape(self):
        arr = np.zeros((4, 2))
        assert check_array_shape("a", arr, ndim=2, last_dim=2) is not None
        with pytest.raises(ValueError):
            check_array_shape("a", arr, ndim=1)
        with pytest.raises(ValueError):
            check_array_shape("a", arr, last_dim=3)

    def test_check_same_length(self):
        check_same_length("a", np.zeros(3), "b", np.zeros(3))
        with pytest.raises(ValueError):
            check_same_length("a", np.zeros(3), "b", np.zeros(4))
