"""Tests for :mod:`repro.utils.rng`."""

import numpy as np
import pytest

from repro.utils.rng import (
    RandomState,
    as_generator,
    permutation_without_replacement,
    spawn_rngs,
)


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(1 << 30)
        b = as_generator(42).integers(1 << 30)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        values = [r.integers(1 << 30) for r in rngs]
        assert len(set(values)) == 4  # overwhelmingly likely to differ

    def test_reproducible_from_int_seed(self):
        a = [r.integers(1 << 30) for r in spawn_rngs(99, 3)]
        b = [r.integers(1 << 30) for r in spawn_rngs(99, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2


class TestRandomState:
    def test_named_streams_are_reproducible(self):
        a = RandomState(10).stream("network").integers(1 << 30)
        b = RandomState(10).stream("network").integers(1 << 30)
        assert a == b

    def test_different_names_differ(self):
        rs = RandomState(10)
        a = rs.stream("alpha").integers(1 << 30)
        b = rs.stream("beta").integers(1 << 30)
        assert a != b

    def test_stream_independent_of_call_order(self):
        rs1 = RandomState(3)
        _ = rs1.stream("first").integers(10)
        value1 = rs1.stream("second").integers(1 << 30)

        rs2 = RandomState(3)
        value2 = rs2.stream("second").integers(1 << 30)
        assert value1 == value2

    def test_streams_helper(self):
        rs = RandomState(1)
        streams = rs.streams(["a", "b"])
        assert set(streams) == {"a", "b"}

    def test_spawn_children_reproducible(self):
        kids1 = RandomState(8).spawn(3)
        kids2 = RandomState(8).spawn(3)
        assert [k.seed for k in kids1] == [k.seed for k in kids2]
        assert len({k.seed for k in kids1}) == 3

    def test_seed_property(self):
        assert RandomState(77).seed == 77
        assert RandomState().seed is None


class TestPermutationWithoutReplacement:
    def test_distinct_sample(self):
        rng = np.random.default_rng(0)
        out = permutation_without_replacement(rng, np.arange(10), 5)
        assert len(set(out.tolist())) == 5

    def test_too_large_request_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            permutation_without_replacement(rng, np.arange(3), 5)
