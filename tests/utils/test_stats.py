"""Tests for :mod:`repro.utils.stats`."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.utils.stats import (
    binomial_log_pmf,
    binomial_mode,
    binomial_pmf,
    empirical_percentile,
    rates_from_scores,
    roc_points,
)


class TestEmpiricalPercentile:
    def test_median(self):
        assert empirical_percentile(
            np.array([1.0, 2.0, 3.0]),
            0.5,
        ) == pytest.approx(2.0)

    def test_extremes(self):
        data = np.arange(100, dtype=float)
        assert empirical_percentile(data, 0.0) == 0.0
        assert empirical_percentile(data, 1.0) == 99.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_percentile(np.array([]), 0.5)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            empirical_percentile(np.array([1.0]), 1.5)


class TestRatesFromScores:
    def test_simple_threshold(self):
        benign = np.array([1.0, 2.0, 3.0, 4.0])
        attacked = np.array([5.0, 6.0, 1.0])
        fp, dr = rates_from_scores(benign, attacked, threshold=4.0)
        assert fp == 0.0
        assert dr == pytest.approx(2.0 / 3.0)

    def test_alarm_is_strictly_greater(self):
        benign = np.array([2.0, 2.0])
        fp, _ = rates_from_scores(benign, np.array([3.0]), threshold=2.0)
        assert fp == 0.0

    def test_empty_inputs(self):
        fp, dr = rates_from_scores(np.array([]), np.array([]), 0.0)
        assert fp == 0.0 and dr == 0.0


class TestRocPoints:
    def test_perfect_separation_reaches_corner(self):
        benign = np.random.default_rng(0).normal(0, 1, 200)
        attacked = benign + 100.0
        _, fp, dr = roc_points(benign, attacked)
        # Some threshold should achieve DR=1 with FP=0.
        assert np.any((dr == 1.0) & (fp == 0.0))

    def test_curve_monotone_in_fp(self):
        rng = np.random.default_rng(1)
        benign = rng.normal(0, 1, 300)
        attacked = rng.normal(1, 1, 300)
        _, fp, dr = roc_points(benign, attacked)
        # roc_points returns the curve sorted by (FP, DR); the detection
        # rate must never decrease along that ordering.
        assert np.all(np.diff(fp) >= -1e-12)
        assert np.all(np.diff(dr) >= -1e-12)

    def test_spans_zero_to_one(self):
        benign = np.array([0.0, 1.0, 2.0])
        attacked = np.array([1.5, 2.5])
        _, fp, dr = roc_points(benign, attacked)
        assert fp.min() == 0.0 and fp.max() == 1.0
        assert dr.min() == 0.0 and dr.max() == 1.0

    def test_limited_thresholds(self):
        rng = np.random.default_rng(2)
        benign = rng.normal(size=1000)
        attacked = rng.normal(size=1000)
        thresholds, _, _ = roc_points(benign, attacked, num_thresholds=20)
        assert len(thresholds) <= 22  # 20 quantiles + 2 sentinels

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roc_points(np.array([]), np.array([]))

    def test_empty_side_rejected(self):
        """Regression: an empty benign (or attacked) sample used to yield
        FPR = 1.0 (or DR = 1.0) at every threshold instead of failing."""
        scores = np.array([0.1, 0.7, 0.3])
        with pytest.raises(ValueError):
            roc_points(np.array([]), scores)
        with pytest.raises(ValueError):
            roc_points(scores, np.array([]))

    def test_agrees_with_rates_from_scores(self):
        """Each swept (FP, DR) point must match the single-threshold helper."""
        rng = np.random.default_rng(3)
        benign = rng.normal(0, 1, 150)
        attacked = rng.normal(1.5, 1, 120)
        thresholds, fp, dr = roc_points(benign, attacked)
        for threshold, f, d in zip(thresholds, fp, dr):
            expected = rates_from_scores(benign, attacked, threshold)
            assert (f, d) == pytest.approx(expected)


class TestBinomialPmf:
    def test_matches_scipy_on_integers(self):
        n, p = 30, 0.37
        ks = np.arange(0, n + 1)
        ours = binomial_pmf(ks, n, np.full(ks.shape, p))
        ref = scipy_stats.binom.pmf(ks, n, p)
        np.testing.assert_allclose(ours, ref, rtol=1e-10, atol=1e-12)

    def test_sums_to_one(self):
        n, p = 25, 0.2
        ks = np.arange(0, n + 1)
        assert binomial_pmf(ks, n, np.full(ks.shape, p)).sum() == pytest.approx(1.0)

    def test_outside_support_is_zero(self):
        assert binomial_pmf(np.array([-1.0]), 10, np.array([0.5]))[0] == 0.0
        assert binomial_pmf(np.array([11.0]), 10, np.array([0.5]))[0] == 0.0

    def test_degenerate_probabilities(self):
        assert binomial_pmf(
            np.array([0.0]),
            10,
            np.array([0.0]),
        )[0] == pytest.approx(1.0)
        assert binomial_pmf(np.array([3.0]), 10, np.array([0.0]))[0] == 0.0
        assert binomial_pmf(
            np.array([10.0]),
            10,
            np.array([1.0]),
        )[0] == pytest.approx(1.0)
        assert binomial_pmf(np.array([9.0]), 10, np.array([1.0]))[0] == 0.0

    def test_log_pmf_no_nans(self):
        ks = np.array([0.0, 5.0, 10.0])
        ps = np.array([0.0, 0.5, 1.0])
        out = binomial_log_pmf(ks, 10, ps)
        assert not np.any(np.isnan(out))

    def test_non_integer_k_between_neighbors(self):
        # The Gamma generalisation should interpolate smoothly.
        n, p = 20, 0.4
        val = binomial_pmf(np.array([7.5]), n, np.array([p]))[0]
        lo = scipy_stats.binom.pmf(7, n, p)
        hi = scipy_stats.binom.pmf(8, n, p)
        assert min(lo, hi) * 0.5 < val < max(lo, hi) * 1.5


class TestBinomialMode:
    def test_matches_argmax_of_pmf(self):
        for n, p in [(20, 0.3), (50, 0.71), (7, 0.5), (10, 0.05)]:
            ks = np.arange(0, n + 1)
            pmf = scipy_stats.binom.pmf(ks, n, p)
            expected_mode = ks[np.argmax(pmf)]
            ours = binomial_mode(n, np.array([p]))[0]
            # Mode ties can differ by one; the pmf values must match.
            assert scipy_stats.binom.pmf(ours, n, p) == pytest.approx(
                scipy_stats.binom.pmf(expected_mode, n, p), rel=1e-9
            )

    def test_clipped_to_support(self):
        assert binomial_mode(10, np.array([1.0]))[0] == 10.0
        assert binomial_mode(10, np.array([0.0]))[0] == 0.0
