"""Tests for :mod:`repro.core.detector`."""

import numpy as np
import pytest

from repro.core.detector import LADDetector
from repro.core.thresholds import ThresholdTable


class TestLADDetectorBasics:
    def test_untrained_detector_refuses_to_detect(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff")
        assert not detector.is_trained
        with pytest.raises(RuntimeError):
            detector.detect([250.0, 250.0], np.zeros(small_knowledge.n_groups))

    def test_manual_threshold(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff", threshold=10.0)
        assert detector.is_trained
        assert detector.threshold == 10.0
        detector.threshold = 20.0
        assert detector.threshold == 20.0

    def test_train_sets_percentile_threshold(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff")
        thr = detector.train(np.arange(100, dtype=float), tau=0.9)
        assert thr == pytest.approx(89.1, abs=0.5)

    def test_from_threshold_table(self, small_knowledge):
        table = ThresholdTable()
        table.add_metric("diff", np.arange(50, dtype=float))
        detector = LADDetector.from_threshold_table(
            small_knowledge,
            table,
            metric="diff",
            tau=1.0,
        )
        assert detector.threshold == 49.0


class TestDetectionDecisions:
    def test_consistent_location_not_flagged(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff", threshold=30.0)
        location = np.array([250.0, 250.0])
        observation = small_knowledge.expected_observation(location[None, :])[0]
        report = detector.detect(location, observation)
        assert not report.anomalous
        assert report.score == pytest.approx(0.0, abs=1e-6)
        assert report.metric == "diff"

    def test_displaced_location_flagged(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff", threshold=30.0)
        true_location = np.array([250.0, 250.0])
        observation = small_knowledge.expected_observation(true_location[None, :])[0]
        spoofed = true_location + np.array([150.0, 0.0])
        report = detector.detect(spoofed, observation)
        assert report.anomalous
        assert report.score > report.threshold

    def test_detect_batch(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="diff", threshold=30.0)
        true_location = np.array([250.0, 250.0])
        observation = small_knowledge.expected_observation(true_location[None, :])[0]
        locations = np.array([[250.0, 250.0], [420.0, 250.0]])
        alarms = detector.detect_batch(locations, np.vstack([observation, observation]))
        assert alarms.tolist() == [False, True]

    def test_probability_metric_detector(self, small_knowledge):
        detector = LADDetector(small_knowledge, metric="probability", threshold=50.0)
        location = np.array([250.0, 250.0])
        observation = small_knowledge.expected_observation(location[None, :])[0]
        assert not detector.detect(location, observation).anomalous
        far = location + np.array([200.0, 0.0])
        assert detector.detect(far, observation).anomalous

    def test_from_training_data_end_to_end(self, small_generator, small_knowledge):
        from repro.core.training import collect_training_data

        training = collect_training_data(
            small_generator, num_samples=30, samples_per_network=15, rng=5
        )
        detector = LADDetector.from_training_data(
            small_knowledge, training, metric="diff", tau=0.95
        )
        assert detector.is_trained
        # Roughly 5% of the training samples themselves exceed the threshold.
        scores = detector.score(
            training.estimated_locations, training.observations
        )
        fp = float(np.mean(np.asarray(scores) > detector.threshold))
        assert fp <= 0.15
