"""Tests for :mod:`repro.core.expected`."""

import numpy as np

from repro.core.expected import expected_observation, membership_probabilities


class TestExpectedObservation:
    def test_matches_knowledge_methods(self, small_knowledge):
        locs = np.array([[100.0, 200.0], [333.0, 111.0]])
        np.testing.assert_allclose(
            expected_observation(small_knowledge, locs),
            small_knowledge.expected_observation(locs),
        )
        np.testing.assert_allclose(
            membership_probabilities(small_knowledge, locs),
            small_knowledge.membership_probabilities(locs),
        )

    def test_equation_2_relationship(self, small_knowledge):
        locs = np.array([[250.0, 250.0]])
        mu = expected_observation(small_knowledge, locs)
        g = membership_probabilities(small_knowledge, locs)
        np.testing.assert_allclose(mu, small_knowledge.group_size * g)

    def test_probabilities_decay_with_distance(self, small_knowledge):
        """g_i(θ) decreases as θ moves away from deployment point i."""
        target_group = 0
        dp = small_knowledge.deployment_points[target_group]
        offsets = [0.0, 50.0, 150.0, 300.0]
        values = [
            membership_probabilities(
                small_knowledge,
                (dp + [off, 0.0])[None, :],
            )[0, target_group]
            for off in offsets
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
