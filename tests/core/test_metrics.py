"""Tests for :mod:`repro.core.metrics` (the Diff, Add-all and Probability metrics)."""

import numpy as np
import pytest

from repro.core.metrics import (
    ALL_METRICS,
    METRICS,
    AddAllMetric,
    DiffMetric,
    ProbabilityMetric,
    resolve_metric,
)

M = 30  # group size used in the tests


@pytest.fixture()
def vectors():
    obs = np.array([3.0, 0.0, 7.0, 12.0])
    exp = np.array([5.0, 1.0, 7.0, 9.0])
    return obs, exp


class TestDiffMetric:
    def test_formula(self, vectors):
        obs, exp = vectors
        assert DiffMetric().compute(obs, exp) == pytest.approx(2 + 1 + 0 + 3)

    def test_zero_when_identical(self, vectors):
        obs, _ = vectors
        assert DiffMetric().compute(obs, obs) == 0.0

    def test_symmetric_in_arguments(self, vectors):
        obs, exp = vectors
        assert DiffMetric().compute(obs, exp) == DiffMetric().compute(exp, obs)

    def test_batch_and_broadcast(self, vectors):
        obs, exp = vectors
        batch = DiffMetric().compute(np.vstack([obs, exp]), exp)
        assert batch.shape == (2,)
        assert batch[0] == pytest.approx(6.0)
        assert batch[1] == pytest.approx(0.0)

    def test_grows_with_displacement(self, small_knowledge):
        """The farther the claimed location from the true one, the larger the
        expected Diff metric — the paper's key intuition (Section 5)."""
        true_loc = np.array([250.0, 250.0])
        obs = small_knowledge.expected_observation(true_loc[None, :])[0]
        scores = []
        for offset in (0.0, 40.0, 80.0, 160.0):
            claimed = true_loc + np.array([offset, 0.0])
            scores.append(
                float(DiffMetric().score(small_knowledge, claimed[None, :], obs))
            )
        assert all(a <= b + 1e-9 for a, b in zip(scores, scores[1:]))
        assert scores[0] == pytest.approx(0.0, abs=1e-6)


class TestAddAllMetric:
    def test_formula(self, vectors):
        obs, exp = vectors
        assert AddAllMetric().compute(obs, exp) == pytest.approx(5 + 1 + 7 + 12)

    def test_equals_total_when_identical(self, vectors):
        obs, _ = vectors
        assert AddAllMetric().compute(obs, obs) == pytest.approx(obs.sum())

    def test_at_least_max_of_totals(self, vectors):
        obs, exp = vectors
        value = AddAllMetric().compute(obs, exp)
        assert value >= max(obs.sum(), exp.sum())

    def test_grows_with_displacement(self, small_knowledge):
        true_loc = np.array([250.0, 250.0])
        obs = small_knowledge.expected_observation(true_loc[None, :])[0]
        near = AddAllMetric().score(small_knowledge, [[255.0, 250.0]], obs)
        far = AddAllMetric().score(small_knowledge, [[420.0, 250.0]], obs)
        assert far > near


class TestProbabilityMetric:
    def test_requires_group_size(self, vectors):
        obs, exp = vectors
        with pytest.raises(ValueError):
            ProbabilityMetric().compute(obs, exp)

    def test_score_is_neg_log_of_min_probability(self, vectors):
        obs, exp = vectors
        metric = ProbabilityMetric()
        score = metric.compute(obs, exp, group_size=M)
        min_prob = metric.min_probability(obs, exp, group_size=M)
        assert score == pytest.approx(-np.log(min_prob))

    def test_most_likely_observation_has_low_score(self):
        metric = ProbabilityMetric()
        exp = np.array([6.0, 3.0, 15.0])
        score_at_mode = metric.compute(exp, exp, group_size=M)
        score_far = metric.compute(exp + np.array([0.0, 0.0, 14.0]), exp, group_size=M)
        assert score_at_mode < score_far

    def test_impossible_observation_clipped(self):
        metric = ProbabilityMetric()
        # Claimed location implies probability ~0 for a group the node heard.
        obs = np.array([5.0])
        exp = np.array([0.0])
        score = metric.compute(obs, exp, group_size=M)
        assert score == pytest.approx(metric.max_score)

    def test_batch_shape(self, vectors):
        obs, exp = vectors
        out = ProbabilityMetric().compute(np.vstack([obs, obs]), exp, group_size=M)
        assert out.shape == (2,)

    def test_monotone_transform_preserves_ordering(self, vectors):
        """Thresholding -log(min p) is equivalent to thresholding min p, so
        orderings must be exactly reversed."""
        rng = np.random.default_rng(0)
        metric = ProbabilityMetric()
        obs, exp = vectors
        samples = [
            np.clip(obs + rng.integers(-3, 4, size=obs.size), 0, M)
            for _ in range(20)
        ]
        scores = np.array([metric.compute(s, exp, group_size=M) for s in samples])
        probs = np.array(
            [metric.min_probability(s, exp, group_size=M) for s in samples]
        )
        # Pairwise consistency (allowing ties): a strictly larger score must
        # correspond to a smaller-or-equal minimum probability.
        for i in range(len(samples)):
            for j in range(len(samples)):
                if scores[i] > scores[j] + 1e-12:
                    assert probs[i] <= probs[j] + 1e-15


class TestMetricRegistry:
    def test_all_metrics_listed(self):
        names = {m.name for m in ALL_METRICS}
        assert names == {"diff", "add_all", "probability"}

    def test_lookup_by_name_and_alias(self):
        assert isinstance(resolve_metric("diff"), DiffMetric)
        assert isinstance(resolve_metric("Add-All"), AddAllMetric)
        assert isinstance(resolve_metric("PM"), ProbabilityMetric)
        assert isinstance(resolve_metric("difference"), DiffMetric)

    def test_registry_introspection(self):
        assert METRICS.available() == ["add_all", "diff", "probability"]
        assert "dm" in METRICS
        assert METRICS.canonical("Add-All") == "add_all"

    def test_instance_passthrough(self):
        metric = DiffMetric()
        assert resolve_metric(metric) is metric

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_metric("entropy")

    def test_get_metric_shim_removed(self):
        import repro.core.metrics as metrics_module

        assert not hasattr(metrics_module, "get_metric")

    def test_shape_mismatch_rejected(self, vectors):
        obs, exp = vectors
        with pytest.raises(ValueError):
            DiffMetric().compute(obs, exp[:2])

    def test_paper_names(self):
        assert resolve_metric("diff").paper_name == "Diff Metric"
        assert resolve_metric("add_all").paper_name == "Add All Metric"
        assert resolve_metric("probability").paper_name == "Probability Metric"
