"""Tests for :mod:`repro.core.evaluation` (the Section 7.1 procedure)."""

import numpy as np
import pytest

from repro.core.evaluation import (
    attacked_scores_for_victims,
    attacked_scores_from_observations,
    detection_rate_at_false_positive,
    evaluate_detection,
)


@pytest.fixture(scope="module")
def victim_sample():
    """Honest observations for a fixed set of victims of the small network."""
    return {"nodes": np.arange(0, 600, 10)}


class TestAttackedScores:
    def test_scores_shape_and_positivity(
        self,
        small_network,
        small_knowledge,
        small_index,
    ):
        victims = np.arange(0, 100, 5)
        scores = attacked_scores_for_victims(
            small_network,
            small_knowledge,
            victims,
            metric="diff",
            degree_of_damage=100.0,
            compromised_fraction=0.1,
            index=small_index,
            rng=0,
        )
        assert scores.shape == (victims.size,)
        assert np.all(scores >= 0.0)

    def test_larger_damage_gives_larger_scores(
        self,
        small_network,
        small_knowledge,
        small_index,
    ):
        victims = np.arange(0, 300, 5)
        means = []
        for degree in (20.0, 80.0, 160.0):
            scores = attacked_scores_for_victims(
                small_network,
                small_knowledge,
                victims,
                metric="diff",
                degree_of_damage=degree,
                compromised_fraction=0.1,
                index=small_index,
                rng=1,
            )
            means.append(scores.mean())
        assert means[0] < means[1] < means[2]

    def test_more_compromise_gives_smaller_scores(
        self,
        small_network,
        small_knowledge,
        small_index,
    ):
        victims = np.arange(0, 300, 5)
        means = []
        for fraction in (0.0, 0.2, 0.5):
            scores = attacked_scores_for_victims(
                small_network,
                small_knowledge,
                victims,
                metric="diff",
                degree_of_damage=100.0,
                compromised_fraction=fraction,
                index=small_index,
                rng=2,
            )
            means.append(scores.mean())
        assert means[0] > means[1] > means[2]

    def test_dec_only_scores_at_least_dec_bounded(
        self,
        small_network,
        small_knowledge,
        small_index,
    ):
        """The Dec-Bounded adversary is stronger, so it achieves lower
        (harder to detect) scores on average."""
        victims = np.arange(0, 300, 5)
        kwargs = dict(
            metric="diff",
            degree_of_damage=60.0,
            compromised_fraction=0.2,
            index=small_index,
        )
        bounded = attacked_scores_for_victims(
            small_network,
            small_knowledge,
            victims,
            attack_class="dec_bounded",
            rng=3,
            **kwargs,
        )
        only = attacked_scores_for_victims(
            small_network,
            small_knowledge,
            victims,
            attack_class="dec_only",
            rng=3,
            **kwargs,
        )
        assert bounded.mean() < only.mean()

    def test_from_observations_matches_manual_pipeline(self, small_knowledge):
        """The helper applied to hand-built observations is deterministic
        given a seed and respects the attack constraints."""
        rng = np.random.default_rng(4)
        actual = np.array([[200.0, 200.0], [300.0, 150.0]])
        honest = small_knowledge.expected_observation(actual)
        a = attacked_scores_from_observations(
            small_knowledge, honest, actual, metric="diff", degree_of_damage=80.0,
            compromised_fraction=0.1, rng=11,
        )
        b = attacked_scores_from_observations(
            small_knowledge, honest, actual, metric="diff", degree_of_damage=80.0,
            compromised_fraction=0.1, rng=11,
        )
        np.testing.assert_allclose(a, b)
        assert a.shape == (2,)

    def test_shape_validation(self, small_knowledge):
        with pytest.raises(ValueError):
            attacked_scores_from_observations(
                small_knowledge,
                np.zeros((3, small_knowledge.n_groups)),
                np.zeros((2, 2)),
                metric="diff",
            )


class TestDetectionRateReadout:
    def test_fixed_fp_semantics(self):
        benign = np.arange(1000, dtype=float)
        attacked = np.full(100, 2000.0)
        dr, thr = detection_rate_at_false_positive(benign, attacked, 0.01)
        assert dr == 1.0
        assert float(np.mean(benign > thr)) <= 0.011

    def test_overlapping_distributions(self):
        rng = np.random.default_rng(0)
        benign = rng.normal(0, 1, 2000)
        attacked = rng.normal(1.0, 1, 2000)
        dr_1, _ = detection_rate_at_false_positive(benign, attacked, 0.01)
        dr_10, _ = detection_rate_at_false_positive(benign, attacked, 0.10)
        assert 0.0 < dr_1 < dr_10 < 1.0

    def test_evaluate_detection_bundle(self):
        rng = np.random.default_rng(1)
        benign = rng.normal(0, 1, 500)
        attacked = rng.normal(3, 1, 500)
        outcome = evaluate_detection(benign, attacked, false_positive_rate=0.05)
        assert outcome.false_positive_rate == 0.05
        assert 0.9 < outcome.detection_rate <= 1.0
        assert outcome.roc.auc() > 0.95
        assert outcome.benign_scores.shape == (500,)

    def test_invalid_fp_rejected(self):
        with pytest.raises(ValueError):
            detection_rate_at_false_positive(np.array([1.0]), np.array([2.0]), 1.5)
