"""Tests for :mod:`repro.core.training`."""

import numpy as np
import pytest

from repro.core.training import TrainingData, benign_scores, collect_training_data
from repro.localization.centroid import CentroidLocalizer


class TestTrainingData:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TrainingData(
                observations=np.zeros((5, 10)),
                actual_locations=np.zeros((4, 2)),
                estimated_locations=np.zeros((5, 2)),
                neighbor_counts=np.zeros(5, dtype=int),
            )

    def test_localization_errors(self):
        data = TrainingData(
            observations=np.zeros((2, 3)),
            actual_locations=np.array([[0.0, 0.0], [10.0, 10.0]]),
            estimated_locations=np.array([[3.0, 4.0], [10.0, 10.0]]),
            neighbor_counts=np.array([5, 7]),
        )
        np.testing.assert_allclose(data.localization_errors(), [5.0, 0.0])
        assert data.num_samples == 2


@pytest.fixture(scope="module")
def training(small_generator_module):
    return collect_training_data(
        small_generator_module,
        num_samples=60,
        samples_per_network=30,
        rng=7,
    )


@pytest.fixture(scope="module")
def small_generator_module():
    # Module-local copy of the session generator fixture (fixtures of
    # different scopes cannot be mixed freely), kept identical in shape.
    from repro.deployment.distributions import GaussianResidentDistribution
    from repro.deployment.models import GridDeploymentModel
    from repro.network.generator import NetworkGenerator
    from repro.network.radio import UnitDiskRadio
    from repro.types import Region
    from tests.conftest import TEST_GROUP_SIZE, TEST_RADIO_RANGE, TEST_SIGMA

    model = GridDeploymentModel(
        region=Region(0, 0, 500, 500),
        rows=5,
        cols=5,
        distribution=GaussianResidentDistribution(TEST_SIGMA),
    )
    return NetworkGenerator(
        model=model, group_size=TEST_GROUP_SIZE, radio=UnitDiskRadio(TEST_RADIO_RANGE)
    )


class TestCollectTrainingData:
    def test_sample_count_and_shapes(self, training, small_generator_module):
        assert training.num_samples == 60
        assert training.observations.shape == (
            60,
            small_generator_module.model.n_groups,
        )
        assert training.actual_locations.shape == (60, 2)
        assert training.estimated_locations.shape == (60, 2)

    def test_observation_totals_match_neighbor_counts(self, training):
        np.testing.assert_allclose(
            training.observations.sum(axis=1), training.neighbor_counts
        )

    def test_benign_localization_error_is_moderate(self, training):
        """The beaconless scheme localises benign nodes within a fraction of
        the radio range on average."""
        errors = training.localization_errors()
        assert np.median(errors) < 40.0

    def test_reproducible_with_same_seed(self, small_generator_module):
        a = collect_training_data(
            small_generator_module, num_samples=10, samples_per_network=10, rng=3
        )
        b = collect_training_data(
            small_generator_module, num_samples=10, samples_per_network=10, rng=3
        )
        np.testing.assert_allclose(a.observations, b.observations)
        np.testing.assert_allclose(a.estimated_locations, b.estimated_locations)

    def test_spans_multiple_networks(self, small_generator_module):
        data = collect_training_data(
            small_generator_module, num_samples=20, samples_per_network=5, rng=1
        )
        assert data.num_samples == 20

    def test_custom_localizer_is_used(self, small_generator_module):
        """A non-beaconless localizer goes through the generic code path."""
        from repro.localization.base import (
            LocalizationResult,
            LocalizationScheme,
        )

        class FixedLocalizer(LocalizationScheme):
            name = "fixed"

            def localize(self, context, rng=None):  # noqa: D102 - test stub
                return LocalizationResult(position=np.array([123.0, 321.0]))

        data = collect_training_data(
            small_generator_module,
            num_samples=5,
            samples_per_network=5,
            localizer=FixedLocalizer(),
            rng=2,
        )
        np.testing.assert_allclose(data.estimated_locations, [[123.0, 321.0]] * 5)

    def test_beacon_localizer_needs_beacons(self, small_generator_module):
        with pytest.raises(ValueError, match="beacon-based"):
            collect_training_data(
                small_generator_module,
                num_samples=5,
                samples_per_network=5,
                localizer=CentroidLocalizer(),
                rng=2,
            )

    @pytest.mark.parametrize("scheme", ["centroid", "mmse", "dvhop", "apit"])
    def test_beacon_localizers_train_end_to_end(
        self, small_generator_module, scheme
    ):
        from repro.localization import create
        from repro.localization.apit import ApitLocalizer
        from repro.localization.beacons import BeaconSpec
        from repro.types import Region

        region = small_generator_module.model.region
        beacons = BeaconSpec(count=9, transmit_range=400.0).build(region)
        localizer = (
            ApitLocalizer(region=Region(0, 0, 500, 500), grid_resolution=25.0)
            if scheme == "apit"
            else create(scheme)
        )
        data = collect_training_data(
            small_generator_module,
            num_samples=8,
            samples_per_network=4,
            localizer=localizer,
            beacons=beacons,
            rng=5,
        )
        assert data.estimated_locations.shape == (8, 2)
        assert np.isfinite(data.estimated_locations).all()
        # The beacon schemes are coarser than the beaconless MLE but must
        # stay within the region scale.
        assert data.localization_errors().max() < 750.0

    def test_beacon_training_reproducible_with_noise(
        self, small_generator_module
    ):
        from repro.localization.beacons import BeaconSpec
        from repro.localization.multilateration import (
            MmseMultilaterationLocalizer,
        )

        region = small_generator_module.model.region
        beacons = BeaconSpec(count=9, transmit_range=400.0).build(region)
        runs = [
            collect_training_data(
                small_generator_module,
                num_samples=6,
                samples_per_network=3,
                localizer=MmseMultilaterationLocalizer(),
                beacons=beacons,
                beacon_noise_std=3.0,
                rng=11,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].estimated_locations, runs[1].estimated_locations
        )

    def test_invalid_arguments(self, small_generator_module):
        with pytest.raises(ValueError):
            collect_training_data(small_generator_module, num_samples=0)


class TestBenignScores:
    def test_scores_per_metric(self, training, small_generator_module):
        knowledge = small_generator_module.knowledge(omega=300)
        for metric in ("diff", "add_all", "probability"):
            scores = benign_scores(training, knowledge, metric)
            assert scores.shape == (training.num_samples,)
            assert np.all(np.isfinite(scores))

    def test_benign_diff_scores_are_small_relative_to_attack(
        self,
        training,
        small_generator_module,
    ):
        """Benign Diff scores should be far below the score of a grossly
        displaced location claim."""
        knowledge = small_generator_module.knowledge(omega=300)
        scores = benign_scores(training, knowledge, "diff")
        # Score a blatantly wrong claim for the first sample.
        from repro.core.metrics import DiffMetric

        wrong_claim = np.array([[20.0, 20.0]])
        wrong_score = DiffMetric().score(
            knowledge, wrong_claim, training.observations[0]
        )
        assert np.quantile(scores, 0.95) < wrong_score
