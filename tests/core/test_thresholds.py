"""Tests for :mod:`repro.core.thresholds`."""

import numpy as np
import pytest

from repro.core.thresholds import ThresholdTable, derive_threshold


class TestDeriveThreshold:
    def test_percentile_semantics(self):
        scores = np.arange(1000, dtype=float)
        thr = derive_threshold(scores, tau=0.99)
        # About 1% of benign samples exceed the threshold.
        assert float(np.mean(scores > thr)) == pytest.approx(0.01, abs=0.002)

    def test_tau_one_is_max(self):
        scores = np.array([3.0, 9.0, 1.0])
        assert derive_threshold(scores, 1.0) == 9.0

    def test_monotone_in_tau(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=500)
        taus = [0.5, 0.9, 0.99, 0.999]
        thrs = [derive_threshold(scores, t) for t in taus]
        assert all(a <= b for a, b in zip(thrs, thrs[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            derive_threshold(np.array([]), 0.9)
        with pytest.raises(ValueError):
            derive_threshold(np.array([1.0]), 1.5)


class TestThresholdTable:
    def test_add_and_lookup(self):
        table = ThresholdTable()
        table.add_metric("diff", np.arange(100, dtype=float))
        table.add_metric("add_all", np.arange(0, 1000, 10, dtype=float))
        assert set(table.metrics()) == {"diff", "add_all"}
        assert table.threshold("diff", 0.99) == pytest.approx(98.01, abs=0.2)

    def test_threshold_for_false_positive(self):
        table = ThresholdTable()
        scores = np.arange(1000, dtype=float)
        table.add_metric("diff", scores)
        thr = table.threshold_for_false_positive("diff", 0.05)
        assert float(np.mean(scores > thr)) == pytest.approx(0.05, abs=0.005)

    def test_as_dict(self):
        table = ThresholdTable()
        table.add_metric("diff", np.array([1.0, 2.0, 3.0]))
        out = table.as_dict(tau=1.0)
        assert out == {"diff": 3.0}

    def test_missing_metric(self):
        table = ThresholdTable()
        with pytest.raises(KeyError):
            table.threshold("diff")

    def test_empty_scores_rejected(self):
        table = ThresholdTable()
        with pytest.raises(ValueError):
            table.add_metric("diff", np.array([]))
