"""Tests for :mod:`repro.core.roc`."""

import numpy as np
import pytest

from repro.core.roc import RocCurve, compute_roc


@pytest.fixture()
def separable_scores():
    rng = np.random.default_rng(0)
    benign = rng.normal(0.0, 1.0, 500)
    attacked = rng.normal(4.0, 1.0, 500)
    return benign, attacked


class TestComputeRoc:
    def test_curve_shapes(self, separable_scores):
        roc = compute_roc(*separable_scores)
        assert len(roc) == len(roc.false_positive_rates) == len(roc.detection_rates)
        assert np.all((roc.false_positive_rates >= 0) & (roc.false_positive_rates <= 1))
        assert np.all((roc.detection_rates >= 0) & (roc.detection_rates <= 1))

    def test_monotone(self, separable_scores):
        roc = compute_roc(*separable_scores)
        assert np.all(np.diff(roc.false_positive_rates) >= -1e-12)
        assert np.all(np.diff(roc.detection_rates) >= -1e-12)

    def test_num_thresholds_limits_size(self, separable_scores):
        roc = compute_roc(*separable_scores, num_thresholds=25)
        assert len(roc) <= 27

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RocCurve(
                thresholds=np.zeros(3),
                false_positive_rates=np.zeros(2),
                detection_rates=np.zeros(3),
            )


class TestRocReadouts:
    def test_detection_rate_at_fp_budget(self, separable_scores):
        roc = compute_roc(*separable_scores)
        dr_tight = roc.detection_rate_at(0.0)
        dr_loose = roc.detection_rate_at(0.20)
        assert 0.0 <= dr_tight <= dr_loose <= 1.0
        # Well separated distributions: nearly perfect detection at 20% FP.
        assert dr_loose > 0.95

    def test_detection_rate_at_full_budget_is_one(self, separable_scores):
        roc = compute_roc(*separable_scores)
        assert roc.detection_rate_at(1.0) == 1.0

    def test_invalid_budget_rejected(self, separable_scores):
        roc = compute_roc(*separable_scores)
        with pytest.raises(ValueError):
            roc.detection_rate_at(1.5)

    def test_auc_near_one_for_separable(self, separable_scores):
        roc = compute_roc(*separable_scores)
        assert roc.auc() > 0.98

    def test_auc_near_half_for_identical_distributions(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=2000)
        roc = compute_roc(scores, rng.normal(size=2000))
        assert roc.auc() == pytest.approx(0.5, abs=0.05)

    def test_auc_anchors_at_origin_without_fp_zero_point(self):
        """Regression: a curve that never reaches FP = 0 must be anchored at
        (0, 0), not at (0, dr[0]) which over-credits the area."""
        roc = RocCurve(
            thresholds=np.array([1.0, 2.0]),
            false_positive_rates=np.array([0.2, 0.1]),
            detection_rates=np.array([0.9, 0.8]),
        )
        # (0,0) -> (0.1,0.8) -> (0.2,0.9) -> (1,1): 0.04 + 0.085 + 0.76
        assert roc.auc() == pytest.approx(0.885)

    def test_auc_keeps_measured_fp_zero_anchor(self):
        roc = RocCurve(
            thresholds=np.array([1.0, 2.0]),
            false_positive_rates=np.array([0.0, 0.5]),
            detection_rates=np.array([0.6, 1.0]),
        )
        # (0,0.6) -> (0.5,1.0) -> (1,1): 0.4 + 0.5
        assert roc.auc() == pytest.approx(0.9)

    def test_as_series_round_trip(self, separable_scores):
        roc = compute_roc(*separable_scores, num_thresholds=10)
        data = roc.as_series()
        assert set(data) == {"false_positive_rates", "detection_rates", "thresholds"}
        assert len(data["false_positive_rates"]) == len(roc)
