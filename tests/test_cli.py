"""Tests for :mod:`repro.cli`."""

import json

import pytest

from repro.cli import build_parser, main

TINY_SPEC = """\
name = "cli_tiny"
metrics = ["diff"]
attacks = ["dec_bounded"]
degrees = [80.0, 160.0]
fractions = [0.1]
false_positive_rate = 0.05

[config]
group_size = 40
num_training_samples = 30
training_samples_per_network = 15
num_victims = 30
victims_per_network = 15
gz_omega = 300
seed = 777
"""


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_arguments(self):
        args = build_parser().parse_args(
            ["figure", "fig7", "--scale", "0.1", "--group-size", "50"]
        )
        assert args.figure_id == "fig7"
        assert args.scale == 0.1
        assert args.group_size == 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_every_subcommand_binds_a_handler(self):
        """Dispatch runs through the handler table: each sub-parser sets
        ``func``, so ``main`` never falls through to a dead branch."""
        parser = build_parser()
        for argv in (
            ["figure", "fig4"],
            ["sweep", "spec.toml"],
            ["serve", "spec.toml"],
            ["loadgen", "spec.toml"],
            ["demo"],
            ["gz-table"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func), argv


class TestCommands:
    def test_gz_table_command(self, capsys):
        code = main(
            ["gz-table", "--radio-range", "80", "--sigma", "40", "--omega", "200"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "g(z) table" in out
        assert "max abs table error" in out

    def test_demo_command_small(self, capsys):
        code = main(
            [
                "demo",
                "--group-size",
                "40",
                "--victims",
                "30",
                "--degree",
                "160",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection rate @ 1% FP" in out

    def test_figure_command_writes_outputs(self, capsys, tmp_path):
        json_path = tmp_path / "fig7.json"
        csv_path = tmp_path / "fig7.csv"
        code = main(
            [
                "--verbose",
                "figure",
                "fig7",
                "--scale",
                "0.05",
                "--group-size",
                "40",
                "--seed",
                "11",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        data = json.loads(json_path.read_text())
        assert data["figure_id"] == "fig7"
        out = capsys.readouterr().out
        assert "Detection rate vs degree of damage" in out


class TestSweepCommand:
    def test_sweep_streams_results_and_writes_outputs(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "sweep",
                str(spec_path),
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'cli_tiny': 2 point(s)" in out
        assert "[2/2]" in out
        payload = json.loads(json_path.read_text())
        assert payload["spec"]["name"] == "cli_tiny"
        assert len(payload["results"]) == 2
        assert {row["degree_of_damage"] for row in payload["results"]} == {
            80.0,
            160.0,
        }
        assert csv_path.read_text().startswith("group_size,")

    def test_sweep_cache_dir_warm_run_hits(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert "cache: 0 hit(s)" in cold
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert ", 0 miss(es)" in warm

        def rows(text):
            return [
                line for line in text.splitlines() if line.strip().startswith("40 ")
            ]

        assert rows(cold) == rows(warm)

    def test_sweep_rejects_bad_spec(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('metrics = ["entropy"]\n')
        with pytest.raises(ValueError, match="unknown metric"):
            main(["sweep", str(bad)])

    def test_sweep_localizer_override_and_beacon_flags(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        code = main(
            [
                "sweep",
                str(spec_path),
                "--localizer",
                "centroid",
                "--beacon-count",
                "9",
                "--beacon-layout",
                "grid",
                "--beacon-range",
                "450",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 localizer(s) [centroid]" in out
        assert " centroid " in out

    def test_sweep_localizer_axis_spec(self, capsys, tmp_path):
        spec_path = tmp_path / "multi.toml"
        spec_path.write_text(
            TINY_SPEC.replace(
                'false_positive_rate = 0.05',
                'localizers = ["beaconless", "mmse"]\n'
                'false_positive_rate = 0.05',
            )
        )
        json_path = tmp_path / "out.json"
        assert main(["sweep", str(spec_path), "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "2 localizer(s) [beaconless, mmse]" in out
        assert "[4/4]" in out
        payload = json.loads(json_path.read_text())
        assert {row["localizer"] for row in payload["results"]} == {
            "beaconless",
            "mmse",
        }


TEMPORAL_SPEC = (
    TINY_SPEC.replace('name = "cli_tiny"', 'name = "cli_temporal"').replace(
        "degrees = [80.0, 160.0]", "degrees = [120.0]"
    )
    + """
[timeline]
epochs = 6

[[timeline.events]]
kind = "attack"
action = "on"
at = [3.0]
"""
)


class TestTemporalCli:
    def test_figt_is_a_registered_figure_choice(self):
        args = build_parser().parse_args(["figure", "figt"])
        assert args.figure_id == "figt"

    def test_timeline_flags_parse_on_figure_and_sweep(self):
        for command in (["figure", "figt"], ["sweep", "spec.toml"]):
            args = build_parser().parse_args(
                [
                    *command,
                    "--epochs",
                    "6",
                    "--epoch-duration",
                    "0.5",
                    "--attack-epoch",
                    "2",
                ]
            )
            assert args.epochs == 6
            assert args.epoch_duration == 0.5
            assert args.attack_epoch == 2.0

    def test_sweep_with_timeline_reports_online_metrics(self, capsys, tmp_path):
        spec_path = tmp_path / "temporal.toml"
        spec_path.write_text(TEMPORAL_SPEC)
        json_path = tmp_path / "out.json"
        assert main(["sweep", str(spec_path), "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "timeline: 6 epoch(s)" in out
        assert "latency=3" in out
        payload = json.loads(json_path.read_text())
        row = payload["temporal"][0]
        assert row["detection_latency"] == 3
        assert len(row["detection_rates"]) == 6
        assert payload["spec"]["timeline"]["epochs"] == 6

    def test_sweep_temporal_cache_cold_then_warm_identical(self, capsys, tmp_path):
        spec_path = tmp_path / "temporal.toml"
        spec_path.write_text(TEMPORAL_SPEC)
        cache = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert "temporal outcomes for 0/1 point(s) served from cache" in cold
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert ", 0 miss(es)" in warm
        assert "temporal outcomes for 1/1 point(s) served from cache" in warm

        def rows(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith(("cache:", "scenario", "timeline"))
            ]

        assert rows(cold) == rows(warm)

    def test_attack_epoch_flag_builds_a_timeline(self, capsys, tmp_path):
        """--attack-epoch turns a static spec temporal (enough epochs to
        observe the latency, attack events replaced by one switch-on)."""
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        json_path = tmp_path / "out.json"
        code = main(
            [
                "sweep",
                str(spec_path),
                "--attack-epoch",
                "2",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        timeline = payload["spec"]["timeline"]
        assert timeline["epochs"] == 6  # ceil(2/1) + 4
        assert timeline["events"][0]["at"] == [2.0]
        assert all(row["detection_latency"] == 2 for row in payload["temporal"])


class TestBackendsCommand:
    def test_backends_lists_and_probes(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "torch" in out
        assert "aliases: np" in out
        # The numpy reference is always available; torch's probe must
        # report *something* rather than crash when it is absent.
        assert "bit-exact reference" in out

    def test_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "spec.toml", "--backend", "numpy", "--backend-device", "cpu"]
        )
        assert args.backend == "numpy"
        assert args.backend_device == "cpu"
        args = build_parser().parse_args(["figure", "fig7", "--backend", "np"])
        assert args.backend == "np"

    def test_sweep_backend_numpy_aliases_backendless_cache(
        self, capsys, tmp_path
    ):
        """`--backend numpy` must fully reuse a cache written without any
        backend selection (the numpy-exact aliasing contract, CLI level)."""
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert main(
            [
                "sweep",
                str(spec_path),
                "--cache-dir",
                str(cache),
                "--backend",
                "numpy",
            ]
        ) == 0
        warm = capsys.readouterr().out
        assert ", 0 miss(es)" in warm

        def rows(text):
            return [
                line for line in text.splitlines() if line.strip().startswith("40 ")
            ]

        assert rows(cold) == rows(warm)

    def test_unknown_backend_rejected(self, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        with pytest.raises(ValueError, match="unknown backend"):
            main(["sweep", str(spec_path), "--backend", "fortran"])


class TestServingCli:
    def test_serve_and_loadgen_share_parent_flags(self):
        """The service-source and micro-batching flag groups come from
        shared parent parsers, so both subcommands accept them all."""
        parser = build_parser()
        shared = [
            "spec.toml",
            "--metric",
            "diff",
            "--metric",
            "add_all",
            "--fp-rate",
            "0.02",
            "--group-size",
            "50",
            "--max-batch-size",
            "16",
            "--max-wait-ms",
            "1.5",
            "--queue-size",
            "64",
            "--overflow",
            "block",
            "--retry-after-ms",
            "33",
            "--warm",
        ]
        for command in ("serve", "loadgen"):
            args = parser.parse_args([command, *shared])
            assert args.metric == ["diff", "add_all"]
            assert args.fp_rate == 0.02
            assert args.group_size == 50
            assert args.max_batch_size == 16
            assert args.max_wait_ms == 1.5
            assert args.queue_size == 64
            assert args.overflow == "block"
            assert args.retry_after_ms == 33.0
            assert args.warm

    def test_serve_specific_flags(self):
        args = build_parser().parse_args(
            ["serve", "spec.toml", "--port", "0", "--host", "0.0.0.0"]
        )
        assert args.port == 0
        assert args.host == "0.0.0.0"
        # Default transport is stdin (no port).
        assert build_parser().parse_args(["serve", "spec.toml"]).port is None

    def test_loadgen_in_process_smoke(self, capsys, tmp_path):
        """`loadgen` against an in-process runtime reports latency
        percentiles, throughput, and runtime batching stats."""
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        json_path = tmp_path / "load.json"
        code = main(
            [
                "loadgen",
                str(spec_path),
                "--claims",
                "60",
                "--max-wait-ms",
                "1",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "60/60 verdicts" in out
        assert "p50" in out and "p99" in out
        payload = json.loads(json_path.read_text())
        assert payload["report"]["completed"] == 60
        assert payload["report"]["p99_ms"] >= payload["report"]["p50_ms"]
        assert payload["runtime"]["completed"] == 60

    def test_serve_stdio_round_trip(self, capsys, tmp_path, monkeypatch):
        """`serve` without --port answers JSONL claims from stdin."""
        import io

        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        requests = "\n".join(
            [
                json.dumps({"id": "good", "observation": [0.0] * 100}),
                json.dumps({"id": "short", "observation": [1.0]}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(requests + "\n"))
        code = main(["serve", str(spec_path), "--group-size", "40"])
        assert code == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        by_id = {response["id"]: response for response in responses}
        assert by_id["good"]["decision"] in ("accept", "flag")
        assert "group" in by_id["short"]["error"]

    def test_loadgen_rejects_bad_connect_address(self, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        with pytest.raises(ValueError, match="HOST:PORT"):
            main(["loadgen", str(spec_path), "--connect", "nocolon"])


class TestSweepFiguresMode:
    ARGS = ["--scale", "0.05", "--group-size", "40", "--seed", "11"]

    def test_figures_mode_matches_figure_driver(self, capsys, tmp_path):
        """`sweep --figures fig7 --json` must emit exactly the series the
        `figure fig7` driver emits (same config, same seed)."""
        fig_json = tmp_path / "figure.json"
        sweep_json = tmp_path / "sweep.json"
        sweep_csv = tmp_path / "sweep.csv"
        assert main(["figure", "fig7", *self.ARGS, "--json", str(fig_json)]) == 0
        assert (
            main(
                [
                    "sweep",
                    "--figures",
                    "fig7",
                    *self.ARGS,
                    "--json",
                    str(sweep_json),
                    "--csv",
                    str(sweep_csv),
                ]
            )
            == 0
        )
        assert json.loads(fig_json.read_text()) == json.loads(
            sweep_json.read_text()
        )
        assert sweep_csv.read_text().startswith("figure,panel,series,")
        out = capsys.readouterr().out
        assert "Detection rate vs degree of damage" in out

    def test_figures_mode_accepts_figure_shaped_spec_file(
        self, capsys, tmp_path
    ):
        """A spec file whose name matches a registered figure renders
        through the same per-figure presentation."""
        from repro.experiments.config import SimulationConfig
        from repro.experiments.figures import fig7

        spec = fig7.spec(
            SimulationConfig(group_size=40, seed=11), scale=0.05, degrees=(160.0,)
        )
        spec_path = tmp_path / "custom_fig7.toml"
        spec.to_file(spec_path)
        assert main(["sweep", "--figures", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "DR-D-x" in out

    def test_figures_mode_rejects_unknown_id(self):
        with pytest.raises(ValueError, match="neither a spec file"):
            main(["sweep", "--figures", "fig99"])

    def test_figure_localizer_override_matches_sweep_figures(
        self, capsys, tmp_path
    ):
        """`figure fig7 --localizer centroid` equals the sweep --figures
        route with the same override (both paths fold the flags in)."""
        flags = [*self.ARGS, "--localizer", "centroid", "--beacon-count", "9"]
        fig_json = tmp_path / "figure.json"
        sweep_json = tmp_path / "sweep.json"
        assert main(["figure", "fig7", *flags, "--json", str(fig_json)]) == 0
        assert (
            main(
                ["sweep", "--figures", "fig7", *flags, "--json", str(sweep_json)]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(fig_json.read_text()) == json.loads(
            sweep_json.read_text()
        )

    def test_figl_figure_runs_from_cli(self, capsys, tmp_path):
        json_path = tmp_path / "figl.json"
        code = main(
            [
                "figure",
                "figl",
                "--scale",
                "0.05",
                "--group-size",
                "40",
                "--seed",
                "11",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data["figure_id"] == "figl"
        labels = [s["label"] for s in data["panels"][0]["series"]]
        assert labels == ["beaconless", "centroid", "mmse", "dvhop", "apit"]
        out = capsys.readouterr().out
        assert "per localization scheme" in out

    def test_figm_figure_runs_from_cli(self, capsys, tmp_path):
        json_path = tmp_path / "figm.json"
        code = main(
            [
                "figure",
                "figm",
                "--scale",
                "0.05",
                "--group-size",
                "40",
                "--seed",
                "11",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data["figure_id"] == "figm"
        assert [p["title"] for p in data["panels"]] == [
            "attack=dec_bounded",
            "attack=rssi_amp",
            "attack=tdoa_skew",
        ]
        labels = [s["label"] for s in data["panels"][0]["series"]]
        assert labels == [
            "beaconless",
            "centroid",
            "mmse",
            "dvhop",
            "apit",
            "rssi",
            "tdoa",
        ]
        out = capsys.readouterr().out
        assert "robustness matrix" in out

    def test_figures_mode_cache_dir_round_trip(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = ["sweep", "--figures", "fig7", *self.ARGS]
        assert main([*args, "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert main([*args, "--cache-dir", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert ", 0 miss(es)" in warm
        assert "served from cache" in warm

        def series(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith(("cache:", "[written]"))
            ]

        assert series(cold) == series(warm)
