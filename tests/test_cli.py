"""Tests for :mod:`repro.cli`."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_arguments(self):
        args = build_parser().parse_args(
            ["figure", "fig7", "--scale", "0.1", "--group-size", "50"]
        )
        assert args.figure_id == "fig7"
        assert args.scale == 0.1
        assert args.group_size == 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_gz_table_command(self, capsys):
        code = main(
            ["gz-table", "--radio-range", "80", "--sigma", "40", "--omega", "200"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "g(z) table" in out
        assert "max abs table error" in out

    def test_demo_command_small(self, capsys):
        code = main(
            [
                "demo",
                "--group-size",
                "40",
                "--victims",
                "30",
                "--degree",
                "160",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection rate @ 1% FP" in out

    def test_figure_command_writes_outputs(self, capsys, tmp_path):
        json_path = tmp_path / "fig7.json"
        csv_path = tmp_path / "fig7.csv"
        code = main(
            [
                "--verbose",
                "figure",
                "fig7",
                "--scale",
                "0.05",
                "--group-size",
                "40",
                "--seed",
                "11",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        data = json.loads(json_path.read_text())
        assert data["figure_id"] == "fig7"
        out = capsys.readouterr().out
        assert "Detection rate vs degree of damage" in out
