"""Unit tests of the array-backend seam (:mod:`repro.backend`).

The numpy backend is the bit-exact reference: its operations are pinned
against brute-force numpy formulations (per-segment ``np.argmax`` loops,
``binomial_log_pmf`` row sums, ``np.linalg.solve``).  The spec tests pin
the declarative surface — registry names, ``[backend]`` TOML round trips,
the dense-fallback knob — and the torch tests probe availability without
requiring the optional dependency.
"""

import pickle

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    ArrayBackend,
    BackendSpec,
    NumpyBackend,
    TorchBackend,
    default_backend,
    resolve_backend,
)
from repro.utils.stats import binomial_log_coefficient, binomial_log_pmf


@pytest.fixture(scope="module")
def backend() -> NumpyBackend:
    return NumpyBackend()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "numpy" in BACKENDS.available()
        assert "torch" in BACKENDS.available()

    def test_aliases_resolve(self):
        assert BACKENDS.get("np") is NumpyBackend
        assert BACKENDS.get("pytorch") is TorchBackend
        assert BACKENDS.canonical("np") == "numpy"

    def test_create_instantiates(self):
        assert isinstance(BACKENDS.create("numpy"), NumpyBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BACKENDS.get("fortran")


class TestBackendSpec:
    def test_defaults(self):
        spec = BackendSpec()
        assert spec.name == "numpy"
        assert spec.device == "auto"
        assert spec.dtype == "float64"
        assert spec.dense_fallback_fraction is None

    def test_name_canonicalised(self):
        assert BackendSpec(name="np").name == "numpy"
        assert BackendSpec(name="PyTorch").name == "torch"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BackendSpec(name="fortran")

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            BackendSpec(dtype="float16")

    def test_bad_fraction_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="dense_fallback_fraction"):
                BackendSpec(dense_fallback_fraction=bad)

    def test_dict_round_trip(self):
        for spec in (
            BackendSpec(),
            BackendSpec(name="torch", device="cuda", dtype="float32"),
            BackendSpec(dense_fallback_fraction=0.25),
        ):
            assert BackendSpec.from_dict(spec.as_dict()) == spec

    def test_as_dict_omits_unset_fraction(self):
        assert "dense_fallback_fraction" not in BackendSpec().as_dict()

    def test_from_dict_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown backend field"):
            BackendSpec.from_dict({"name": "numpy", "devize": "cpu"})

    def test_build_applies_fraction_override(self):
        backend = BackendSpec(dense_fallback_fraction=0.25).build()
        assert isinstance(backend, NumpyBackend)
        assert backend.dense_fallback_fraction == 0.25

    def test_with_device(self):
        assert BackendSpec().with_device("cpu").device == "cpu"


class TestResolution:
    def test_default_backend_is_shared_singleton(self):
        assert default_backend() is default_backend()
        assert isinstance(default_backend(), NumpyBackend)

    def test_resolve_none_name_spec_and_instance(self, backend):
        assert resolve_backend(None) is default_backend()
        assert isinstance(resolve_backend("np"), NumpyBackend)
        assert isinstance(resolve_backend(BackendSpec()), NumpyBackend)
        assert resolve_backend(backend) is backend

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_backend_instances_pickle(self, backend):
        clone = pickle.loads(pickle.dumps(backend))
        assert isinstance(clone, NumpyBackend)
        assert clone.dense_fallback_fraction == backend.dense_fallback_fraction


class TestNumpyBackendIdentity:
    def test_numpy_exact_fingerprint_is_none(self, backend):
        assert backend.numpy_exact
        assert backend.fingerprint() is None

    def test_non_exact_fingerprint_carries_identity(self):
        class Shadow(NumpyBackend):
            numpy_exact = False

        fingerprint = Shadow().fingerprint()
        assert fingerprint == {
            "name": "numpy",
            "device": "cpu",
            "dtype": "float64",
        }

    def test_availability(self):
        assert NumpyBackend.is_available()
        assert "available" in NumpyBackend.availability()

    def test_rejects_cuda_and_float32(self):
        with pytest.raises(ValueError, match="CPU only"):
            NumpyBackend(device="cuda")
        with pytest.raises(ValueError, match="bit-exact float64"):
            NumpyBackend(dtype="float32")


class TestNumpyBackendOps:
    def test_binomial_loglik_matches_reference_expression(self, backend, rng):
        obs = rng.integers(0, 5, size=(6, 12)).astype(np.float64)
        probs = rng.uniform(0.05, 0.6, size=(9, 12))
        log_p, log_q = np.log(probs), np.log1p(-probs)
        row_coeff = rng.normal(size=6)
        out = backend.binomial_loglik(row_coeff, obs, 30.0, log_p, log_q)
        expected = row_coeff[:, None] + obs @ log_p.T + (30.0 - obs) @ log_q.T
        np.testing.assert_array_equal(out, expected)

    def test_segmented_loglik_matches_binomial_log_pmf(self, backend, rng):
        m = 30.0
        probs = rng.uniform(0.0, 0.4, size=(40, 15))
        probs[rng.random(probs.shape) < 0.3] = 0.0  # far groups
        obs_rep = rng.binomial(int(m), np.clip(probs, 1e-6, 1.0)).astype(
            np.float64
        )
        out = backend.segmented_loglik(
            obs_rep.copy(),
            probs,
            m,
            reaches_one=False,
            log_coefficients=binomial_log_coefficient,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = binomial_log_pmf(obs_rep, m, probs).sum(axis=1)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_segmented_loglik_observed_zero_probability_is_minus_inf(
        self, backend
    ):
        probs = np.array([[0.0, 0.2]])
        obs_rep = np.array([[1.0, 2.0]])  # k > 0 where p == 0: impossible
        out = backend.segmented_loglik(
            obs_rep,
            probs,
            30.0,
            reaches_one=False,
            log_coefficients=binomial_log_coefficient,
        )
        assert out[0] == -np.inf

    def test_sparse_segment_loglik_matches_dense(self, backend, rng):
        m = 30.0
        probs = rng.uniform(0.0, 0.4, size=(8, 15))
        obs_rep = rng.binomial(int(m), np.clip(probs, 1e-6, 1.0)).astype(
            np.float64
        )
        dense = backend.segmented_loglik(
            obs_rep.copy(),
            probs,
            m,
            reaches_one=False,
            log_coefficients=binomial_log_coefficient,
        )
        candidate_ids = np.repeat(np.arange(8), 15)
        sparse = backend.sparse_segment_loglik(
            obs_rep.ravel(),
            probs.ravel(),
            m,
            candidate_ids,
            8,
            reaches_one=False,
            log_coefficients=binomial_log_coefficient,
        )
        np.testing.assert_allclose(sparse, dense, rtol=1e-12)

    def test_segment_sum_matches_bincount_loop(self, backend, rng):
        values = rng.normal(size=50)
        ids = rng.integers(0, 7, size=50)
        out = backend.segment_sum(values, ids, 7)
        expected = np.array([values[ids == s].sum() for s in range(7)])
        np.testing.assert_allclose(out, expected, rtol=1e-15)

    def test_segment_argmax_matches_per_segment_argmax(self, backend, rng):
        counts = rng.integers(1, 9, size=20)
        values = rng.normal(size=int(counts.sum()))
        # Force ties inside some segments so tie-breaking is exercised.
        values[: counts[0]] = 1.5
        indices, maxima = backend.segment_argmax(values, counts)
        offset = 0
        for segment, count in enumerate(counts):
            block = values[offset : offset + count]
            assert indices[segment] == offset + np.argmax(block)
            assert maxima[segment] == block.max()
            offset += count

    def test_segment_argmax_all_minus_inf_segment(self, backend):
        values = np.array([-np.inf, -np.inf, 3.0, -np.inf])
        indices, maxima = backend.segment_argmax(values, np.array([2, 2]))
        np.testing.assert_array_equal(indices, [0, 2])
        np.testing.assert_array_equal(maxima, [-np.inf, 3.0])

    def test_segment_argmax_validates_counts(self, backend):
        with pytest.raises(ValueError, match="positive"):
            backend.segment_argmax(np.ones(3), np.array([2, 0, 1]))
        indices, maxima = backend.segment_argmax(
            np.zeros(0), np.zeros(0, dtype=np.int64)
        )
        assert indices.size == 0 and maxima.size == 0

    def test_rowwise_argmax(self, backend, rng):
        values = rng.normal(size=(12, 30))
        values[3] = 0.25  # a full row of ties
        idx, best = backend.rowwise_argmax(values)
        np.testing.assert_array_equal(idx, np.argmax(values, axis=1))
        np.testing.assert_array_equal(best, values.max(axis=1))

    def test_masked_sum_2d_and_3d(self, backend, rng):
        terms = rng.normal(size=(5, 8))
        mask = rng.random((5, 8)) < 0.5
        np.testing.assert_array_equal(
            backend.masked_sum(terms, mask),
            np.where(mask, terms, 0.0).sum(axis=1),
        )
        points = rng.normal(size=(1, 8, 2))
        out = backend.masked_sum(points, mask)
        expected = np.where(mask[..., None], points, 0.0).sum(axis=1)
        np.testing.assert_array_equal(out, expected)

    def test_solve2x2_matches_linalg_solve(self, backend, rng):
        rows = rng.normal(size=(10, 6, 2))
        m00 = (rows[..., 0] ** 2).sum(axis=1)
        m11 = (rows[..., 1] ** 2).sum(axis=1)
        m01 = (rows[..., 0] * rows[..., 1]).sum(axis=1)
        v = rng.normal(size=(10, 2))
        estimates, solvable = backend.solve2x2(m00, m01, m11, v[:, 0], v[:, 1])
        assert solvable.all()
        matrices = np.stack(
            [np.stack([m00, m01], axis=-1), np.stack([m01, m11], axis=-1)],
            axis=1,
        )
        np.testing.assert_allclose(
            estimates, np.linalg.solve(matrices, v[..., None])[..., 0], rtol=1e-9
        )

    def test_solve2x2_flags_singular_rows(self, backend):
        # One well-conditioned system and one rank-deficient one.
        m00 = np.array([2.0, 1.0])
        m01 = np.array([0.0, 1.0])
        m11 = np.array([3.0, 1.0])
        estimates, solvable = backend.solve2x2(
            m00, m01, m11, np.ones(2), np.ones(2)
        )
        np.testing.assert_array_equal(solvable, [True, False])
        assert np.isfinite(estimates).all()


class TestDenseFallbackKnob:
    def test_knowledge_exposes_backend_default(self, small_knowledge):
        assert (
            small_knowledge.dense_fallback_fraction
            == small_knowledge.backend.dense_fallback_fraction
        )

    def test_knowledge_accepts_override(self, small_generator):
        knowledge = small_generator.knowledge(
            omega=400, dense_fallback_fraction=0.25
        )
        assert knowledge.dense_fallback_fraction == 0.25

    def test_knowledge_rejects_bad_fraction(self, small_generator):
        with pytest.raises(ValueError, match="dense_fallback_fraction"):
            small_generator.knowledge(omega=400, dense_fallback_fraction=1.5)

    def test_fraction_only_picks_the_path_not_the_answer(
        self, small_generator, small_index, rng
    ):
        """Forcing the pruned path on and off gives identical estimates."""
        from repro.localization.beaconless import BeaconlessLocalizer

        obs = small_index.observations_of_nodes(np.arange(12))
        localizer = BeaconlessLocalizer(resolution=4.0)
        estimates = {}
        for fraction in (1e-9, 1.0):  # always-dense vs always-pruned
            knowledge = small_generator.knowledge(
                omega=400, dense_fallback_fraction=fraction
            )
            estimates[fraction] = localizer.localize_observations(
                knowledge, obs
            )
        np.testing.assert_array_equal(estimates[1e-9], estimates[1.0])


class TestTorchBackendProbe:
    def test_availability_probe_never_raises(self):
        message = TorchBackend.availability()
        if TorchBackend.is_available():
            assert "available" in message
        else:
            assert "not installed" in message

    def test_unavailable_build_raises_helpfully(self):
        if TorchBackend.is_available():
            pytest.skip("torch is installed in this environment")
        with pytest.raises(RuntimeError, match="torch"):
            BackendSpec(name="torch").build()

    def test_registered_but_not_numpy_exact(self):
        assert issubclass(TorchBackend, ArrayBackend)
        assert not TorchBackend.numpy_exact
