"""Registry-parametrised backend equivalence suite.

Three contracts are pinned here:

* **numpy-exact equivalence** — a session configured with an explicit
  ``numpy`` :class:`BackendSpec` produces bit-for-bit the same estimates,
  scores and decisions as a session with no backend configured at all,
  for every registered localization scheme;
* **cache aliasing** — numpy-exact selections contribute nothing to the
  artifact fingerprints (a warm cache written without the backend layer
  still fully hits), while a non-exact backend carries its own identity
  and never consumes the reference cache's scored artifacts;
* **torch equivalence** (auto-skipped when torch is not installed) — the
  torch backend matches the reference within tolerance at the op level
  and yields identical detection decisions end to end.
"""

import numpy as np
import pytest

from repro.backend import BACKENDS, BackendSpec, NumpyBackend, TorchBackend
from repro.experiments.config import SimulationConfig
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore
from repro.localization.beacons import BeaconSpec
from repro.localization.beaconless import BeaconlessLocalizer

LOCALIZERS = ("beaconless", "centroid", "mmse", "dvhop", "apit")

needs_torch = pytest.mark.skipif(
    not TorchBackend.is_available(), reason="torch is not installed"
)


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig(
        group_size=40,
        num_training_samples=20,
        training_samples_per_network=10,
        num_victims=20,
        victims_per_network=10,
        gz_omega=300,
        seed=90210,
        beacons=BeaconSpec(count=9, transmit_range=450.0),
    )


@pytest.fixture(scope="module")
def shadow_backend():
    """A numpy twin registered as a *non*-exact backend.

    It computes exactly what the reference computes, but declares
    ``numpy_exact = False`` — the cleanest probe that fingerprinting keys
    off the declared contract, not the actual arithmetic.
    """
    name = "numpy_shadow"
    if name not in BACKENDS:

        @BACKENDS.register(name=name)
        class NumpyShadowBackend(NumpyBackend):
            name = "numpy_shadow"
            numpy_exact = False

    return BACKENDS.get(name)


class TestNumpyExactEquivalence:
    @pytest.mark.parametrize("localizer", LOCALIZERS)
    def test_benign_pipeline_bit_identical(self, tiny_config, localizer):
        reference = LadSession(tiny_config, localizer=localizer)
        explicit = LadSession(
            tiny_config.with_backend(BackendSpec(name="numpy")),
            localizer=localizer,
        )
        np.testing.assert_array_equal(
            reference.training_data.estimated_locations,
            explicit.training_data.estimated_locations,
        )
        np.testing.assert_array_equal(
            reference.benign_scores("diff"), explicit.benign_scores("diff")
        )

    def test_attacked_scores_bit_identical(self, tiny_config):
        reference = LadSession(tiny_config)
        explicit = LadSession(
            tiny_config.with_backend(BackendSpec(name="numpy"))
        )
        for session in (reference, explicit):
            assert isinstance(session.backend, NumpyBackend)
        np.testing.assert_array_equal(
            reference.attacked_scores(
                "diff",
                "dec_bounded",
                degree_of_damage=120.0,
                compromised_fraction=0.1,
            ),
            explicit.attacked_scores(
                "diff",
                "dec_bounded",
                degree_of_damage=120.0,
                compromised_fraction=0.1,
            ),
        )

    def test_kernel_level_bit_identity(self, small_generator, small_index):
        """localize_observations through an explicit numpy backend equals
        the default down to the bit."""
        obs = small_index.observations_of_nodes(np.arange(10))
        localizer = BeaconlessLocalizer(resolution=4.0)
        default = localizer.localize_observations(
            small_generator.knowledge(omega=400), obs
        )
        explicit = localizer.localize_observations(
            small_generator.knowledge(omega=400, backend="numpy"), obs
        )
        np.testing.assert_array_equal(default, explicit)


class TestHierarchicalCoarseSearch:
    def test_two_tier_coarse_matches_dense(self, small_knowledge, small_index):
        obs = small_index.observations_of_nodes(np.arange(10))
        dense = BeaconlessLocalizer(resolution=4.0)
        tiered = BeaconlessLocalizer(resolution=4.0, coarse_tiers=2)
        np.testing.assert_array_equal(
            dense.localize_observations(small_knowledge, obs),
            tiered.localize_observations(small_knowledge, obs),
        )

    def test_default_repr_unchanged_by_new_fields(self):
        """The coarse_tiers fields must not leak into the default repr —
        it feeds the localizer fingerprint of every cached artifact."""
        assert repr(BeaconlessLocalizer()) == (
            "BeaconlessLocalizer(search_margin=250.0, coarse_step=25.0, "
            "resolution=2.0, refine_factor=5.0, name='beaconless-mle')"
        )
        assert "coarse_tiers=2" in repr(BeaconlessLocalizer(coarse_tiers=2))

    def test_validation(self):
        with pytest.raises(ValueError, match="coarse_tiers"):
            BeaconlessLocalizer(coarse_tiers=3)
        with pytest.raises(ValueError, match="tier_stride"):
            BeaconlessLocalizer(coarse_tiers=2, tier_stride=1)


class TestCacheAliasing:
    def test_numpy_spec_adds_no_fingerprint_key(self, tiny_config):
        reference = LadSession(tiny_config)
        explicit = LadSession(
            tiny_config.with_backend(BackendSpec(name="numpy"))
        )
        for session in (reference, explicit):
            assert "backend" not in session.training_fingerprint()
        assert (
            reference.training_fingerprint()
            == explicit.training_fingerprint()
        )
        assert reference.attacked_scores_key(
            "diff", "dec_bounded", degree_of_damage=120.0,
            compromised_fraction=0.1,
        ) == explicit.attacked_scores_key(
            "diff", "dec_bounded", degree_of_damage=120.0,
            compromised_fraction=0.1,
        )

    def test_warm_sweep_from_pre_backend_cache_fully_hits(
        self, tiny_config, tmp_path
    ):
        """A cache written by a backend-less run serves a ``[backend]
        name=numpy`` run without a single miss — the headline aliasing
        guarantee for caches that predate the backend layer."""
        points_kwargs = dict(
            name="warm",
            metrics=("diff",),
            degrees=(80.0, 160.0),
            fractions=(0.1,),
            false_positive_rate=0.05,
        )
        cold_spec = ScenarioSpec(config=tiny_config, **points_kwargs)
        cold = cold_spec.session(store=ArtifactStore(tmp_path))
        cold_rates = cold.sweep().detection_rates(
            cold_spec.points(), false_positive_rate=0.05
        )

        warm_spec = ScenarioSpec(
            config=tiny_config.with_backend(BackendSpec(name="numpy")),
            **points_kwargs,
        )
        warm = warm_spec.session(store=ArtifactStore(tmp_path))
        warm_rates = warm.sweep().detection_rates(
            warm_spec.points(), false_positive_rate=0.05
        )
        assert warm.store.misses == 0
        assert warm_rates == cold_rates

    def test_non_exact_backend_carries_identity(
        self, tiny_config, shadow_backend
    ):
        session = LadSession(
            tiny_config.with_backend(BackendSpec(name="numpy_shadow"))
        )
        fingerprint = session.training_fingerprint()
        assert fingerprint["backend"] == {
            "name": "numpy_shadow",
            "device": "cpu",
            "dtype": "float64",
        }
        reference = LadSession(tiny_config)
        assert session.attacked_scores_key(
            "diff", "dec_bounded", degree_of_damage=120.0,
            compromised_fraction=0.1,
        ) != reference.attacked_scores_key(
            "diff", "dec_bounded", degree_of_damage=120.0,
            compromised_fraction=0.1,
        )

    def test_non_exact_backend_never_reads_reference_scores(
        self, tiny_config, tmp_path, shadow_backend
    ):
        spec_kwargs = dict(
            name="shadow",
            metrics=("diff",),
            degrees=(80.0,),
            fractions=(0.1,),
            false_positive_rate=0.05,
        )
        cold_spec = ScenarioSpec(config=tiny_config, **spec_kwargs)
        cold_spec.session(store=ArtifactStore(tmp_path)).sweep().detection_rates(
            cold_spec.points(), false_positive_rate=0.05
        )

        shadow_spec = ScenarioSpec(
            config=tiny_config.with_backend(BackendSpec(name="numpy_shadow")),
            **spec_kwargs,
        )
        shadow = shadow_spec.session(store=ArtifactStore(tmp_path))
        shadow.sweep().detection_rates(
            shadow_spec.points(), false_positive_rate=0.05
        )
        assert shadow.store.hit_counts["benign_scores"] == 0
        assert shadow.store.hit_counts["attacked_scores"] == 0


@needs_torch
class TestTorchEquivalence:
    @pytest.fixture(scope="class")
    def torch_backend(self):
        return BackendSpec(name="torch", device="cpu").build()

    @pytest.fixture(scope="class")
    def numpy_backend(self):
        return NumpyBackend()

    def test_op_level_equivalence(self, torch_backend, numpy_backend, rng):
        obs = rng.integers(0, 5, size=(6, 12)).astype(np.float64)
        probs = rng.uniform(0.05, 0.6, size=(9, 12))
        log_p, log_q = np.log(probs), np.log1p(-probs)
        row_coeff = rng.normal(size=6)
        np.testing.assert_allclose(
            torch_backend.binomial_loglik(row_coeff, obs, 30.0, log_p, log_q),
            numpy_backend.binomial_loglik(row_coeff, obs, 30.0, log_p, log_q),
            atol=1e-8,
        )
        counts = rng.integers(1, 9, size=20)
        values = rng.normal(size=int(counts.sum()))
        t_idx, t_max = torch_backend.segment_argmax(values, counts)
        n_idx, n_max = numpy_backend.segment_argmax(values, counts)
        np.testing.assert_array_equal(t_idx, n_idx)
        np.testing.assert_allclose(t_max, n_max)

    def test_localization_decisions_match(
        self, small_generator, small_index, torch_backend
    ):
        obs = small_index.observations_of_nodes(np.arange(10))
        localizer = BeaconlessLocalizer(resolution=4.0)
        reference = localizer.localize_observations(
            small_generator.knowledge(omega=400), obs
        )
        torched = localizer.localize_observations(
            small_generator.knowledge(omega=400, backend=torch_backend), obs
        )
        # Same lattice, so agreeing estimates are *equal*, not just close.
        np.testing.assert_array_equal(reference, torched)

    def test_end_to_end_decisions_match(self, tiny_config):
        reference = LadSession(tiny_config)
        torched = LadSession(
            tiny_config.with_backend(BackendSpec(name="torch", device="cpu"))
        )
        assert "backend" in torched.training_fingerprint()
        np.testing.assert_allclose(
            reference.benign_scores("diff"),
            torched.benign_scores("diff"),
            atol=1e-6,
        )
