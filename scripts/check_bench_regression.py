#!/usr/bin/env python
"""Gate benchmark regressions against the committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_pr.json [baseline.json]

``BENCH_pr.json`` is the report written by the benchmark suite when
``LAD_BENCH_JSON`` is set (see ``benchmarks/conftest.py``); the baseline
defaults to ``benchmarks/BENCH_baseline.json``.  Every baseline record that
carries a ``floor`` must be present in the current report with a speedup at
or above that floor, otherwise the script exits non-zero.  This replaces
the old per-benchmark ``LAD_BENCH_MIN_*`` environment gates: the floors are
versioned alongside the code they protect.

The floors are deliberately looser than the speedups measured on dedicated
hardware — shared CI runners are slow and noisy — but tight enough that
losing a batched/pruned fast path altogether fails the job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/BENCH_baseline.json"
)


def load_records(path: Path) -> dict:
    try:
        with path.open(encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        sys.exit(f"error: benchmark report {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    records = payload.get("records")
    if not isinstance(records, dict):
        sys.exit(f"error: {path} has no 'records' object")
    return records


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current = load_records(Path(argv[0]))
    baseline_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_BASELINE
    baseline = load_records(baseline_path)

    failures = []
    print(f"{'benchmark':<28} {'floor':>7} {'baseline':>9} {'current':>9}")
    for name, reference in sorted(baseline.items()):
        floor = reference.get("floor")
        if floor is None:
            continue
        reference_speedup = reference.get("speedup", float("nan"))
        record = current.get(name)
        if record is None:
            failures.append(f"{name}: missing from the current report")
            print(
                f"{name:<28} {floor:>7.2f} {reference_speedup:>8.2f}x   MISSING"
            )
            continue
        speedup = float(record.get("speedup", 0.0))
        status = "ok" if speedup >= floor else "REGRESSION"
        print(
            f"{name:<28} {floor:>7.2f} {reference_speedup:>8.2f}x "
            f"{speedup:>8.2f}x  {status}"
        )
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x fell below its floor "
                f"{floor:.2f}x"
            )

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"untracked benchmarks (no floor yet): {', '.join(extra)}")
    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
