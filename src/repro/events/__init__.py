"""Discrete-event temporal evaluation (mobility, churn, mid-run attacks).

The package has three layers:

* :mod:`repro.events.timeline` — the declarative :class:`TimelineSpec` /
  :class:`EventSpec` pair (the ``[timeline]`` table of a scenario TOML)
  and its deterministic compilation into :class:`Firing` records;
* :mod:`repro.events.engine` — the tiny heap-based :class:`EventEngine`
  with tie-stable (push-order) ordering;
* :mod:`repro.events.temporal` — the epoch stepper: a mutable
  :class:`TemporalWorld` replayed from the session's victim stream, the
  shared :func:`~repro.events.temporal._simulate_point` computation, and
  the store-aware, fan-out-capable :class:`TemporalRunner` producing
  :class:`TemporalOutcome` records (detection latency, time to first
  false positive, detection-rate drift).

Entry point: :meth:`LadSession.temporal
<repro.experiments.session.LadSession.temporal>` or a scenario spec with
a ``[timeline]`` table.
"""

from repro.events.engine import EventEngine
from repro.events.timeline import EventSpec, Firing, TimelineSpec
from repro.events.temporal import TemporalOutcome, TemporalRunner, TemporalWorld

__all__ = [
    "EventEngine",
    "EventSpec",
    "Firing",
    "TemporalOutcome",
    "TemporalRunner",
    "TemporalWorld",
    "TimelineSpec",
]
