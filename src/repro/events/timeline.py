"""Declarative timelines — the ``[timeline]`` table of a scenario spec.

A :class:`TimelineSpec` scripts how a deployed network evolves while the
detector watches it: an epoch grid (``epochs`` scoring passes, one every
``epoch_duration`` time units) plus a list of :class:`EventSpec` sources.
Each source describes *when* it fires (explicit ``at`` times, a periodic
schedule, or a Poisson ``rate``) and *what* happens when it does:

``attack``
    Switch the sweep point's attack ``on`` over a fraction of the victims
    (cumulative — a periodic ``on`` event models an attack spreading
    through the network) or ``off`` again.  A timeline with no ``on``
    event starts fully attacked, so an *empty* timeline degenerates to
    the static evaluation exactly.
``mobility``
    Move a fraction of nodes: ``jitter`` adds a Gaussian step of std
    ``amplitude`` metres; ``waypoint`` walks each node ``amplitude``
    metres towards a persistent random waypoint (redrawn on arrival).
``churn``
    ``leave`` silences a fraction of the live nodes (they stop claiming
    and stop being heard); ``join`` brings a fraction of the departed
    nodes back.
``beacons``
    Degrade the benign nodes' self-localization: ``fail`` adds
    ``fraction * amplitude`` metres of Gaussian noise to benign claimed
    locations (anchors lost, estimates blur), ``compromise`` adds a
    coherent per-epoch bias of the same magnitude (lying anchors drag
    estimates), ``restore`` repairs both.

Everything here follows the repository's rng-stream discipline: Poisson
schedules draw from the name-derived stream ``timeline/{source}/schedule``
and each firing's effect from ``timeline/{source}/fire/{ordinal}``, so a
timeline compiled in a worker process reproduces the serial one bit for
bit, and :meth:`TimelineSpec.fingerprint` puts the whole table into the
artifact-cache keys of temporal outcomes — any schedule change invalidates
exactly the points it affects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.rng import RandomState
from repro.utils.validation import check_fraction, check_positive

__all__ = ["EventSpec", "Firing", "TimelineSpec"]

#: Allowed actions per event kind (the first one is the kind's default).
EVENT_ACTIONS: Dict[str, Tuple[str, ...]] = {
    "attack": ("on", "off"),
    "mobility": ("jitter", "waypoint"),
    "churn": ("leave", "join"),
    "beacons": ("fail", "compromise", "restore"),
}

#: Default affected fraction per event kind.
_DEFAULT_FRACTIONS: Dict[str, float] = {
    "attack": 1.0,
    "mobility": 1.0,
    "churn": 0.05,
    "beacons": 0.25,
}

#: Default amplitude (metres) per event kind; unused kinds keep 0.
_DEFAULT_AMPLITUDES: Dict[str, float] = {
    "attack": 0.0,
    "mobility": 25.0,
    "churn": 0.0,
    "beacons": 30.0,
}


@dataclass(frozen=True)
class EventSpec:
    """One event source of a timeline.

    Attributes
    ----------
    kind:
        ``"attack"``, ``"mobility"``, ``"churn"`` or ``"beacons"``.
    action:
        What a firing does; see :data:`EVENT_ACTIONS` (defaults to the
        kind's first action).
    at:
        Explicit fire times.  Exactly one of ``at`` / ``period`` /
        ``rate`` must be given.
    period:
        Fire every ``period`` time units, starting at ``start``.
    rate:
        Expected firings per time unit of a Poisson schedule whose
        inter-arrival times come from the source's name-derived stream.
    start, until:
        Schedule window for ``period`` / ``rate`` sources (``until`` is
        inclusive; ``None`` = the timeline horizon).
    fraction:
        Fraction of the eligible population affected per firing
        (kind-specific default, see :data:`_DEFAULT_FRACTIONS`).
    amplitude:
        Effect magnitude in metres — the mobility step / noise scale
        (kind-specific default).
    label:
        Display label (defaults to ``"kind:action"``).
    """

    kind: str = "attack"
    action: str = ""
    at: Tuple[float, ...] = ()
    period: Optional[float] = None
    rate: Optional[float] = None
    start: float = 0.0
    until: Optional[float] = None
    fraction: Optional[float] = None
    amplitude: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        kind = str(self.kind).strip().lower()
        if kind not in EVENT_ACTIONS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; "
                f"expected one of {sorted(EVENT_ACTIONS)}"
            )
        set_(self, "kind", kind)
        action = str(self.action).strip().lower() or EVENT_ACTIONS[kind][0]
        if action not in EVENT_ACTIONS[kind]:
            raise ValueError(
                f"event kind {kind!r} has no action {self.action!r}; "
                f"expected one of {list(EVENT_ACTIONS[kind])}"
            )
        set_(self, "action", action)
        set_(self, "at", tuple(sorted(float(t) for t in self.at)))
        for t in self.at:
            check_positive("event time", t, strict=False)
        schedules = sum((bool(self.at), self.period is not None, self.rate is not None))
        if schedules != 1:
            raise ValueError(
                "an event needs exactly one schedule: at-times, a period, "
                "or a rate"
            )
        if self.period is not None:
            set_(self, "period", float(self.period))
            check_positive("event period", self.period)
        if self.rate is not None:
            set_(self, "rate", float(self.rate))
            check_positive("event rate", self.rate)
        set_(self, "start", float(self.start))
        check_positive("event start", self.start, strict=False)
        if self.until is not None:
            set_(self, "until", float(self.until))
            if self.until < self.start:
                raise ValueError("event until must not precede its start")
        fraction = (
            _DEFAULT_FRACTIONS[kind] if self.fraction is None else float(self.fraction)
        )
        check_fraction("event fraction", fraction)
        set_(self, "fraction", fraction)
        amplitude = (
            _DEFAULT_AMPLITUDES[kind]
            if self.amplitude is None
            else float(self.amplitude)
        )
        check_positive("event amplitude", amplitude, strict=False)
        set_(self, "amplitude", amplitude)
        set_(self, "label", str(self.label) or f"{kind}:{action}")

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (TOML/JSON-ready; lossless round trip)."""
        data: Dict[str, Any] = {
            "kind": self.kind,
            "action": self.action,
            "fraction": self.fraction,
            "amplitude": self.amplitude,
            "label": self.label,
        }
        if self.at:
            data["at"] = list(self.at)
        if self.period is not None:
            data["period"] = self.period
        if self.rate is not None:
            data["rate"] = self.rate
        if self.start != 0.0:
            data["start"] = self.start
        if self.until is not None:
            data["until"] = self.until
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EventSpec":
        """Rebuild an event from its :meth:`as_dict` form (typos raise)."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown event field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)

    def fire_times(self, horizon: float, *, rng=None) -> List[float]:
        """The source's fire times within ``[0, horizon]``, ascending.

        Poisson (``rate``) schedules require *rng* — the caller passes the
        source's name-derived stream so the schedule is a pure function of
        the session seed and the source's index.
        """
        limit = horizon if self.until is None else min(self.until, horizon)
        if self.at:
            return [t for t in self.at if t <= horizon]
        times: List[float] = []
        if self.period is not None:
            t = self.start
            while t <= limit:
                times.append(t)
                t += self.period
            return times
        if rng is None:
            raise ValueError("a rate-scheduled event needs a random stream")
        t = self.start + float(rng.exponential(1.0 / self.rate))
        while t <= limit:
            times.append(t)
            t += float(rng.exponential(1.0 / self.rate))
        return times


@dataclass(frozen=True)
class Firing:
    """One scheduled firing of an event source.

    ``ordinal`` counts the source's firings in time order; the firing's
    effect randomness is drawn from the stream
    ``timeline/{source}/fire/{ordinal}``, so it depends only on the seed
    and the firing's identity — never on which process applies it.
    """

    time: float
    source: int
    ordinal: int
    spec: EventSpec

    def stream_name(self) -> str:
        """Name of the random stream driving this firing's effect."""
        return f"timeline/{self.source}/fire/{self.ordinal}"


@dataclass(frozen=True)
class TimelineSpec:
    """The temporal axis of a scenario: an epoch grid plus event sources.

    Attributes
    ----------
    epochs:
        Number of scoring passes; epoch ``e`` happens at time
        ``e * epoch_duration`` (so the horizon is
        ``(epochs - 1) * epoch_duration``).
    epoch_duration:
        Time units between consecutive epochs.
    events:
        The event sources (see :class:`EventSpec`); an empty tuple means
        the network never changes and every epoch reproduces the static
        evaluation bit for bit.
    """

    epochs: int = 1
    epoch_duration: float = 1.0
    events: Tuple[EventSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "epochs", int(self.epochs))
        if self.epochs < 1:
            raise ValueError("a timeline needs at least one epoch")
        set_(self, "epoch_duration", float(self.epoch_duration))
        check_positive("epoch_duration", self.epoch_duration)
        set_(
            self,
            "events",
            tuple(
                event
                if isinstance(event, EventSpec)
                else EventSpec.from_dict(dict(event))
                for event in self.events
            ),
        )

    @property
    def horizon(self) -> float:
        """Time of the last epoch (events beyond it never fire)."""
        return (self.epochs - 1) * self.epoch_duration

    @property
    def starts_attacked(self) -> bool:
        """Whether the run begins with every victim under attack.

        A timeline that never switches an attack ``on`` evaluates the
        sweep point's attack from epoch 0 over all victims — the static
        evaluation's shape — so an empty timeline degenerates exactly.
        """
        return not any(
            event.kind == "attack" and event.action == "on"
            for event in self.events
        )

    def epoch_times(self) -> List[float]:
        """The scoring times, ``[0, d, 2d, ...]``."""
        return [e * self.epoch_duration for e in range(self.epochs)]

    def compile(self, seed: int) -> List[Firing]:
        """Every firing within the horizon, as :class:`Firing` records.

        Poisson schedules draw their inter-arrival times from the
        name-derived stream ``timeline/{source}/schedule`` of *seed*, so
        the compiled schedule is reproducible across processes.  The
        result is ordered by source (the event engine orders by time and
        breaks ties by insertion, i.e. declaration order).
        """
        random_state = RandomState(seed)
        firings: List[Firing] = []
        for source, event in enumerate(self.events):
            rng = None
            if event.rate is not None:
                rng = random_state.stream(f"timeline/{source}/schedule")
            for ordinal, time in enumerate(event.fire_times(self.horizon, rng=rng)):
                firings.append(
                    Firing(time=time, source=source, ordinal=ordinal, spec=event)
                )
        return firings

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (TOML/JSON-ready; lossless round trip)."""
        return {
            "epochs": self.epochs,
            "epoch_duration": self.epoch_duration,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimelineSpec":
        """Rebuild a timeline from its :meth:`as_dict` form (typos raise)."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown timeline field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)

    def fingerprint(self) -> Dict[str, Any]:
        """The timeline's contribution to temporal artifact-cache keys.

        The *entire* table — epoch grid plus every source's schedule and
        effect parameters — so any change to a timeline invalidates the
        cached temporal outcomes it produced, while leaving the static
        per-point attacked scores (a different artifact category)
        untouched.
        """
        return {"version": 1, **self.as_dict()}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimelineSpec({self.epochs} epoch(s) x {self.epoch_duration:g}, "
            f"{len(self.events)} event source(s))"
        )
