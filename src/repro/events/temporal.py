"""Epoch-stepped temporal evaluation — the second engine beside the sweep.

The static evaluation asks "given this snapshot, is the attack detected?".
The temporal engine asks the *online* question: a live network evolves —
nodes move, churn in and out, beacons degrade, an attack switches on mid
run — and the deployed detector re-scores every victim's location claim
once per epoch.  The new metric family falls out of the per-epoch record:

* **detection latency** — epochs until any attacked victim is flagged;
* **time to first false positive** — epochs until a benign victim is
  flagged;
* **detection-rate drift** — how the detection rate decays as deployment
  knowledge goes stale while the network keeps moving.

The implementation deliberately reuses the batch kernels: each epoch
rebuilds the victims' observations with the one-pass
:meth:`~repro.network.neighbors.NeighborIndex.observations_of_nodes`
kernel and scores the whole victim batch with one
:meth:`~repro.core.metrics.AnomalyMetric.compute` call per path, so an
``E``-epoch run costs ``E`` amortised batch passes, not ``E * V`` Python
loops.

Determinism contract (the same one the sweep honours):

* :class:`TemporalWorld` rebuilds the evaluation networks by replaying the
  session's ``"victims"`` stream, so epoch 0 of an un-evented timeline
  sees *bit-for-bit* the observations of :meth:`LadSession.victims`;
* every firing's effect draws from its own name-derived stream
  (``timeline/{source}/fire/{ordinal}``) and the per-epoch attack scoring
  re-derives the sweep point's stream (:meth:`SweepPoint.stream_name`)
  every epoch — serial and process-fan-out runs share
  :func:`_simulate_point` verbatim, so they are identical by construction;
* cold results are persisted per point under
  :meth:`LadSession.temporal_key` (the attacked fingerprint plus the
  timeline fingerprint), so interrupted temporal sweeps resume without
  recomputing finished points.
"""

from __future__ import annotations

import json
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.evaluation import attack_observations
from repro.core.metrics import resolve_metric
from repro.core.verdict import Verdict, verdicts_from_scores
from repro.events.engine import EventEngine
from repro.events.timeline import TimelineSpec
from repro.experiments.sweep import FAN_OUT_ERRORS, LocalizerModalities, SweepPoint
from repro.network.neighbors import NeighborIndex
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.session import LadSession

__all__ = ["TemporalOutcome", "TemporalRunner", "TemporalWorld"]

#: Effective range of a departed node: strictly positive (the network
#: container requires it) but far below any plausible radio range, so a
#: departed node is heard by nobody until a join event restores it.
_DEPARTED_RANGE = 1e-9


@dataclass
class _Cell:
    """One evaluation network plus its victims' mutable temporal state."""

    network: object
    victims: np.ndarray
    node_alive: np.ndarray
    waypoints: Optional[np.ndarray] = None

    def copy(self) -> "_Cell":
        return _Cell(
            network=self.network.copy(),
            victims=self.victims.copy(),
            node_alive=self.node_alive.copy(),
            waypoints=None if self.waypoints is None else self.waypoints.copy(),
        )


class TemporalWorld:
    """The mutable network state a timeline evolves.

    Built by replaying the session's ``"victims"`` random stream: the same
    networks, the same victim draw, in the same order — so an un-evented
    world reproduces :meth:`LadSession.victims` exactly.  The world is then
    mutated in place by event firings (mobility, churn, beacon decay) and
    re-observed per epoch through a fresh :class:`NeighborIndex` (the index
    snapshots positions at construction, so it must be rebuilt after any
    movement).
    """

    def __init__(
        self,
        cells: List[_Cell],
        *,
        beacon_noise_std: float = 0.0,
        beacon_bias: float = 0.0,
    ):
        self._cells = cells
        self.beacon_noise_std = float(beacon_noise_std)
        self.beacon_bias = float(beacon_bias)

    @classmethod
    def build(
        cls,
        generator,
        *,
        num_victims: int,
        victims_per_network: int,
        seed: Optional[int],
    ) -> "TemporalWorld":
        """Replay the ``"victims"`` stream of *seed* and retain the networks."""
        rng = RandomState(seed).stream("victims")
        cells: List[_Cell] = []
        remaining = int(num_victims)
        while remaining > 0:
            network = generator.generate(rng)
            # The session builds a NeighborIndex here; index construction
            # consumes no randomness, so skipping it keeps the stream (and
            # therefore the victim draw below) bit-identical.
            take = min(int(victims_per_network), remaining)
            nodes = rng.choice(network.num_nodes, size=take, replace=False)
            cells.append(
                _Cell(
                    network=network,
                    victims=np.asarray(nodes, dtype=np.int64),
                    node_alive=np.ones(network.num_nodes, dtype=bool),
                )
            )
            remaining -= take
        return cls(cells)

    @classmethod
    def from_session(cls, session: "LadSession") -> "TemporalWorld":
        """Build the world matching *session*'s evaluation victims."""
        c = session.config
        return cls.build(
            session.generator,
            num_victims=c.num_victims,
            victims_per_network=c.victims_per_network,
            seed=c.seed,
        )

    def copy(self) -> "TemporalWorld":
        """Deep copy — each simulated point evolves its own world."""
        return TemporalWorld(
            [cell.copy() for cell in self._cells],
            beacon_noise_std=self.beacon_noise_std,
            beacon_bias=self.beacon_bias,
        )

    @property
    def num_victims(self) -> int:
        """Total number of evaluation victims across all cells."""
        return sum(cell.victims.size for cell in self._cells)

    @property
    def region(self):
        """The deployment region (taken from the first network)."""
        return self._cells[0].network.region

    # -- observation -------------------------------------------------------

    def victim_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current honest observations and positions of every victim.

        Rebuilds one :class:`NeighborIndex` per network — positions may
        have moved and ranges may have changed since the last epoch — and
        runs the same one-pass observation kernel the static path uses.
        """
        observations: List[np.ndarray] = []
        positions: List[np.ndarray] = []
        for cell in self._cells:
            index = NeighborIndex(cell.network)
            observations.append(index.observations_of_nodes(cell.victims))
            positions.append(cell.network.positions[cell.victims])
        return np.vstack(observations), np.vstack(positions)

    def victim_alive(self) -> np.ndarray:
        """Boolean mask of victims still deployed (not churned out)."""
        return np.concatenate([cell.node_alive[cell.victims] for cell in self._cells])

    # -- event effects -----------------------------------------------------

    def apply_mobility(
        self, action: str, fraction: float, amplitude: float, rng
    ) -> None:
        """Move a fraction of the live nodes (``jitter`` or ``waypoint``)."""
        for cell in self._cells:
            network = cell.network
            alive = np.flatnonzero(cell.node_alive)
            if alive.size == 0:
                continue
            count = (
                alive.size
                if fraction >= 1.0
                else max(1, int(round(fraction * alive.size)))
            )
            count = min(count, alive.size)
            chosen = np.sort(rng.choice(alive, size=count, replace=False))
            if action == "jitter":
                network.positions[chosen] += rng.normal(0.0, amplitude, size=(count, 2))
            else:  # waypoint
                if cell.waypoints is None:
                    cell.waypoints = self.region.sample_uniform(rng, network.num_nodes)
                delta = cell.waypoints[chosen] - network.positions[chosen]
                dist = np.linalg.norm(delta, axis=1)
                arrived = dist <= amplitude
                moving = ~arrived & (dist > 0)
                network.positions[chosen[arrived]] = cell.waypoints[chosen[arrived]]
                if arrived.any():
                    cell.waypoints[chosen[arrived]] = self.region.sample_uniform(
                        rng, int(arrived.sum())
                    )
                if moving.any():
                    step = delta[moving] / dist[moving, None] * amplitude
                    network.positions[chosen[moving]] += step
            if self.region is not None:
                network.positions[chosen] = self.region.clip(network.positions[chosen])

    def apply_churn(self, action: str, fraction: float, rng) -> None:
        """Silence (``leave``) or restore (``join``) a fraction of nodes."""
        for cell in self._cells:
            network = cell.network
            if action == "leave":
                pool = np.flatnonzero(cell.node_alive)
            else:  # join
                pool = np.flatnonzero(~cell.node_alive)
            if pool.size == 0:
                continue
            count = (
                pool.size
                if fraction >= 1.0
                else max(1, int(round(fraction * pool.size)))
            )
            count = min(count, pool.size)
            chosen = np.sort(rng.choice(pool, size=count, replace=False))
            if network.ranges is None:
                network.ranges = np.full(
                    network.num_nodes,
                    network.radio.nominal_range,
                    dtype=np.float64,
                )
            if action == "leave":
                network.ranges[chosen] = _DEPARTED_RANGE
                cell.node_alive[chosen] = False
            else:
                network.ranges[chosen] = network.radio.nominal_range
                cell.node_alive[chosen] = True

    def apply_beacons(self, action: str, fraction: float, amplitude: float) -> None:
        """Degrade (or repair) the benign nodes' self-localization quality.

        ``fail`` blurs benign claimed locations with Gaussian noise of std
        ``fraction * amplitude`` metres (cumulative across firings — more
        anchors lost, blurrier estimates); ``compromise`` adds a coherent
        per-epoch bias of the same magnitude (lying anchors drag every
        estimate the same way); ``restore`` repairs both.
        """
        if action == "fail":
            self.beacon_noise_std += fraction * amplitude
        elif action == "compromise":
            self.beacon_bias += fraction * amplitude
        else:  # restore
            self.beacon_noise_std = 0.0
            self.beacon_bias = 0.0


def _simulate_point(
    world_base: TemporalWorld,
    knowledge,
    seed: Optional[int],
    timeline: TimelineSpec,
    point: SweepPoint,
    localizer=None,
) -> Dict[str, np.ndarray]:
    """Run one sweep point through the timeline; returns the raw epoch record.

    This single function is the *entire* temporal computation — the serial
    path and every worker process call it with identical arguments, and all
    randomness inside comes from name-derived streams of *seed*, so
    parallel and serial runs are bit-identical by construction.

    Degeneracy: with an empty timeline the single epoch scores all victims
    through :func:`attack_observations` + ``metric.compute`` under the
    point's own stream — the exact call sequence of
    :meth:`LadSession._compute_attacked_scores` — so the temporal engine
    reproduces the static attacked scores bit for bit.
    """
    world = world_base.copy()
    metric = resolve_metric(point.metric)
    engine: EventEngine = EventEngine()
    for firing in timeline.compile(seed):
        engine.push(firing.time, firing)

    num_victims = world.num_victims
    attacked = np.full(num_victims, timeline.starts_attacked, dtype=bool)

    epochs = timeline.epochs
    scores = np.full((epochs, num_victims), np.nan, dtype=np.float64)
    attacked_record = np.zeros((epochs, num_victims), dtype=bool)
    alive_record = np.zeros((epochs, num_victims), dtype=bool)
    times = np.asarray(timeline.epoch_times(), dtype=np.float64)
    events: List[List[str]] = []

    for epoch, now in enumerate(times):
        fired: List[str] = []
        for firing in engine.pop_due(now):
            spec = firing.spec
            fired.append(spec.label)
            rng = RandomState(seed).stream(firing.stream_name())
            if spec.kind == "attack":
                if spec.action == "on":
                    pool = np.flatnonzero(~attacked)
                else:
                    pool = np.flatnonzero(attacked)
                if pool.size:
                    count = (
                        num_victims
                        if spec.fraction >= 1.0
                        else max(1, int(round(spec.fraction * num_victims)))
                    )
                    count = min(count, pool.size)
                    chosen = rng.choice(pool, size=count, replace=False)
                    attacked[chosen] = spec.action == "on"
            elif spec.kind == "mobility":
                world.apply_mobility(spec.action, spec.fraction, spec.amplitude, rng)
            elif spec.kind == "churn":
                world.apply_churn(spec.action, spec.fraction, rng)
            else:  # beacons
                world.apply_beacons(spec.action, spec.fraction, spec.amplitude)
        events.append(fired)

        observations, actual = world.victim_state()
        alive = world.victim_alive()
        attack_rows = attacked & alive
        benign_rows = ~attacked & alive

        if attack_rows.any():
            # Always attack the *full* victim batch under the point's own
            # stream, recreated every epoch: the draws never depend on the
            # attacked mask, and epoch 0 of an empty timeline replays
            # LadSession._compute_attacked_scores exactly.
            rng_attack = RandomState(seed).stream(point.stream_name())
            tainted, _spoofed, expected = attack_observations(
                knowledge,
                observations,
                actual,
                metric=metric,
                attack_class=point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
                rng=rng_attack,
                localizer=localizer,
            )
            attack_scores = np.asarray(
                metric.compute(
                    tainted, expected, group_size=knowledge.group_size
                ),
                dtype=np.float64,
            )
            scores[epoch, attack_rows] = attack_scores[attack_rows]

        if benign_rows.any():
            claimed = actual.copy()
            if world.beacon_noise_std > 0.0 or world.beacon_bias > 0.0:
                rng_beacons = RandomState(seed).stream(
                    f"timeline/beacons/epoch/{epoch}"
                )
                if world.beacon_noise_std > 0.0:
                    claimed += rng_beacons.normal(
                        0.0, world.beacon_noise_std, size=claimed.shape
                    )
                if world.beacon_bias > 0.0:
                    angle = rng_beacons.uniform(0.0, 2.0 * np.pi)
                    claimed += world.beacon_bias * np.array(
                        [np.cos(angle), np.sin(angle)]
                    )
                if world.region is not None:
                    claimed = world.region.clip(claimed)
            benign_expected = knowledge.expected_observation(claimed)
            benign_scores = np.asarray(
                metric.compute(
                    observations, benign_expected, group_size=knowledge.group_size
                ),
                dtype=np.float64,
            )
            scores[epoch, benign_rows] = benign_scores[benign_rows]

        attacked_record[epoch] = attacked
        alive_record[epoch] = alive

    return {
        "scores": scores,
        "attacked": attacked_record,
        "alive": alive_record,
        "times": times,
        "events": events,
    }


@dataclass(frozen=True, eq=False)
class TemporalOutcome:
    """Per-epoch record of one sweep point run through a timeline.

    The temporal analogue of
    :class:`~repro.core.evaluation.DetectionOutcome`: raw per-epoch score /
    attacked / alive matrices plus the trained operating point, with the
    online metric family derived lazily on top.

    Attributes
    ----------
    point:
        The sweep point (metric, attack, D, x) that was run.
    scores:
        Anomaly scores, shape ``(epochs, victims)``; ``NaN`` marks a
        victim that was churned out at that epoch (no claim submitted).
    attacked, alive:
        Boolean state matrices of the same shape.
    times:
        Epoch times, shape ``(epochs,)``.
    events:
        Per-epoch tuples of the event labels that fired at that epoch.
    threshold, false_positive_rate:
        The trained operating point every epoch is judged at.
    """

    point: SweepPoint
    scores: np.ndarray
    attacked: np.ndarray
    alive: np.ndarray
    times: np.ndarray
    events: Tuple[Tuple[str, ...], ...]
    threshold: float
    false_positive_rate: float

    @classmethod
    def from_arrays(
        cls,
        point: SweepPoint,
        arrays: Dict[str, np.ndarray],
        *,
        threshold: float,
        false_positive_rate: float,
    ) -> "TemporalOutcome":
        """Assemble an outcome from :func:`_simulate_point`'s raw record."""
        events = arrays["events"]
        if isinstance(events, np.ndarray):
            events = json.loads(events.item())
        return cls(
            point=point,
            scores=np.asarray(arrays["scores"], dtype=np.float64),
            attacked=np.asarray(arrays["attacked"], dtype=bool),
            alive=np.asarray(arrays["alive"], dtype=bool),
            times=np.asarray(arrays["times"], dtype=np.float64),
            events=tuple(tuple(labels) for labels in events),
            threshold=float(threshold),
            false_positive_rate=float(false_positive_rate),
        )

    # -- shape -------------------------------------------------------------

    @property
    def num_epochs(self) -> int:
        """Number of scored epochs."""
        return int(self.scores.shape[0])

    @property
    def num_victims(self) -> int:
        """Number of evaluation victims."""
        return int(self.scores.shape[1])

    # -- derived per-epoch series -----------------------------------------

    @cached_property
    def flagged(self) -> np.ndarray:
        """Which claims the detector flagged (``NaN`` scores never flag)."""
        with np.errstate(invalid="ignore"):
            return self.scores > self.threshold

    def detection_rates(self) -> np.ndarray:
        """Fraction of live attacked victims flagged, per epoch (0 if none)."""
        under_attack = self.attacked & self.alive
        hits = (self.flagged & under_attack).sum(axis=1)
        totals = under_attack.sum(axis=1)
        return np.divide(
            hits,
            totals,
            out=np.zeros(self.num_epochs, dtype=np.float64),
            where=totals > 0,
        )

    def false_positive_rates(self) -> np.ndarray:
        """Fraction of live benign victims flagged, per epoch (0 if none)."""
        benign = ~self.attacked & self.alive
        hits = (self.flagged & benign).sum(axis=1)
        totals = benign.sum(axis=1)
        return np.divide(
            hits,
            totals,
            out=np.zeros(self.num_epochs, dtype=np.float64),
            where=totals > 0,
        )

    def delivery_rates(self) -> np.ndarray:
        """Fraction of victims whose claims were accepted, per epoch.

        A claim is delivered when the node is alive and not flagged —
        the network's usable capacity as attack and churn progress.
        """
        delivered = (self.alive & ~self.flagged).sum(axis=1)
        return delivered / float(self.num_victims)

    # -- the online metric family ------------------------------------------

    @cached_property
    def detection_latency(self) -> Optional[int]:
        """Epoch index at which an attacked victim was first flagged.

        ``None`` when no attacked victim was ever flagged (also when the
        timeline never switches an attack on over any live victim).
        """
        hits = (self.flagged & self.attacked & self.alive).any(axis=1)
        indices = np.flatnonzero(hits)
        return int(indices[0]) if indices.size else None

    @property
    def detection_time(self) -> Optional[float]:
        """Time of the first detection (``None`` when never detected)."""
        latency = self.detection_latency
        return None if latency is None else float(self.times[latency])

    @cached_property
    def first_false_positive(self) -> Optional[int]:
        """Epoch index of the first benign victim flagged (``None`` = never)."""
        hits = (self.flagged & ~self.attacked & self.alive).any(axis=1)
        indices = np.flatnonzero(hits)
        return int(indices[0]) if indices.size else None

    @property
    def first_false_positive_time(self) -> Optional[float]:
        """Time of the first false positive (``None`` = never)."""
        epoch = self.first_false_positive
        return None if epoch is None else float(self.times[epoch])

    @cached_property
    def detection_drift(self) -> float:
        """Detection-rate change from the first to the last attacked epoch.

        Negative values mean the detector degrades as the network evolves
        (knowledge staleness, churn); ``0.0`` when fewer than two epochs
        had live attacked victims.
        """
        under_attack = (self.attacked & self.alive).any(axis=1)
        indices = np.flatnonzero(under_attack)
        if indices.size < 2:
            return 0.0
        rates = self.detection_rates()
        return float(rates[indices[-1]] - rates[indices[0]])

    # -- interop -----------------------------------------------------------

    def verdicts(self, epoch: int = 0) -> List[Verdict]:
        """Per-victim verdicts of one epoch — the static path's record type.

        For an empty timeline, ``verdicts(0)`` equals the verdicts of the
        static :meth:`DetectionOutcome.verdicts` for the same point: same
        scores, same trained threshold, same decision rule.
        """
        return verdicts_from_scores(
            self.scores[epoch],
            threshold=self.threshold,
            metric=self.point.metric,
            false_positive_rate=self.false_positive_rate,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (CLI ``--json`` payloads)."""
        return {
            "metric": self.point.metric,
            "attack": self.point.attack,
            "degree_of_damage": self.point.degree_of_damage,
            "compromised_fraction": self.point.compromised_fraction,
            "epochs": self.num_epochs,
            "threshold": self.threshold,
            "false_positive_rate": self.false_positive_rate,
            "detection_latency": self.detection_latency,
            "first_false_positive": self.first_false_positive,
            "detection_drift": self.detection_drift,
            "detection_rates": self.detection_rates().tolist(),
            "false_positive_rates": self.false_positive_rates().tolist(),
            "delivery_rates": self.delivery_rates().tolist(),
            "times": self.times.tolist(),
            "events": [list(labels) for labels in self.events],
        }

    def __eq__(self, other):
        """Value equality with elementwise array comparison (NaN == NaN).

        The warm/cold and serial/parallel tests compare whole outcome maps,
        so equality must be well-defined for the array fields.
        """
        if not isinstance(other, TemporalOutcome):
            return NotImplemented
        return (
            self.point == other.point
            and self.threshold == other.threshold
            and self.false_positive_rate == other.false_positive_rate
            and self.events == other.events
            and np.array_equal(self.scores, other.scores, equal_nan=True)
            and np.array_equal(self.attacked, other.attacked)
            and np.array_equal(self.alive, other.alive)
            and np.array_equal(self.times, other.times)
        )


#: Shared per-worker state, installed once by the pool initializer.
_TEMPORAL_WORKER_STATE: dict = {}


def _init_temporal_worker(payload: dict) -> None:
    _TEMPORAL_WORKER_STATE.update(payload)


def _simulate_point_worker(point: SweepPoint) -> Dict[str, np.ndarray]:
    """Worker entry: build the base world once, then simulate per point."""
    state = _TEMPORAL_WORKER_STATE
    if "world" not in state:
        state["world"] = TemporalWorld.build(
            state["generator"],
            num_victims=state["num_victims"],
            victims_per_network=state["victims_per_network"],
            seed=state["seed"],
        )
    return _simulate_point(
        state["world"],
        state["knowledge"],
        state["seed"],
        state["timeline"],
        point,
        localizer=state.get("localizer_view"),
    )


class TemporalRunner:
    """Fan sweep points through a timeline, with caching and fan-out.

    The temporal sibling of
    :class:`~repro.experiments.sweep.SweepRunner`: same warm/cold store
    partition (category ``"temporal"``, keyed by
    :meth:`LadSession.temporal_key`), same shared-state worker pool with
    the bit-identical serial fallback, same streaming iteration order.
    Obtained via :meth:`LadSession.temporal`.
    """

    def __init__(
        self,
        session: "LadSession",
        timeline: Optional[TimelineSpec] = None,
        *,
        workers: int = 0,
    ):
        self._session = session
        self._timeline = timeline if timeline is not None else TimelineSpec()
        self._workers = int(workers)
        self._world: Optional[TemporalWorld] = None

    @property
    def session(self) -> "LadSession":
        """The session whose cached state this runner shares."""
        return self._session

    @property
    def timeline(self) -> TimelineSpec:
        """The timeline every point is run through."""
        return self._timeline

    def _base_world(self) -> TemporalWorld:
        if self._world is None:
            self._world = TemporalWorld.from_session(self._session)
        return self._world

    def _localizer_view(self) -> LocalizerModalities:
        """The session localizer's modality tag, in picklable form.

        Modality-targeted attack classes gate their displacement on it;
        serial and worker paths receive the same view so they stay
        bit-identical.
        """
        localizer = self._session.localizer
        return LocalizerModalities(
            modalities=tuple(localizer.modalities), name=localizer.name
        )

    def run(
        self, point: SweepPoint, *, false_positive_rate: float = 0.01
    ) -> TemporalOutcome:
        """Run a single point through the timeline (store-aware)."""
        return dict(
            self.iter_outcomes([point], false_positive_rate=false_positive_rate)
        )[point]

    def outcomes(
        self,
        points: Sequence[SweepPoint],
        *,
        false_positive_rate: float = 0.01,
    ) -> Dict[SweepPoint, TemporalOutcome]:
        """A :class:`TemporalOutcome` per point (see :meth:`iter_outcomes`)."""
        return dict(self.iter_outcomes(points, false_positive_rate=false_positive_rate))

    def iter_outcomes(
        self,
        points: Sequence[SweepPoint],
        *,
        false_positive_rate: float = 0.01,
    ) -> Iterator[Tuple[SweepPoint, TemporalOutcome]]:
        """Yield ``(point, outcome)`` pairs in grid order as they complete.

        When the session carries an artifact store every point is first
        probed under its temporal fingerprint (attacked fingerprint plus
        the timeline fingerprint): warm points stream from disk, the cold
        remainder is simulated — serially or via the worker pool — and
        each cold record is persisted the moment it arrives, so an
        interrupted temporal sweep resumes by recomputing exactly the
        missing points, bit-identical to an uninterrupted run.

        The trained threshold is applied here in the parent (workers only
        produce raw score matrices), so fan-out never re-trains.
        """
        points = list(points)
        session = self._session
        store = session.store
        keys: List[Optional[str]] = [None] * len(points)
        warm_indices: set = set()
        if store is not None:
            for i, point in enumerate(points):
                keys[i] = session.temporal_key(
                    point.metric,
                    point.attack,
                    degree_of_damage=point.degree_of_damage,
                    compromised_fraction=point.compromised_fraction,
                    timeline=self._timeline,
                )
                if store.probe("temporal", keys[i]):
                    warm_indices.add(i)
        cold_records = self._iter_cold(
            [points[i] for i in range(len(points)) if i not in warm_indices]
        )
        for i, point in enumerate(points):
            threshold = session.threshold(
                point.metric, false_positive_rate=false_positive_rate
            )
            arrays = None
            if i in warm_indices:
                arrays = store.load("temporal", keys[i])
            if arrays is None:
                arrays = next(cold_records) if i not in warm_indices else None
                if arrays is None:
                    # Vanished or corrupt since the probe (quarantined by
                    # the failed load): recompute this point inline.
                    arrays = _simulate_point(
                        self._base_world(),
                        session.knowledge,
                        session.config.seed,
                        self._timeline,
                        point,
                        localizer=self._localizer_view(),
                    )
                if store is not None and keys[i] is not None:
                    store.save(
                        "temporal",
                        keys[i],
                        scores=arrays["scores"],
                        attacked=arrays["attacked"],
                        alive=arrays["alive"],
                        times=arrays["times"],
                        events=np.array(json.dumps(list(arrays["events"]))),
                    )
            yield point, TemporalOutcome.from_arrays(
                point,
                arrays,
                threshold=threshold,
                false_positive_rate=false_positive_rate,
            )

    def _iter_cold(self, points: List[SweepPoint]) -> Iterator[Dict[str, np.ndarray]]:
        """Simulate store-missing points in grid order (pool or serial)."""
        yielded = 0
        if self._workers > 1 and points:
            try:
                for record in self._iter_parallel(points):
                    yield record
                    yielded += 1
            except FAN_OUT_ERRORS as exc:
                warnings.warn(
                    f"parallel temporal run unavailable on this platform "
                    f"({exc!r}); falling back to the serial path",
                    RuntimeWarning,
                    stacklevel=2,
                )
        for point in points[yielded:]:
            yield _simulate_point(
                self._base_world(),
                self._session.knowledge,
                self._session.config.seed,
                self._timeline,
                point,
                localizer=self._localizer_view(),
            )

    def _iter_parallel(
        self, points: List[SweepPoint]
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Fan the points over a pool sharing the picklable session state."""
        session = self._session
        payload = {
            "generator": session.generator,
            "knowledge": session.knowledge,
            "seed": session.config.seed,
            "num_victims": session.config.num_victims,
            "victims_per_network": session.config.victims_per_network,
            "timeline": self._timeline,
            "localizer_view": self._localizer_view(),
        }
        with ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_init_temporal_worker,
            initargs=(payload,),
        ) as pool:
            yield from pool.map(_simulate_point_worker, points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalRunner(workers={self._workers}, "
            f"timeline={self._timeline}, session={self._session!r})"
        )
