"""A deterministic heap-based discrete-event loop.

:class:`EventEngine` is deliberately tiny: a priority queue of
``(time, sequence, item)`` triples where the monotonically increasing
sequence number makes ordering *total* — two items pushed for the same
time pop in push order, never in an id- or hash-dependent one.  That
tie-stability is what lets the temporal runner promise bit-identical
results between serial and fan-out execution: the compiled timeline is
pushed in declaration order everywhere, so same-time firings always
apply in the same order.
"""

from __future__ import annotations

import heapq
import math
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["EventEngine"]

T = TypeVar("T")


class EventEngine(Generic[T]):
    """Priority queue of timed items with tie-stable (push-order) ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, item: T) -> None:
        """Schedule *item* at *time* (must be finite and non-negative)."""
        time = float(time)
        if not (math.isfinite(time) and time >= 0.0):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, item))
        self._sequence += 1

    def push_all(self, items: Iterable[Tuple[float, T]]) -> None:
        """Schedule many ``(time, item)`` pairs in iteration order."""
        for time, item in items:
            self.push(time, item)

    def peek_time(self) -> Optional[float]:
        """Time of the next item, or ``None`` when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: float) -> List[T]:
        """Pop every item scheduled at or before *now*, in order."""
        due: List[T] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[2])
        return due
