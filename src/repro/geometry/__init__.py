"""Plane-geometry kernels used by the deployment, network and attack models."""

from repro.geometry.points import (
    distance,
    pairwise_distances,
    distances_to_point,
    random_point_at_distance,
    points_on_circle,
)
from repro.geometry.shapes import (
    circle_circle_intersection_area,
    disk_area,
    point_in_triangle,
    triangle_area,
)
from repro.geometry.grid import SpatialHashGrid

__all__ = [
    "distance",
    "pairwise_distances",
    "distances_to_point",
    "random_point_at_distance",
    "points_on_circle",
    "circle_circle_intersection_area",
    "disk_area",
    "point_in_triangle",
    "triangle_area",
    "SpatialHashGrid",
]
