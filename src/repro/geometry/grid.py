"""A uniform spatial hash grid for fixed-radius neighbour queries.

The network substrate defaults to ``scipy.spatial.cKDTree``, but the hash
grid is useful in two situations:

* when the query radius is known in advance and equal to the cell size, the
  grid answers fixed-radius queries with a constant number of cell lookups;
* property-based tests use it as an independent implementation to
  cross-check the KD-tree based neighbour discovery.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.types import as_point, as_points
from repro.utils.validation import check_positive

__all__ = ["SpatialHashGrid"]


class SpatialHashGrid:
    """Bucket 2-D points into square cells of a fixed size.

    Parameters
    ----------
    points:
        Array of shape ``(k, 2)`` with the points to index.
    cell_size:
        Side length of each square cell.  For radius-``R`` queries a cell
        size of ``R`` guarantees that all candidates live in the 3x3 block
        of cells around the query point.
    """

    def __init__(self, points, cell_size: float):
        self._points = as_points(points)
        self._cell_size = check_positive("cell_size", cell_size)
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        cells = np.floor(self._points / self._cell_size).astype(np.int64)
        for idx, (cx, cy) in enumerate(cells):
            self._buckets[(int(cx), int(cy))].append(idx)

    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._points.shape[0]

    @property
    def cell_size(self) -> float:
        """Side length of the hash cells."""
        return self._cell_size

    def _cell_of(self, point: np.ndarray) -> Tuple[int, int]:
        return (
            int(np.floor(point[0] / self._cell_size)),
            int(np.floor(point[1] / self._cell_size)),
        )

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within *radius* of *point* (inclusive).

        The query radius may exceed the cell size; the search window is
        enlarged accordingly.
        """
        p = as_point(point)
        check_positive("radius", radius, strict=False)
        reach = int(np.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(p)
        candidates: List[int] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                candidates.extend(self._buckets.get((cx + dx, cy + dy), ()))
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        diff = self._points[cand] - p
        dist = np.hypot(diff[:, 0], diff[:, 1])
        return np.sort(cand[dist <= radius])

    def query_radius_batch(self, points, radius: float) -> List[np.ndarray]:
        """Run :meth:`query_radius` for every row of *points*."""
        pts = as_points(points)
        return [self.query_radius(p, radius) for p in pts]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpatialHashGrid(points={self.num_points}, "
            f"cell_size={self._cell_size:g})"
        )
