"""Closed-form area/containment formulas for circles and triangles.

The circle–circle intersection area is the geometric backbone of the
``g(z)`` derivation (Theorem 1): the probability mass a deployment group
contributes to a sensor's neighbourhood is the Gaussian measure of the
intersection between the radio disk and rings around the deployment point.
The triangle predicates support the APIT localization baseline.
"""

from __future__ import annotations

import numpy as np

from repro.types import as_point, as_points

__all__ = [
    "disk_area",
    "circle_circle_intersection_area",
    "triangle_area",
    "point_in_triangle",
]


def disk_area(radius: float) -> float:
    """Area of a disk of the given *radius*."""
    if radius < 0:
        raise ValueError("radius must be >= 0")
    return float(np.pi * radius * radius)


def circle_circle_intersection_area(d, r1: float, r2: float) -> np.ndarray:
    """Area of the intersection of two disks whose centres are *d* apart.

    Vectorised over *d*.  Handles the containment (one disk inside the
    other) and disjoint cases.
    """
    if r1 < 0 or r2 < 0:
        raise ValueError("radii must be >= 0")
    d_arr = np.asarray(d, dtype=np.float64)
    scalar = d_arr.ndim == 0
    d_arr = np.atleast_1d(d_arr)
    out = np.zeros_like(d_arr)

    if r1 == 0.0 or r2 == 0.0:
        return float(out[0]) if scalar else out

    small, big = (r1, r2) if r1 <= r2 else (r2, r1)

    contained = d_arr <= big - small
    disjoint = d_arr >= r1 + r2
    partial = ~contained & ~disjoint

    out[contained] = np.pi * small * small

    if np.any(partial):
        dp = d_arr[partial]
        # Standard lens-area formula.
        alpha1 = np.clip((dp**2 + r1**2 - r2**2) / (2.0 * dp * r1), -1.0, 1.0)
        alpha2 = np.clip((dp**2 + r2**2 - r1**2) / (2.0 * dp * r2), -1.0, 1.0)
        term1 = r1 * r1 * np.arccos(alpha1)
        term2 = r2 * r2 * np.arccos(alpha2)
        radicand = (
            (-dp + r1 + r2) * (dp + r1 - r2) * (dp - r1 + r2) * (dp + r1 + r2)
        )
        term3 = 0.5 * np.sqrt(np.clip(radicand, 0.0, None))
        out[partial] = term1 + term2 - term3

    return float(out[0]) if scalar else out


def triangle_area(a, b, c) -> float:
    """Unsigned area of the triangle with vertices *a*, *b*, *c*."""
    pa, pb, pc = as_point(a), as_point(b), as_point(c)
    cross = (pb[0] - pa[0]) * (pc[1] - pa[1]) - (pb[1] - pa[1]) * (pc[0] - pa[0])
    return float(abs(cross) / 2.0)


def point_in_triangle(points, a, b, c, *, eps: float = 1e-12) -> np.ndarray:
    """Boolean mask of which *points* lie inside (or on) triangle ``abc``.

    Uses the sign-of-cross-product test, vectorised over the query points.
    Degenerate (zero-area) triangles contain no points.
    """
    pts = as_points(points)
    pa, pb, pc = as_point(a), as_point(b), as_point(c)

    if triangle_area(pa, pb, pc) <= eps:
        return np.zeros(pts.shape[0], dtype=bool)

    def _sign(p1, p2):
        return (pts[:, 0] - p2[0]) * (p1[1] - p2[1]) - (p1[0] - p2[0]) * (
            pts[:, 1] - p2[1]
        )

    d1 = _sign(pa, pb)
    d2 = _sign(pb, pc)
    d3 = _sign(pc, pa)
    has_neg = (d1 < -eps) | (d2 < -eps) | (d3 < -eps)
    has_pos = (d1 > eps) | (d2 > eps) | (d3 > eps)
    return ~(has_neg & has_pos)
