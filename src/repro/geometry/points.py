"""Vectorised point/distance kernels.

All functions take and return plain ``float64`` NumPy arrays following the
conventions of :mod:`repro.types` (points are rows of ``(k, 2)`` arrays).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.types import Region, as_point, as_points

__all__ = [
    "distance",
    "pairwise_distances",
    "distances_to_point",
    "random_point_at_distance",
    "random_points_at_distance",
    "points_on_circle",
]


def distance(a, b) -> float:
    """Euclidean distance between two single points."""
    pa = as_point(a)
    pb = as_point(b)
    return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))


def distances_to_point(points, point) -> np.ndarray:
    """Euclidean distances from each row of *points* to a single *point*."""
    pts = as_points(points)
    p = as_point(point)
    diff = pts - p
    return np.hypot(diff[:, 0], diff[:, 1])


def pairwise_distances(a, b=None) -> np.ndarray:
    """Dense matrix of Euclidean distances between two point sets.

    ``out[i, j]`` is the distance from ``a[i]`` to ``b[j]``; when *b* is
    omitted the distances within *a* are returned.  Uses broadcasting rather
    than ``scipy.spatial.distance.cdist`` to avoid an extra dependency on the
    hot path, and is only intended for moderate sizes (the network substrate
    uses a KD-tree for large node counts).
    """
    pa = as_points(a)
    pb = pa if b is None else as_points(b)
    diff = pa[:, None, :] - pb[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def points_on_circle(center, radius: float, num: int) -> np.ndarray:
    """Return *num* points evenly spaced on the circle of *radius* around *center*."""
    if num < 1:
        raise ValueError("num must be >= 1")
    if radius < 0:
        raise ValueError("radius must be >= 0")
    c = as_point(center)
    angles = np.linspace(0.0, 2.0 * np.pi, num, endpoint=False)
    return np.column_stack(
        [c[0] + radius * np.cos(angles), c[1] + radius * np.sin(angles)]
    )


def random_point_at_distance(
    rng: np.random.Generator,
    origin,
    dist: float,
    *,
    region: Optional[Region] = None,
    max_tries: int = 256,
) -> np.ndarray:
    """Sample a point exactly *dist* metres from *origin*, uniform in angle.

    When *region* is given the sample is rejected until it falls inside the
    region (this is how the D-anomaly attack keeps the spoofed location within
    the deployment field).  If no direction keeps the point inside the region
    after *max_tries* attempts, the point is clipped onto the region boundary
    as a last resort (this can only happen for origins closer than *dist* to
    every boundary, i.e. very large D).
    """
    o = as_point(origin)
    if dist < 0:
        raise ValueError("dist must be >= 0")
    for _ in range(max_tries):
        theta = rng.uniform(0.0, 2.0 * np.pi)
        candidate = o + dist * np.array([np.cos(theta), np.sin(theta)])
        if region is None or region.contains_point(candidate):
            return candidate
    # Fall back to the clipped candidate closest to the requested distance.
    assert region is not None
    thetas = np.linspace(0.0, 2.0 * np.pi, 64, endpoint=False)
    candidates = o + dist * np.column_stack([np.cos(thetas), np.sin(thetas)])
    clipped = region.clip(candidates)
    dists = distances_to_point(clipped, o)
    best = int(np.argmin(np.abs(dists - dist)))
    return clipped[best]


def random_points_at_distance(
    rng: np.random.Generator,
    origins,
    dist: float,
    *,
    region: Optional[Region] = None,
    max_tries: int = 256,
) -> np.ndarray:
    """Vectorised batch version of :func:`random_point_at_distance`.

    Each row of *origins* receives an independently sampled direction; rows
    whose candidate falls outside *region* are re-sampled until they all fit
    (or *max_tries* is exhausted, after which the stragglers fall back to the
    scalar routine).
    """
    pts = as_points(origins)
    n = pts.shape[0]
    out = np.empty_like(pts)
    pending = np.arange(n)
    for _ in range(max_tries):
        if pending.size == 0:
            break
        theta = rng.uniform(0.0, 2.0 * np.pi, size=pending.size)
        cand = pts[pending] + dist * np.column_stack([np.cos(theta), np.sin(theta)])
        if region is None:
            out[pending] = cand
            pending = pending[:0]
            break
        ok = region.contains(cand)
        out[pending[ok]] = cand[ok]
        pending = pending[~ok]
    for idx in pending:
        out[idx] = random_point_at_distance(
            rng, pts[idx], dist, region=region, max_tries=max_tries
        )
    return out
