"""The Dec-Bounded and Dec-Only attack classes (paper Definitions 4 and 5).

The four concrete attack primitives (silence, impersonation,
multi-impersonation, range-change) combine into a space of observation
manipulations, but the paper shows that every combination obeys one of two
constraint sets relative to the honest observation ``a``:

* **Dec-Bounded** — every ``o_i`` may be arbitrarily *larger* than ``a_i``
  (the adversary can always inject claims), but the total *decrease*
  ``Σ_{i: a_i > o_i} (a_i − o_i)`` is bounded by the number of compromised
  neighbours ``x`` (only a silence attack can remove a count, one per
  compromised node);
* **Dec-Only** — with per-link authentication, wormhole detection and no
  physical node movement, increases are impossible; only silence attacks
  remain, so ``o_i ≤ a_i`` for every group and ``Σ_i (a_i − o_i) ≤ x``.

An :class:`AttackClass` answers two questions: *is a given tainted
observation feasible?* and *what is the feasible range of each entry?*  The
greedy adversary of :mod:`repro.attacks.greedy` optimises within those
ranges.
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro.attacks.base import AttackBudget
from repro.registry import Registry

__all__ = [
    "AttackClass",
    "DecBoundedAttack",
    "DecOnlyAttack",
    "ATTACKS",
    "resolve_attack_class",
    "get_attack_class",
    "validate_attack",
]

#: Registry of attack classes; third-party constraint sets plug in with
#: ``@ATTACKS.register(...)`` (also exposed as :func:`repro.attacks.register`).
ATTACKS = Registry("attack class")

#: Numerical slack used when validating feasibility of real-valued
#: observations.
_FEASIBILITY_TOL = 1e-9


class AttackClass(abc.ABC):
    """A constraint set on tainted observations relative to the honest one."""

    #: Canonical short name used in configs and reports.
    name: str = "abstract"

    #: Name used in the paper's figures.
    paper_name: str = "abstract"

    #: Whether this class allows observation entries to increase.
    allows_increase: bool = True

    #: Whether the class manipulates the victim's observation vector.  The
    #: paper's Dec-* classes do (the greedy adversary optimises within
    #: :meth:`entry_bounds`); physical-layer modality attacks
    #: (:mod:`repro.attacks.modality`) leave the neighbour counts honest
    #: and instead displace the localization result itself.
    taints_observation: bool = True

    #: The measurement modality the class manipulates (``"rssi"``,
    #: ``"tdoa"``, ...), or ``None`` for the paper's modality-agnostic
    #: observation attacks.
    modality: Union[str, None] = None

    def effective_damage(self, degree_of_damage: float, localizer=None) -> float:
        """The localization displacement this class realises against *localizer*.

        The paper's observation attacks spoof the declared position
        directly, so the requested degree of damage ``D`` is achieved
        verbatim (the default).  Modality-targeted attacks override this:
        their displacement is capped by the physics of the manipulated
        channel, and collapses to ``0`` against a localizer whose
        :attr:`~repro.localization.base.LocalizationScheme.modalities` do
        not include the attacked one.
        """
        return float(degree_of_damage)

    @abc.abstractmethod
    def is_feasible(
        self,
        honest_observation: np.ndarray,
        tainted_observation: np.ndarray,
        budget: Union[AttackBudget, int],
        *,
        group_size: float | None = None,
    ) -> bool:
        """Whether *tainted_observation* is reachable from the honest one."""

    @abc.abstractmethod
    def entry_bounds(
        self,
        honest_observation: np.ndarray,
        budget: Union[AttackBudget, int],
        *,
        group_size: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-entry ``(lower, upper)`` bounds ignoring the shared decrease budget.

        The *total* decrease budget couples the entries and is enforced
        separately by :meth:`is_feasible`; these bounds describe what each
        entry could reach if the whole budget were spent on it.
        """

    @staticmethod
    def _budget_value(budget: Union[AttackBudget, int]) -> int:
        if isinstance(budget, AttackBudget):
            return budget.compromised_nodes
        return int(budget)

    def __repr__(self) -> str:
        # Stable across instances and processes: attack classes are
        # stateless, and artifact fingerprints embed this repr.
        return f"{type(self).__name__}()"


@ATTACKS.register("decbounded")
class DecBoundedAttack(AttackClass):
    """Decrease-Bounded attacks (Definition 4).

    Increases are unbounded (up to the physical group size when known);
    the summed decreases are bounded by the number of compromised
    neighbours.
    """

    name = "dec_bounded"
    paper_name = "Dec-Bounded Attack"
    allows_increase = True

    def is_feasible(
        self,
        honest_observation,
        tainted_observation,
        budget,
        *,
        group_size=None,
    ):
        a = np.asarray(honest_observation, dtype=np.float64)
        o = np.asarray(tainted_observation, dtype=np.float64)
        if a.shape != o.shape:
            raise ValueError("observations must have the same shape")
        if np.any(o < -_FEASIBILITY_TOL):
            return False
        if group_size is not None and np.any(o > float(group_size) + _FEASIBILITY_TOL):
            return False
        decreases = np.clip(a - o, 0.0, None).sum()
        return bool(decreases <= self._budget_value(budget) + _FEASIBILITY_TOL)

    def entry_bounds(self, honest_observation, budget, *, group_size=None):
        a = np.asarray(honest_observation, dtype=np.float64)
        x = float(self._budget_value(budget))
        lower = np.clip(a - x, 0.0, None)
        if group_size is None:
            upper = np.full_like(a, np.inf)
        else:
            upper = np.full_like(a, float(group_size))
        return lower, upper


@ATTACKS.register("deconly")
class DecOnlyAttack(AttackClass):
    """Decrease-Only attacks (Definition 5).

    Authentication plus wormhole detection removes every channel for
    *increasing* counts; the adversary can only silence compromised
    neighbours, so every entry may only go down and the total decrease is
    bounded by the number of compromised neighbours.
    """

    name = "dec_only"
    paper_name = "Dec-Only Attack"
    allows_increase = False

    def is_feasible(
        self,
        honest_observation,
        tainted_observation,
        budget,
        *,
        group_size=None,
    ):
        a = np.asarray(honest_observation, dtype=np.float64)
        o = np.asarray(tainted_observation, dtype=np.float64)
        if a.shape != o.shape:
            raise ValueError("observations must have the same shape")
        if np.any(o < -_FEASIBILITY_TOL):
            return False
        if np.any(o > a + _FEASIBILITY_TOL):
            return False
        decreases = np.clip(a - o, 0.0, None).sum()
        return bool(decreases <= self._budget_value(budget) + _FEASIBILITY_TOL)

    def entry_bounds(self, honest_observation, budget, *, group_size=None):
        a = np.asarray(honest_observation, dtype=np.float64)
        x = float(self._budget_value(budget))
        lower = np.clip(a - x, 0.0, None)
        upper = a.copy()
        return lower, upper


def resolve_attack_class(attack: Union[str, AttackClass]) -> AttackClass:
    """Resolve an attack-class name through :data:`ATTACKS` (instances pass)."""
    return ATTACKS.resolve(attack)


#: Legacy alias kept for one release; prefer ``repro.attacks.create(name)``.
get_attack_class = resolve_attack_class


def validate_attack(
    attack: Union[str, AttackClass],
    honest_observation: np.ndarray,
    tainted_observation: np.ndarray,
    budget: Union[AttackBudget, int],
    *,
    group_size: float | None = None,
) -> None:
    """Raise ``ValueError`` when a tainted observation violates its attack class."""
    cls = resolve_attack_class(attack)
    if not cls.is_feasible(
        honest_observation, tainted_observation, budget, group_size=group_size
    ):
        raise ValueError(
            f"tainted observation is not feasible under the {cls.paper_name}"
        )
