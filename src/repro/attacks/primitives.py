"""Concrete attack primitives (paper Section 6, Figure 3).

Each primitive manipulates either the victim's received announcements or
the network itself:

* :class:`SilenceAttack` — a compromised node keeps quiet, removing one
  count from its own group;
* :class:`ImpersonationAttack` — a compromised node claims membership of a
  different group, moving one count between groups;
* :class:`MultiImpersonationAttack` — without pairwise authentication a
  compromised node floods many claims, adding arbitrary counts to arbitrary
  groups;
* :class:`RangeChangeAttack` — the compromised node's effective range grows
  (higher transmit power, wormhole tunnelling, or physical relocation), so a
  victim outside its honest range now counts it.

These primitives operate at observation granularity (and, where it makes
sense, on the message-level :class:`~repro.network.messages.BroadcastLog`),
and they compose; the closed-form constraint classes in
:mod:`repro.attacks.constraints` describe what any composition can achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.attacks.base import ObservationAttack
from repro.network.messages import BroadcastLog, GroupAnnouncement
from repro.network.network import SensorNetwork
from repro.utils.rng import as_generator
from repro.utils.validation import check_int, check_positive

__all__ = [
    "SilenceAttack",
    "ImpersonationAttack",
    "MultiImpersonationAttack",
    "RangeChangeAttack",
]


@dataclass
class SilenceAttack(ObservationAttack):
    """Compromised neighbours stay silent during the announcement round.

    Each silenced node removes one count from *its own* group; up to
    ``budget.compromised_nodes`` counts can be removed in total.  The groups
    to silence are chosen uniformly at random among groups the victim
    actually heard (an adversary cannot silence a node that is not there).
    """

    name = "silence"

    def apply(self, honest_observation, budget, rng=None, **context):
        rng = as_generator(rng)
        o = np.asarray(honest_observation, dtype=np.float64).copy()
        remaining = int(budget)
        for _ in range(remaining):
            candidates = np.flatnonzero(o >= 1.0)
            if candidates.size == 0:
                break
            group = int(rng.choice(candidates))
            o[group] -= 1.0
        return o

    @staticmethod
    def silence_log(log: BroadcastLog, nodes: Iterable[int]) -> BroadcastLog:
        """Message-level form: drop every announcement sent by *nodes*."""
        silenced = set(int(n) for n in nodes)
        return BroadcastLog(
            receiver=log.receiver,
            messages=[m for m in log.messages if m.sender not in silenced],
        )


@dataclass
class ImpersonationAttack(ObservationAttack):
    """Compromised neighbours lie about their group membership.

    Each compromised node moves one count from its own group to a claimed
    group.  The claimed groups default to uniformly random choices but can
    be fixed via ``target_group``.
    """

    target_group: Optional[int] = None
    name = "impersonation"

    def apply(self, honest_observation, budget, rng=None, **context):
        rng = as_generator(rng)
        o = np.asarray(honest_observation, dtype=np.float64).copy()
        n_groups = o.size
        remaining = int(budget)
        for _ in range(remaining):
            dst = (
                int(self.target_group)
                if self.target_group is not None
                else int(rng.integers(0, n_groups))
            )
            # A rational impersonator lies about a *different* group, so the
            # destination is excluded from the source candidates when other
            # sources remain.
            sources = np.flatnonzero(o >= 1.0)
            non_dst = sources[sources != dst]
            if non_dst.size > 0:
                sources = non_dst
            if sources.size == 0:
                break
            src = int(rng.choice(sources))
            o[src] -= 1.0
            o[dst] += 1.0
        return o

    @staticmethod
    def impersonate_log(
        log: BroadcastLog, node: int, claimed_group: int
    ) -> BroadcastLog:
        """Message-level form: rewrite the group claimed by *node*."""
        messages = []
        for m in log.messages:
            if m.sender == int(node):
                messages.append(
                    GroupAnnouncement(
                        sender=m.sender,
                        claimed_group=int(claimed_group),
                        authenticated=m.authenticated,
                    )
                )
            else:
                messages.append(m)
        return BroadcastLog(receiver=log.receiver, messages=messages)


@dataclass
class MultiImpersonationAttack(ObservationAttack):
    """Flood forged announcements claiming membership of many groups.

    Without pairwise authentication a single compromised node can send an
    arbitrary number of messages appearing to come from any group, so the
    per-group counts it adds are unbounded.  ``claims_per_node`` controls
    the forged volume per compromised node; ``target_groups`` optionally
    restricts which groups receive forged counts.
    """

    claims_per_node: int = 10
    target_groups: Optional[Sequence[int]] = None
    name = "multi_impersonation"

    def __post_init__(self) -> None:
        check_int("claims_per_node", self.claims_per_node, minimum=1)

    def apply(self, honest_observation, budget, rng=None, **context):
        rng = as_generator(rng)
        o = np.asarray(honest_observation, dtype=np.float64).copy()
        n_groups = o.size
        groups = (
            np.asarray(self.target_groups, dtype=np.int64)
            if self.target_groups is not None
            else np.arange(n_groups)
        )
        total_claims = int(budget) * self.claims_per_node
        if total_claims > 0 and groups.size > 0:
            chosen = rng.choice(groups, size=total_claims, replace=True)
            o += np.bincount(chosen, minlength=n_groups)
        return o

    @staticmethod
    def forge_log(
        log: BroadcastLog, claims: Sequence[int]
    ) -> BroadcastLog:
        """Message-level form: inject unauthenticated forged announcements."""
        forged = [
            GroupAnnouncement(sender=-1, claimed_group=int(g), authenticated=False)
            for g in claims
        ]
        return BroadcastLog(receiver=log.receiver, messages=list(log.messages) + forged)


@dataclass
class RangeChangeAttack(ObservationAttack):
    """Enlarge compromised nodes' effective range so distant victims hear them.

    At observation granularity the effect is additional counts on the
    compromised nodes' groups (one per compromised node brought into range).
    The :meth:`apply_to_network` form mutates the network's per-node ranges,
    which the :class:`~repro.network.neighbors.NeighborIndex` honours; that
    path also models wormhole tunnelling and physical relocation.
    """

    range_multiplier: float = 2.0
    name = "range_change"

    def __post_init__(self) -> None:
        check_positive("range_multiplier", self.range_multiplier)
        if self.range_multiplier < 1.0:
            raise ValueError("range_multiplier must be >= 1")

    def apply(self, honest_observation, budget, rng=None, **context):
        rng = as_generator(rng)
        o = np.asarray(honest_observation, dtype=np.float64).copy()
        n_groups = o.size
        remaining = int(budget)
        if remaining > 0:
            groups = rng.integers(0, n_groups, size=remaining)
            o += np.bincount(groups, minlength=n_groups)
        return o

    def apply_to_network(
        self, network: SensorNetwork, compromised_nodes: Iterable[int]
    ) -> SensorNetwork:
        """Return a copy of *network* with the compromised ranges enlarged."""
        tampered = network.copy()
        nominal = network.radio.nominal_range
        for node in compromised_nodes:
            tampered.set_node_range(int(node), nominal * self.range_multiplier)
            tampered.mark_compromised([int(node)])
        return tampered
