"""Shared attack abstractions.

An *observation attack* transforms a victim's honest observation vector
``a`` into a tainted observation ``o`` subject to a budget of compromised
neighbours.  A *budget* records how many compromised neighbours are
available in total and how many silence-attack decreases remain (each unit
of decrease consumes one compromised node from the silenced group, paper
Section 6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_int

__all__ = ["AttackBudget", "ObservationAttack"]


@dataclass
class AttackBudget:
    """Adversary budget for a single victim's neighbourhood.

    Attributes
    ----------
    compromised_nodes:
        Number of compromised nodes inside the victim's neighbourhood
        (``x`` in the paper's attack definitions, as an absolute count).
    """

    compromised_nodes: int

    def __post_init__(self) -> None:
        check_int("compromised_nodes", self.compromised_nodes, minimum=0)

    @classmethod
    def from_fraction(cls, neighbor_count: int, fraction: float) -> "AttackBudget":
        """Budget corresponding to compromising *fraction* of the neighbours.

        The paper sweeps "the percentage of compromised nodes" (e.g. 10 %,
        20 %, 30 % of the victim's neighbourhood); this constructor rounds to
        the nearest whole node.
        """
        check_int("neighbor_count", neighbor_count, minimum=0)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        return cls(compromised_nodes=int(round(neighbor_count * fraction)))

    def __int__(self) -> int:
        return self.compromised_nodes


class ObservationAttack(abc.ABC):
    """Base class of attacks that tamper with a victim's observation."""

    #: Human-readable attack name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def apply(
        self,
        honest_observation: np.ndarray,
        budget: AttackBudget,
        rng=None,
        **context,
    ) -> np.ndarray:
        """Return the tainted observation produced by this attack.

        Implementations must not mutate *honest_observation* in place.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
