"""Attacks on the localization phase itself.

Two kinds are modelled:

* :class:`DisplacementAttack` — the abstract D-anomaly attack used by the
  paper's evaluation (Section 7.1): the victim's estimated location is
  forced to a uniformly random point exactly ``D`` metres from its actual
  location.  This captures the *outcome* of any successful localization
  attack with degree of damage ``D`` without tying the evaluation to one
  specific localization vulnerability.
* :class:`BeaconLieAttack` and :func:`replay_beacon_attack` — concrete
  attacks against the beacon-based baselines (a compromised anchor declares
  a false position; an adversary replays beacon messages recorded in another
  area), used by the ``attack_resilience_study`` example to show how easily
  the baselines are displaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.geometry.points import random_point_at_distance, random_points_at_distance
from repro.localization.base import BeaconInfrastructure
from repro.types import Region, as_point, as_points
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["DisplacementAttack", "BeaconLieAttack", "replay_beacon_attack"]


@dataclass
class DisplacementAttack:
    """Force an estimated location exactly ``D`` metres from the actual one.

    Parameters
    ----------
    degree_of_damage:
        The targeted localization error ``D`` in metres (Definition 3).
    keep_inside_region:
        Resample the displacement direction until the spoofed location lies
        inside the deployment region (on by default so the spoofed location
        remains plausible; the paper's deployment area is large relative to
        ``D`` so this rarely triggers).
    """

    degree_of_damage: float
    keep_inside_region: bool = True

    def __post_init__(self) -> None:
        check_positive("degree_of_damage", self.degree_of_damage, strict=False)

    def spoof_location(
        self, actual_location, rng=None, *, region: Optional[Region] = None
    ) -> np.ndarray:
        """Spoofed estimated location for a single victim."""
        generator = as_generator(rng)
        constraint = region if self.keep_inside_region else None
        return random_point_at_distance(
            generator,
            as_point(actual_location),
            self.degree_of_damage,
            region=constraint,
        )

    def spoof_locations(
        self, actual_locations, rng=None, *, region: Optional[Region] = None
    ) -> np.ndarray:
        """Spoofed estimated locations for a batch of victims."""
        generator = as_generator(rng)
        constraint = region if self.keep_inside_region else None
        return random_points_at_distance(
            generator,
            as_points(actual_locations),
            self.degree_of_damage,
            region=constraint,
        )


@dataclass
class BeaconLieAttack:
    """A compromised beacon declares a position far from its true one.

    Parameters
    ----------
    displacement:
        How far (metres) the declared position is moved from the true one.
    """

    displacement: float = 400.0

    def __post_init__(self) -> None:
        check_positive("displacement", self.displacement)

    def apply(
        self,
        beacons: BeaconInfrastructure,
        compromised: Sequence[int],
        rng=None,
        *,
        region: Optional[Region] = None,
    ) -> BeaconInfrastructure:
        """Return a copy of *beacons* where *compromised* anchors lie.

        Each compromised beacon's declared position is displaced by
        ``displacement`` metres in a random direction (kept inside *region*
        when provided).
        """
        generator = as_generator(rng)
        tampered = BeaconInfrastructure(
            positions=beacons.positions.copy(),
            transmit_range=beacons.transmit_range,
            declared_positions=beacons.declared_positions.copy(),
            compromised=beacons.compromised.copy(),
        )
        for beacon in compromised:
            beacon = int(beacon)
            false_position = random_point_at_distance(
                generator,
                beacons.positions[beacon],
                self.displacement,
                region=region,
            )
            tampered.declare_false_position(beacon, false_position)
        return tampered


def replay_beacon_attack(
    beacons: BeaconInfrastructure,
    replayed_beacon: int,
    replay_location,
) -> BeaconInfrastructure:
    """Replay a remote beacon's announcement near a victim.

    The adversary records beacon *replayed_beacon*'s (authentic) message in
    its original area and re-transmits it at *replay_location*.  The message
    content — the declared position — is unchanged, but it now appears
    audible from the replay location, which is modelled by adding a phantom
    beacon whose true position is the replay location and whose declared
    position is the replayed beacon's.

    No beacon needs to be compromised for this attack; it defeats schemes
    that trust message authenticity alone.
    """
    replay_location = as_point(replay_location)
    positions = np.vstack([beacons.positions, replay_location[None, :]])
    declared = np.vstack(
        [
            beacons.declared_positions,
            beacons.declared_positions[int(replayed_beacon)][None, :],
        ]
    )
    compromised = np.concatenate([beacons.compromised, [True]])
    return BeaconInfrastructure(
        positions=positions,
        transmit_range=beacons.transmit_range,
        declared_positions=declared,
        compromised=compromised,
    )
