"""Adversary models (paper Section 6).

Two layers of attack are modelled:

* **attacks on localization** (:mod:`repro.attacks.localization_attacks`) —
  the D-anomaly displacement used in the evaluation, plus concrete
  beacon-compromise attacks against the beacon-based baselines;
* **attacks on the detection scheme itself**
  (:mod:`repro.attacks.primitives`, :mod:`repro.attacks.constraints`,
  :mod:`repro.attacks.greedy`) — the silence / impersonation /
  multi-impersonation / range-change primitives, the Dec-Bounded and
  Dec-Only attack classes that generalise them, and the greedy adversary
  that taints the victim's observation to minimise a chosen detection
  metric (the evaluation procedure of Section 7.1).
"""

from repro.attacks.base import ObservationAttack, AttackBudget
from repro.attacks.constraints import (
    ATTACKS as registry,
    AttackClass,
    DecBoundedAttack,
    DecOnlyAttack,
    resolve_attack_class,
    get_attack_class,
    validate_attack,
)
from repro.attacks.primitives import (
    SilenceAttack,
    ImpersonationAttack,
    MultiImpersonationAttack,
    RangeChangeAttack,
)
from repro.attacks.greedy import GreedyMetricMinimizer, taint_observation
from repro.attacks.modality import (
    ModalityAttack,
    RssiAmplificationAttack,
    TdoaTimingSkewAttack,
)
from repro.attacks.localization_attacks import (
    DisplacementAttack,
    BeaconLieAttack,
    replay_beacon_attack,
)
from repro.attacks.wormhole import WormholeAttack

# Bound registry operations: ``repro.attacks.create("dec_bounded")``,
# ``repro.attacks.available()``, ``@repro.attacks.register(...)``.
register = registry.register
create = registry.create
get = registry.get
resolve = registry.resolve
available = registry.available
aliases = registry.aliases

__all__ = [
    "ObservationAttack",
    "AttackBudget",
    "AttackClass",
    "DecBoundedAttack",
    "DecOnlyAttack",
    "registry",
    "register",
    "create",
    "get",
    "resolve",
    "available",
    "aliases",
    "resolve_attack_class",
    "get_attack_class",
    "validate_attack",
    "SilenceAttack",
    "ImpersonationAttack",
    "MultiImpersonationAttack",
    "RangeChangeAttack",
    "GreedyMetricMinimizer",
    "taint_observation",
    "ModalityAttack",
    "RssiAmplificationAttack",
    "TdoaTimingSkewAttack",
    "DisplacementAttack",
    "BeaconLieAttack",
    "replay_beacon_attack",
    "WormholeAttack",
]
