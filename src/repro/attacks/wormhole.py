"""Wormhole attacks (Hu, Perrig, Johnson) as a range-change mechanism.

A wormhole records packets at one end, tunnels them out of band, and replays
them at the other end.  In the context of LAD (paper Section 6) the effect
is that announcements from nodes around the wormhole's *source* end become
audible around its *sink* end, inflating the victim's observation of the
source-side groups — i.e. a range-change attack that does not require
compromising the tunnelled nodes.

:class:`WormholeAttack` operates on the message-level broadcast simulation:
it collects the announcements audible at the source end and injects them
into the logs of receivers near the sink end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.network.messages import BroadcastLog, GroupAnnouncement
from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.types import as_point
from repro.utils.validation import check_positive

__all__ = ["WormholeAttack"]


@dataclass
class WormholeAttack:
    """Tunnel announcements from *source_end* to *sink_end*.

    Parameters
    ----------
    source_end, sink_end:
        Coordinates of the two wormhole endpoints.
    pickup_radius:
        Radius (metres) around the source end within which announcements are
        recorded.  Defaults to the network's nominal radio range when
        ``None``.
    authenticated_passthrough:
        Whether the tunnelled messages still verify authentication at the
        receiver.  Replayed authentic messages do verify (the wormhole does
        not modify them), which is why wormhole *detection* — not plain
        authentication — is required to rule this channel out (Section 6.2).
    """

    source_end: np.ndarray
    sink_end: np.ndarray
    pickup_radius: Optional[float] = None
    authenticated_passthrough: bool = True

    def __post_init__(self) -> None:
        self.source_end = as_point(self.source_end)
        self.sink_end = as_point(self.sink_end)
        if self.pickup_radius is not None:
            check_positive("pickup_radius", self.pickup_radius)

    def tunneled_announcements(
        self, network: SensorNetwork, index: Optional[NeighborIndex] = None
    ) -> list[GroupAnnouncement]:
        """Announcements recorded at the source end of the wormhole."""
        idx = index or NeighborIndex(network)
        radius = self.pickup_radius or network.radio.nominal_range
        picked_up = idx.neighbors_of_point(self.source_end)
        positions = network.positions[picked_up]
        diff = positions - self.source_end
        within = np.hypot(diff[:, 0], diff[:, 1]) <= radius
        senders = picked_up[within]
        return [
            GroupAnnouncement(
                sender=int(s),
                claimed_group=int(network.group_ids[s]),
                authenticated=self.authenticated_passthrough,
            )
            for s in senders
        ]

    def inject(
        self,
        network: SensorNetwork,
        logs: Dict[int, BroadcastLog],
        *,
        index: Optional[NeighborIndex] = None,
        delivery_radius: Optional[float] = None,
    ) -> Dict[int, BroadcastLog]:
        """Deliver the tunnelled announcements to receivers near the sink end.

        Returns a new mapping; the input *logs* are not modified.
        """
        idx = index or NeighborIndex(network)
        radius = delivery_radius or network.radio.nominal_range
        tunnelled = self.tunneled_announcements(network, idx)

        out: Dict[int, BroadcastLog] = {}
        for receiver, log in logs.items():
            new_log = BroadcastLog(receiver=receiver, messages=list(log.messages))
            pos = network.positions[receiver]
            if float(np.hypot(*(pos - self.sink_end))) <= radius:
                # A receiver does not count its own tunnelled announcement.
                new_log.extend(m for m in tunnelled if m.sender != receiver)
            out[receiver] = new_log
        return out

    def tunnel_length(self) -> float:
        """Distance between the two wormhole endpoints."""
        return float(np.hypot(*(self.source_end - self.sink_end)))
