"""Modality-aware physical-layer attacks.

The paper's Dec-Bounded/Dec-Only adversaries manipulate the victim's
*observation vector* — they assume the attacker already controls the
declared position and optimise the neighbour counts around it.  The
attacks in this module model the opposite end of the spectrum: an
adversary that attacks the localization *measurement channel* itself
(amplifying beacon signals, skewing arrival timestamps) and cannot touch
the neighbour counts at all.

Two properties follow and both are encoded on the class:

* ``taints_observation = False`` — the victim's observation stays honest;
  the evaluation pipeline skips the greedy taint entirely.  Detection is
  therefore *easier* than against a Dec-* adversary at equal displacement
  — the interesting question is the displacement itself.
* :meth:`~repro.attacks.constraints.AttackClass.effective_damage` gates
  on the localizer: an RSSI amplifier displaces an RSSI path-loss
  estimate but does nothing to DV-Hop's hop counts, and the realised
  displacement is capped by the physics of the channel (dB of gain, ns of
  skew) rather than the requested ``D``.  Sweeping the same attack over
  every registered localizer yields the localizer × attack robustness
  matrix (``figM``).

The constraint-set interface is still honoured so the classes drop into
every existing sweep axis: feasibility admits only the *unchanged*
observation, and :meth:`entry_bounds` pins each entry to its honest value.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.constraints import _FEASIBILITY_TOL, ATTACKS, AttackClass
from repro.utils.validation import check_positive

__all__ = ["ModalityAttack", "RssiAmplificationAttack", "TdoaTimingSkewAttack"]

#: Default radio propagation speed (metres/second) converting timing skew
#: into equivalent range error.
SPEED_OF_LIGHT = 299_792_458.0


class ModalityAttack(AttackClass):
    """Base class of physical-layer attacks on one measurement modality.

    Subclasses define :attr:`modality` plus the physical knobs and
    implement :meth:`max_displacement` — the largest localization error
    the channel manipulation can induce.  Everything else (no observation
    tainting, modality gating) is shared.
    """

    taints_observation = False
    allows_increase = False

    def max_displacement(self) -> float:
        """Largest localization displacement the channel physics allow."""
        raise NotImplementedError

    def effective_damage(self, degree_of_damage: float, localizer=None) -> float:
        damage = float(degree_of_damage)
        if localizer is not None and self.modality not in getattr(
            localizer, "modalities", ()
        ):
            # The target scheme never reads the attacked channel: the
            # manipulation displaces nothing.
            return 0.0
        return min(damage, self.max_displacement())

    def is_feasible(
        self,
        honest_observation,
        tainted_observation,
        budget,
        *,
        group_size=None,
    ):
        a = np.asarray(honest_observation, dtype=np.float64)
        o = np.asarray(tainted_observation, dtype=np.float64)
        if a.shape != o.shape:
            raise ValueError("observations must have the same shape")
        # The channel attacker has no handle on neighbour counts: only the
        # honest observation itself is reachable.
        return bool(np.all(np.abs(a - o) <= _FEASIBILITY_TOL))

    def entry_bounds(self, honest_observation, budget, *, group_size=None):
        a = np.asarray(honest_observation, dtype=np.float64)
        return a.copy(), a.copy()


@ATTACKS.register("rssi_amplification")
class RssiAmplificationAttack(ModalityAttack):
    """Beacon-signal amplification against RSSI ranging.

    An attacker re-radiating (or attenuating) beacon transmissions shifts
    every reading by ``gain_db``; under the log-distance model a reading
    off by ``G`` dB mis-ranges a beacon at distance ``d`` to
    ``d * 10^(G / (10 eta))``.  Evaluated at the typical beacon distance
    ``reference_range``, the inducible localization error is capped at
    ``reference_range * (10^(gain_db / (10 * path_loss_exponent)) - 1)``.

    Parameters
    ----------
    gain_db:
        Magnitude of the signal-strength manipulation in dB.
    path_loss_exponent:
        Path-loss exponent ``eta`` of the attacked radio environment.
    reference_range:
        Typical beacon distance (metres) the gain is converted at —
        usually the beacon transmit range.
    """

    name = "rssi_amp"
    paper_name = "RSSI Amplification"
    modality = "rssi"

    def __init__(
        self,
        gain_db: float = 6.0,
        path_loss_exponent: float = 2.0,
        reference_range: float = 250.0,
    ):
        self.gain_db = check_positive("gain_db", gain_db)
        self.path_loss_exponent = check_positive(
            "path_loss_exponent", path_loss_exponent
        )
        self.reference_range = check_positive("reference_range", reference_range)

    def max_displacement(self) -> float:
        stretch = 10.0 ** (self.gain_db / (10.0 * self.path_loss_exponent)) - 1.0
        return self.reference_range * stretch

    def __repr__(self) -> str:
        # Parameterised (unlike the stateless Dec-* classes): the knobs
        # change results, so they must reach the artifact fingerprints.
        return (
            f"{type(self).__name__}(gain_db={self.gain_db!r}, "
            f"path_loss_exponent={self.path_loss_exponent!r}, "
            f"reference_range={self.reference_range!r})"
        )


@ATTACKS.register("tdoa_timing_skew")
class TdoaTimingSkewAttack(ModalityAttack):
    """Arrival-timestamp skew against TDOA ranging.

    Delaying (or replaying) beacon transmissions by ``skew_ns``
    nanoseconds shifts the corresponding range differences by
    ``skew_ns * propagation_speed`` metres — the cap on the inducible
    localization error.

    Parameters
    ----------
    skew_ns:
        Magnitude of the timing manipulation in nanoseconds.
    propagation_speed:
        Signal propagation speed in metres/second (RF defaults to the
        speed of light; acoustic deployments pass ~343).
    """

    name = "tdoa_skew"
    paper_name = "TDOA Timing Skew"
    modality = "tdoa"

    def __init__(
        self,
        skew_ns: float = 500.0,
        propagation_speed: float = SPEED_OF_LIGHT,
    ):
        self.skew_ns = check_positive("skew_ns", skew_ns)
        self.propagation_speed = check_positive(
            "propagation_speed", propagation_speed
        )

    def max_displacement(self) -> float:
        return self.skew_ns * 1e-9 * self.propagation_speed

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(skew_ns={self.skew_ns!r}, "
            f"propagation_speed={self.propagation_speed!r})"
        )
