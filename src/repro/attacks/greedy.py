"""The greedy metric-minimising adversary (paper Section 7.1).

After displacing the victim's estimated location, the adversary taints the
victim's observation so that the chosen detection metric becomes as small as
possible, subject to the constraints of the attack class (Dec-Bounded or
Dec-Only).  The paper sketches the procedure for the Diff metric under
Dec-Bounded attacks; this module implements the analogous optimal/greedy
procedure for every (attack class x metric) combination:

* **Diff metric** — entries with ``µ_i > a_i`` are raised to ``µ_i`` for free
  (Dec-Bounded only); entries with ``a_i > µ_i`` are lowered toward ``µ_i``
  using the shared decrease budget.  Every unit of decrease reduces the
  metric by exactly one, so the allocation order does not affect the final
  metric value; the implementation spends the budget on the largest
  discrepancies first (deterministic and what a rational adversary would do
  if interrupted).
* **Add-all metric** — raising an entry can never lower ``Σ max(o_i, µ_i)``,
  so both attack classes reduce to the same decrease-allocation problem as
  the Diff metric's second stage.
* **Probability metric** — each per-group binomial pmf is unimodal in
  ``o_i`` with mode ``⌊(m+1)·g_i⌋``; the adversary pushes every entry toward
  its mode (free increases under Dec-Bounded) and then spends the decrease
  budget one node at a time on whichever group currently has the smallest
  probability, stopping when the minimum can no longer be improved.

The tainted observations are real-valued by default (the paper's greedy sets
``o_i = µ_i`` exactly); ``integer_mode=True`` restricts the adversary to
whole-node manipulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.attacks.base import AttackBudget
from repro.attacks.constraints import AttackClass, resolve_attack_class
from repro.core.metrics import (
    AddAllMetric,
    AnomalyMetric,
    DiffMetric,
    ProbabilityMetric,
    resolve_metric,
)
from repro.utils.stats import binomial_log_pmf, binomial_mode

__all__ = ["GreedyMetricMinimizer", "taint_observation"]


def _allocate_decreases(
    honest: np.ndarray, targets: np.ndarray, budget
) -> np.ndarray:
    """Lower entries of *honest* toward *targets* spending at most *budget*.

    Entries where ``honest <= target`` are untouched.  The budget is spent on
    the largest gaps first; the final entry touched may receive a fractional
    decrease so that the full budget is used exactly when it is binding.

    Vectorised over victims: *honest*/*targets* may be ``(n,)`` vectors with
    a scalar budget or ``(k, n)`` batches with one budget per row.  Both
    shapes run the identical numpy operations row-wise (stable descending
    sort, exclusive prefix sums, clipped spends), so the batch result is
    bit-for-bit the stack of the per-row results.
    """
    honest = np.asarray(honest, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    single = honest.ndim == 1
    o = np.atleast_2d(honest)
    t = np.atleast_2d(targets)
    b = np.asarray(budget, dtype=np.float64).reshape(-1, 1)
    gaps = np.clip(o - t, 0.0, None)
    totals = gaps.sum(axis=1, keepdims=True)

    # Rows with enough budget close every gap completely (exactly to the
    # target); rows without any budget stay honest.
    out = np.where((totals <= b) & (gaps > 0), t, o)

    binding = ((totals > b) & (b > 0)).ravel()
    if np.any(binding):
        gaps_b = gaps[binding]
        order = np.argsort(-gaps_b, axis=1, kind="stable")
        sorted_gaps = np.take_along_axis(gaps_b, order, axis=1)
        # Exclusive prefix sum: budget remaining before each rank is spent.
        spent_before = np.concatenate(
            [
                np.zeros((sorted_gaps.shape[0], 1)),
                np.cumsum(sorted_gaps, axis=1)[:, :-1],
            ],
            axis=1,
        )
        remaining = b[binding] - spent_before
        spends_sorted = np.clip(np.minimum(sorted_gaps, remaining), 0.0, None)
        spends = np.empty_like(spends_sorted)
        np.put_along_axis(spends, order, spends_sorted, axis=1)
        out[binding] = o[binding] - spends
    return out[0] if single else out


@dataclass
class GreedyMetricMinimizer:
    """Adversary that taints an observation to minimise a detection metric.

    Parameters
    ----------
    metric:
        The detection metric the adversary is trying to evade (name or
        instance).
    attack_class:
        ``"dec_bounded"`` or ``"dec_only"`` (name or instance).
    integer_mode:
        Restrict manipulations to whole nodes.  Default ``False`` (the paper
        lets the adversary hit ``µ_i`` exactly).
    """

    metric: Union[str, AnomalyMetric] = "diff"
    attack_class: Union[str, AttackClass] = "dec_bounded"
    integer_mode: bool = False

    def __post_init__(self) -> None:
        self.metric = resolve_metric(self.metric)
        self.attack_class = resolve_attack_class(self.attack_class)

    # -- public API ----------------------------------------------------------

    def taint(
        self,
        honest_observation: np.ndarray,
        expected_observation: np.ndarray,
        budget: Union[AttackBudget, int],
        *,
        group_size: Optional[int] = None,
    ) -> np.ndarray:
        """Return the metric-minimising tainted observation for one victim.

        Parameters
        ----------
        honest_observation:
            The victim's untainted observation ``a``.
        expected_observation:
            The expected observation ``µ`` at the (spoofed) estimated
            location.
        budget:
            Number of compromised nodes in the victim's neighbourhood.
        group_size:
            Sensors per group ``m``; required by the Probability metric and
            used as the physical upper bound on any count.
        """
        a = np.asarray(honest_observation, dtype=np.float64)
        mu = np.asarray(expected_observation, dtype=np.float64)
        if a.shape != mu.shape or a.ndim != 1:
            raise ValueError("observations must be matching 1-D vectors")
        x = float(int(budget))

        if isinstance(self.metric, DiffMetric):
            tainted = self._taint_diff(a, mu, x, group_size)
        elif isinstance(self.metric, AddAllMetric):
            tainted = self._taint_add_all(a, mu, x)
        elif isinstance(self.metric, ProbabilityMetric):
            if group_size is None:
                raise ValueError("group_size is required for the Probability metric")
            tainted = self._taint_probability(a, mu, x, int(group_size))
        else:  # pragma: no cover - future metrics fall back to "no taint"
            tainted = a.copy()

        if self.integer_mode:
            tainted = self._round_feasible(a, tainted, x)
        return tainted

    def taint_batch(
        self,
        honest_observations: np.ndarray,
        expected_observations: np.ndarray,
        budgets: Sequence[Union[AttackBudget, int]],
        *,
        group_size: Optional[int] = None,
    ) -> np.ndarray:
        """Taint a whole batch of victims at once.

        For the Diff and Add-all metrics the allocation runs as one 2-D
        :func:`_allocate_decreases` over all victims with per-row budgets —
        bit-for-bit equal to calling :meth:`taint` per row, but without the
        Python-level loop.  The Probability metric's sequential greedy (and
        any future metric without a closed-form batch) falls back to the
        per-row path.
        """
        honest = np.asarray(honest_observations, dtype=np.float64)
        expected = np.asarray(expected_observations, dtype=np.float64)
        if honest.ndim != 2 or honest.shape != expected.shape:
            raise ValueError("batch inputs must be matching (k, n_groups) arrays")
        if len(budgets) != honest.shape[0]:
            raise ValueError("need one budget per victim")

        if isinstance(self.metric, (DiffMetric, AddAllMetric)):
            x = np.array([float(int(b)) for b in budgets], dtype=np.float64)
            if isinstance(self.metric, DiffMetric):
                tainted = self._taint_diff(honest, expected, x, group_size)
            else:
                tainted = self._taint_add_all(honest, expected, x)
            if self.integer_mode:
                for row in range(honest.shape[0]):
                    tainted[row] = self._round_feasible(
                        honest[row], tainted[row], x[row]
                    )
            return tainted

        out = np.empty_like(honest)
        for row in range(honest.shape[0]):
            out[row] = self.taint(
                honest[row], expected[row], budgets[row], group_size=group_size
            )
        return out

    # -- per-metric strategies ------------------------------------------------

    def _taint_diff(
        self, a: np.ndarray, mu: np.ndarray, x, group_size: Optional[int]
    ) -> np.ndarray:
        """Diff-metric taint; shape-generic (one victim or a ``(k, n)`` batch)."""
        if self.attack_class.allows_increase:
            # Free increases: match mu wherever the honest count is short.
            upper = float(group_size) if group_size is not None else np.inf
            o = np.where(mu > a, np.minimum(mu, upper), a.astype(np.float64))
        else:
            o = a.astype(np.float64).copy()
        return _allocate_decreases(o, np.minimum(mu, o), x)

    def _taint_add_all(self, a: np.ndarray, mu: np.ndarray, x) -> np.ndarray:
        # Increases never help; only decreases toward mu matter.
        # Shape-generic like _taint_diff.
        return _allocate_decreases(a.astype(np.float64), np.minimum(mu, a), x)

    def _taint_probability(
        self, a: np.ndarray, mu: np.ndarray, x: float, group_size: int
    ) -> np.ndarray:
        m = float(group_size)
        probs = np.clip(mu / m, 0.0, 1.0)
        modes = binomial_mode(m, probs)

        o = a.astype(np.float64).copy()
        if self.attack_class.allows_increase:
            o = np.where(modes > o, modes, o)

        remaining = x
        # Spend the decrease budget one node at a time on the group whose
        # probability is currently the smallest, as long as decreasing that
        # group moves it toward its mode.
        while remaining > 0:
            log_pmf = binomial_log_pmf(o, m, probs)
            order = np.argsort(log_pmf)
            progressed = False
            for idx in order:
                if o[idx] > modes[idx] and o[idx] > 0:
                    step = min(1.0, o[idx] - modes[idx], remaining)
                    if step <= 0:
                        continue
                    o[idx] -= step
                    remaining -= step
                    progressed = True
                    break
            if not progressed:
                break
        return o

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _round_feasible(a: np.ndarray, tainted: np.ndarray, x: float) -> np.ndarray:
        """Round a real-valued taint to whole nodes without exceeding the budget."""
        rounded = np.round(tainted)
        decreases = np.clip(a - rounded, 0.0, None)
        excess = decreases.sum() - x
        if excess <= 0:
            return rounded
        # Give back whole-node decreases (smallest benefit first) until the
        # budget constraint holds again.
        order = np.argsort(decreases)
        for idx in order[::-1]:
            while decreases[idx] >= 1.0 and excess > 0:
                rounded[idx] += 1.0
                decreases[idx] -= 1.0
                excess -= 1.0
            if excess <= 0:
                break
        return rounded


def taint_observation(
    honest_observation: np.ndarray,
    expected_observation: np.ndarray,
    budget: Union[AttackBudget, int],
    *,
    metric: Union[str, AnomalyMetric] = "diff",
    attack_class: Union[str, AttackClass] = "dec_bounded",
    group_size: Optional[int] = None,
    integer_mode: bool = False,
) -> np.ndarray:
    """Functional one-shot wrapper around :class:`GreedyMetricMinimizer`."""
    adversary = GreedyMetricMinimizer(
        metric=metric, attack_class=attack_class, integer_mode=integer_mode
    )
    return adversary.taint(
        honest_observation, expected_observation, budget, group_size=group_size
    )
