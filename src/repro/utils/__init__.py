"""Low-level utilities: seeded RNG handling, validation, lookup tables, stats."""

from repro.utils.rng import RandomState, spawn_rngs, as_generator
from repro.utils.tables import LookupTable1D
from repro.utils.stats import (
    empirical_percentile,
    rates_from_scores,
    roc_points,
    binomial_pmf,
    binomial_log_pmf,
)

__all__ = [
    "RandomState",
    "spawn_rngs",
    "as_generator",
    "LookupTable1D",
    "empirical_percentile",
    "rates_from_scores",
    "roc_points",
    "binomial_pmf",
    "binomial_log_pmf",
]
