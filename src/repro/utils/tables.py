"""One-dimensional lookup tables with linear interpolation.

Section 3.3 of the paper notes that the exact ``g(z)`` formula is too
expensive to evaluate on a sensor node and prescribes a table-lookup
approximation: the range of ``z`` is divided into ``ω`` equal sub-ranges,
``g`` is pre-computed at the ``ω + 1`` dividing points, and queries are
answered by linear interpolation in constant time.  :class:`LookupTable1D`
implements exactly that access pattern (vectorised over query batches).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.utils.validation import check_int, check_positive

__all__ = ["LookupTable1D"]


class LookupTable1D:
    """Piecewise-linear approximation of a scalar function on ``[lo, hi]``.

    Parameters
    ----------
    xs:
        Monotonically increasing knot positions (``ω + 1`` points).
    ys:
        Function values at the knots.
    clamp:
        When ``True`` (default) queries outside ``[lo, hi]`` are clamped to
        the boundary values; when ``False`` they are linearly extrapolated.
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray, *, clamp: bool = True):
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.ndim != 1 or ys.ndim != 1:
            raise ValueError("xs and ys must be one-dimensional")
        if xs.size != ys.size:
            raise ValueError("xs and ys must have the same length")
        if xs.size < 2:
            raise ValueError("a lookup table needs at least two knots")
        if np.any(np.diff(xs) <= 0):
            raise ValueError("xs must be strictly increasing")
        self._xs = xs
        self._ys = ys
        self._clamp = bool(clamp)
        spacing = np.diff(xs)
        self._uniform_spacing: Optional[float] = (
            float(spacing[0])
            if np.allclose(spacing, spacing[0], rtol=1e-9, atol=0.0)
            else None
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_function(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        lo: float,
        hi: float,
        num_intervals: int,
        *,
        clamp: bool = True,
    ) -> "LookupTable1D":
        """Tabulate *func* on ``num_intervals`` equal sub-ranges of [lo, hi].

        This mirrors the paper's ``ω`` parameter: the table stores
        ``num_intervals + 1`` values.
        """
        check_int("num_intervals", num_intervals, minimum=1)
        lo = float(lo)
        hi = float(hi)
        if hi <= lo:
            raise ValueError("hi must be greater than lo")
        xs = np.linspace(lo, hi, num_intervals + 1)
        ys = np.asarray(func(xs), dtype=np.float64)
        if ys.shape != xs.shape:
            raise ValueError("func must return one value per knot")
        return cls(xs, ys, clamp=clamp)

    # -- properties --------------------------------------------------------

    @property
    def knots(self) -> np.ndarray:
        """Knot positions (read-only view)."""
        view = self._xs.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Knot values (read-only view)."""
        view = self._ys.view()
        view.flags.writeable = False
        return view

    @property
    def num_intervals(self) -> int:
        """Number of sub-ranges (``ω`` in the paper)."""
        return self._xs.size - 1

    @property
    def domain(self) -> tuple[float, float]:
        """The tabulated interval ``(lo, hi)``."""
        return float(self._xs[0]), float(self._xs[-1])

    # -- evaluation --------------------------------------------------------

    def __call__(self, z: np.ndarray) -> np.ndarray:
        """Interpolate the table at *z* (scalar or array, any shape)."""
        z_arr = np.asarray(z, dtype=np.float64)
        if self._clamp:
            z_eval = np.clip(z_arr, self._xs[0], self._xs[-1])
            out = np.interp(z_eval, self._xs, self._ys)
        else:
            out = self._interp_extrapolate(z_arr)
        if np.isscalar(z) or z_arr.ndim == 0:
            return float(out)
        return out

    @property
    def is_uniform(self) -> bool:
        """Whether the knots are evenly spaced (enables :meth:`fast_lookup`)."""
        return self._uniform_spacing is not None

    def fast_lookup(self, z: np.ndarray) -> np.ndarray:
        """Linear interpolation via direct index arithmetic.

        For uniformly spaced knots (every table built by
        :meth:`from_function`) the bracketing interval is
        ``floor((z - lo) / Δx)`` — no binary search — which makes this
        several times faster than ``np.interp`` on large query batches.  The
        result matches :meth:`__call__` up to floating-point rounding
        (``np.interp`` factors the interpolation weight differently); the
        batched likelihood kernels use this path, the per-row reference path
        keeps ``np.interp``.  Non-uniform and extrapolating (``clamp=False``)
        tables fall back to the exact path.
        """
        if self._uniform_spacing is None or not self._clamp:
            return np.asarray(self(np.asarray(z, dtype=np.float64)), dtype=np.float64)
        lo = self._xs[0]
        position = np.clip(np.asarray(z, dtype=np.float64), lo, self._xs[-1])
        position -= lo
        position *= 1.0 / self._uniform_spacing
        index = np.minimum(position.astype(np.int64), self._xs.size - 2)
        weight = position - index
        lower = np.take(self._ys, index)
        return lower + weight * (np.take(self._ys, index + 1) - lower)

    def _interp_extrapolate(self, z: np.ndarray) -> np.ndarray:
        """Linear interpolation with linear extrapolation outside the domain."""
        out = np.interp(z, self._xs, self._ys)
        below = z < self._xs[0]
        above = z > self._xs[-1]
        if np.any(below):
            slope = (self._ys[1] - self._ys[0]) / (self._xs[1] - self._xs[0])
            out = np.where(below, self._ys[0] + slope * (z - self._xs[0]), out)
        if np.any(above):
            slope = (self._ys[-1] - self._ys[-2]) / (self._xs[-1] - self._xs[-2])
            out = np.where(above, self._ys[-1] + slope * (z - self._xs[-1]), out)
        return out

    def max_abs_error(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        samples: int = 1000,
    ) -> float:
        """Estimate the maximum absolute interpolation error against *func*.

        Used by the ``g(z)`` ablation benchmark to show how small ``ω`` can be
        while keeping the approximation error negligible (Section 3.3).
        """
        check_positive("samples", samples)
        lo, hi = self.domain
        zs = np.linspace(lo, hi, int(samples))
        exact = np.asarray(func(zs), dtype=np.float64)
        approx = self(zs)
        return float(np.max(np.abs(exact - approx)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.domain
        return (
            f"LookupTable1D(domain=[{lo:g}, {hi:g}], "
            f"intervals={self.num_intervals})"
        )
