"""Argument-validation helpers used throughout the public API.

These helpers raise ``ValueError``/``TypeError`` with consistent messages so
that user errors surface at the API boundary rather than deep inside a
vectorised kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that *value* is a positive (or non-negative) finite number."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Alias of :func:`check_probability` for fraction-style parameters."""
    return check_probability(name, value)


def check_int(
    name: str,
    value: int,
    *,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """Validate that *value* is an integer within the given bounds."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_array_shape(
    name: str,
    array: np.ndarray,
    *,
    ndim: Optional[int] = None,
    last_dim: Optional[int] = None,
) -> np.ndarray:
    """Validate dimensionality constraints of a NumPy array argument."""
    array = np.asarray(array)
    if ndim is not None and array.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={array.ndim}")
    if last_dim is not None and (array.ndim == 0 or array.shape[-1] != last_dim):
        raise ValueError(
            f"{name} must have last dimension {last_dim}, got shape {array.shape}"
        )
    return array


def check_same_length(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Validate that two array arguments have the same leading length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got "
            f"{len(a)} and {len(b)}"
        )
