"""Random-number-generation helpers.

Every stochastic component in the package takes either an integer seed or a
:class:`numpy.random.Generator`.  Funnelling everything through
:func:`as_generator` keeps experiments reproducible and avoids hidden global
state (``np.random.seed`` is never used).

:func:`spawn_rngs` derives independent child generators from a parent, which
is how the experiment harness gives every Monte-Carlo repetition its own
stream without correlations between repetitions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, an existing ``Generator``
        (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent generators from *seed*.

    When *seed* is already a ``Generator`` its ``spawn`` method is used
    (NumPy >= 1.25); otherwise a ``SeedSequence`` is built and split.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(count))
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RandomState:
    """A small facade over a seed that can hand out reproducible sub-streams.

    The experiment harness creates one :class:`RandomState` per experiment.
    Each named component (network generation, attack simulation, training,
    …) asks for its own stream via :meth:`stream`, keyed by a string, so the
    random numbers a component sees do not depend on the order in which other
    components consume randomness.

    Examples
    --------
    >>> rs = RandomState(1234)
    >>> rng_net = rs.stream("network")
    >>> rng_att = rs.stream("attack")
    >>> rs2 = RandomState(1234)
    >>> (rs2.stream("network").integers(1 << 30)
    ...  == rng_net.integers(1 << 30))
    True
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._entropy = np.random.SeedSequence(seed)

    @property
    def seed(self) -> Optional[int]:
        """The integer seed this state was created with (``None`` = entropy)."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator whose stream depends only on ``(seed, name)``."""
        # Derive a deterministic child key from the stream name so that the
        # same name always maps to the same sub-stream regardless of call
        # order.
        key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        child = np.random.SeedSequence(
            entropy=self._entropy.entropy, spawn_key=tuple(int(b) for b in key)
        )
        return np.random.default_rng(child)

    def streams(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of named generators (see :meth:`stream`)."""
        return {name: self.stream(name) for name in names}

    def spawn(self, count: int) -> list["RandomState"]:
        """Derive *count* child :class:`RandomState` objects.

        Children are seeded from independent integers drawn from this
        state's own dedicated "spawn" stream, so they are reproducible.
        """
        rng = self.stream("__spawn__")
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [RandomState(int(s)) for s in seeds]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomState(seed={self._seed!r})"


def permutation_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> np.ndarray:
    """Sample *size* distinct elements from *population* (uniformly).

    Thin wrapper over ``Generator.choice(..., replace=False)`` that gives a
    clearer error when the request is too large.
    """
    population = np.asarray(population)
    if size > population.size:
        raise ValueError(
            f"cannot sample {size} distinct elements from a population of "
            f"{population.size}"
        )
    return rng.choice(population, size=size, replace=False)
