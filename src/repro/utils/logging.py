"""Minimal logging configuration for the experiment harness and CLI.

The library itself never configures the root logger (library code should not
dictate logging policy); only :func:`configure_logging` — called by the CLI
and the example scripts — installs a handler.
"""

from __future__ import annotations

import logging
import sys

PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the package logger."""
    if name is None or name == PACKAGE_LOGGER_NAME:
        return logging.getLogger(PACKAGE_LOGGER_NAME)
    if name.startswith(PACKAGE_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a formatted stream handler to the package logger.

    Safe to call multiple times; existing handlers installed by this function
    are replaced rather than duplicated.
    """
    logger = logging.getLogger(PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    # Remove handlers we previously installed (tagged by name).
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.propagate = False
    return logger
