"""Statistical helpers: percentiles, binomial pmfs and ROC bookkeeping.

The LAD detection pipeline only needs a small number of statistical
primitives, but they sit on the hot path (they are evaluated for every
victim and every candidate threshold), so they are implemented as
vectorised NumPy kernels rather than per-sample Python code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import special

from repro.utils.validation import check_probability

__all__ = [
    "empirical_percentile",
    "rates_from_scores",
    "roc_points",
    "binomial_pmf",
    "binomial_log_pmf",
    "binomial_log_coefficient",
    "binomial_mode",
]


def empirical_percentile(samples: np.ndarray, tau: float) -> float:
    """Return the ``tau``-quantile of *samples* (``tau`` in [0, 1]).

    This is the paper's threshold-selection rule (Section 5.5): during
    training, the detection threshold is the value below which ``τ`` percent
    of the benign metric results fall; ``1 − τ`` is the nominal
    false-positive rate.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    check_probability("tau", tau)
    return float(np.quantile(samples, tau, method="linear"))


def rates_from_scores(
    benign_scores: np.ndarray,
    attacked_scores: np.ndarray,
    threshold: float,
) -> Tuple[float, float]:
    """Return ``(false_positive_rate, detection_rate)`` at a given threshold.

    A sample raises an alarm when its score is *strictly greater* than the
    threshold (scores follow the convention "larger = more anomalous").
    """
    benign_scores = np.asarray(benign_scores, dtype=np.float64)
    attacked_scores = np.asarray(attacked_scores, dtype=np.float64)
    fp = float(np.mean(benign_scores > threshold)) if benign_scores.size else 0.0
    dr = float(np.mean(attacked_scores > threshold)) if attacked_scores.size else 0.0
    return fp, dr


def roc_points(
    benign_scores: np.ndarray,
    attacked_scores: np.ndarray,
    num_thresholds: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute an ROC curve by sweeping the detection threshold.

    Parameters
    ----------
    benign_scores, attacked_scores:
        Anomaly scores of benign and attacked samples (larger = more
        anomalous).
    num_thresholds:
        When given, the thresholds are ``num_thresholds`` evenly spaced
        quantiles of the pooled scores; otherwise every distinct pooled score
        is used (exact ROC).

    Returns
    -------
    thresholds, fp_rates, detection_rates:
        Arrays sorted by increasing false-positive rate.
    """
    benign_scores = np.asarray(benign_scores, dtype=np.float64).ravel()
    attacked_scores = np.asarray(attacked_scores, dtype=np.float64).ravel()
    if benign_scores.size == 0:
        raise ValueError("need at least one benign score to build an ROC curve")
    if attacked_scores.size == 0:
        raise ValueError("need at least one attacked score to build an ROC curve")
    pooled = np.concatenate([benign_scores, attacked_scores])

    if num_thresholds is None:
        candidates = np.unique(pooled)
    else:
        qs = np.linspace(0.0, 1.0, int(num_thresholds))
        candidates = np.unique(np.quantile(pooled, qs))
    # Add sentinels so the curve spans (0, 0) .. (1, 1).
    lo = candidates[0] - 1.0
    hi = candidates[-1] + 1.0
    thresholds = np.concatenate([[lo], candidates, [hi]])

    # Vectorised alarm counting: for each threshold, the number of samples
    # whose score exceeds it.  ``searchsorted`` on the sorted scores gives
    # the count of scores <= threshold in O(log n) per threshold.
    benign_sorted = np.sort(benign_scores)
    attacked_sorted = np.sort(attacked_scores)
    fp = 1.0 - np.searchsorted(
        benign_sorted,
        thresholds,
        side="right",
    ) / benign_sorted.size
    dr = 1.0 - np.searchsorted(
        attacked_sorted,
        thresholds,
        side="right",
    ) / attacked_sorted.size

    # Sort by (false-positive rate, detection rate) so ties in FP caused by
    # distinct thresholds still yield a non-decreasing detection-rate curve.
    order = np.lexsort((dr, fp))
    return thresholds[order], fp[order], dr[order]


def binomial_log_coefficient(k: np.ndarray, n: float) -> np.ndarray:
    """Log of the (Gamma-generalised) binomial coefficient ``log C(n, k)``.

    This is the observation-only part of :func:`binomial_log_pmf`: it does
    not depend on the success probability, so batched likelihood kernels
    evaluate it once per observation instead of once per
    ``(observation, candidate)`` pair — ``gammaln`` is by far the most
    expensive term of the pmf.
    """
    k = np.asarray(k, dtype=np.float64)
    n = float(n)
    with np.errstate(divide="ignore", invalid="ignore"):
        return (
            special.gammaln(n + 1.0)
            - special.gammaln(k + 1.0)
            - special.gammaln(n - k + 1.0)
        )


def binomial_log_pmf(k: np.ndarray, n: float, p: np.ndarray) -> np.ndarray:
    """Log of the binomial pmf ``P(X = k)`` with ``X ~ Binomial(n, p)``.

    Vectorised and numerically safe: ``p`` values of exactly 0 or 1 are
    handled without producing NaNs, and non-integer ``k`` (the attacked
    observations can be real-valued) uses the natural Gamma-function
    generalisation of the binomial coefficient.
    """
    k = np.asarray(k, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    n = float(n)
    k, p = np.broadcast_arrays(k, p)

    with np.errstate(divide="ignore", invalid="ignore"):
        log_coeff = binomial_log_coefficient(k, n)
        log_p = np.where(k > 0, k * np.log(np.where(p > 0, p, 1.0)), 0.0)
        log_q = np.where(
            n - k > 0, (n - k) * np.log(np.where(p < 1, 1.0 - p, 1.0)), 0.0
        )
        out = log_coeff + log_p + log_q

    # Outside the support the probability is zero.
    invalid = (k < 0) | (k > n)
    out = np.where(invalid, -np.inf, out)
    # p == 0 forces X == 0, p == 1 forces X == n.
    out = np.where((p <= 0) & (k > 0), -np.inf, out)
    out = np.where((p >= 1) & (k < n), -np.inf, out)
    return out


def binomial_pmf(k: np.ndarray, n: float, p: np.ndarray) -> np.ndarray:
    """Binomial pmf ``P(X = k)`` with ``X ~ Binomial(n, p)`` (vectorised)."""
    return np.exp(binomial_log_pmf(k, n, p))


def binomial_mode(n: float, p: np.ndarray) -> np.ndarray:
    """Most probable value of a ``Binomial(n, p)`` variable.

    The mode is ``floor((n + 1) p)`` (with the convention that ties are
    resolved downwards), clipped to the support ``[0, n]``.  The greedy
    adversary against the Probability metric drives each observation toward
    this value.
    """
    p = np.asarray(p, dtype=np.float64)
    mode = np.floor((float(n) + 1.0) * p)
    return np.clip(mode, 0.0, float(n))
