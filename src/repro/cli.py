"""Command-line interface.

``lad-repro`` (or ``python -m repro.cli``) exposes the figure-reproduction
harness, declarative scenario sweeps and a small end-to-end demo from the
command line::

    lad-repro figure fig7 --scale 0.25 --json results/fig7.json
    lad-repro figure figl --scale 0.1 --beacon-count 25   # per-localizer DR
    lad-repro sweep scenario.toml --workers 4 --cache-dir ~/.cache/lad
    lad-repro sweep scenario.toml --localizer centroid --beacon-layout grid
    lad-repro sweep --figures fig4 --json results/fig4.json
    lad-repro sweep scenario.toml --backend torch --backend-device cuda
    lad-repro sweep scenario.toml --shard 0/4 --cache-dir /shared/lad
    lad-repro sweep scenario.toml --status --cache-dir /shared/lad
    lad-repro backends
    lad-repro serve scenario.toml --port 0 --cache-dir ~/.cache/lad --warm
    lad-repro loadgen scenario.toml --claims 500 --rate 2000
    lad-repro demo --degree 120 --metric diff
    lad-repro gz-table --radio-range 100 --sigma 50

Subcommands dispatch through a handler table (each sub-parser binds its
handler via ``set_defaults(func=...)``), so adding a command is one parser
block plus one function.  ``sweep`` runs any
:class:`~repro.experiments.scenario.ScenarioSpec` file (TOML or JSON) and
streams per-point results as they complete; ``sweep --figures`` renders a
registered figure spec (or a figure-shaped spec file) into the same
FigureResult series as ``lad-repro figure``.  With ``--cache-dir`` the
trained thresholds, victim samples and per-point attacked scores persist
across runs, so a re-run skips the training pass entirely and an
interrupted sweep resumes by recomputing only the missing points.

``serve`` turns a trained scenario into a streaming verification service
(JSONL over stdin or TCP) with micro-batching and bounded-queue
backpressure; ``loadgen`` drives one — in-process or over TCP — and
reports sustained claims/sec plus p50/p99 latency.  Flag groups shared by
several subcommands (``--workers``, ``--cache-dir``, the localizer /
beacon and backend overrides, the micro-batching knobs) are defined once
as argparse *parent parsers*, so every subcommand that composes a parent
gets the exact same flags and help text.

No plotting dependency is required: figures are printed as aligned text
tables (the same series the paper plots).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.utils.logging import configure_logging

__all__ = ["main", "build_parser"]

#: Shared config defaults of the ``figure`` and ``sweep --figures`` paths.
#: Both parsers must agree on these, or the documented guarantee that
#: ``sweep --figures figN`` equals ``figure figN`` silently breaks.
DEFAULT_GROUP_SIZE = 300
DEFAULT_RADIO_RANGE = 100.0
DEFAULT_SEED = 20050404


def _workers_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--workers`` flag of the sweep-running commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the per-point scoring (0 = serial)",
    )
    return parent


def _cache_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--cache-dir`` artifact-store flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "artifact store directory: trained thresholds, victim samples "
            "and per-point attacked scores persist here, so repeated runs "
            "(and warm service starts) skip the training pass"
        ),
    )
    return parent


def _output_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--json`` / ``--csv`` result-file flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json", type=Path, default=None, help="write the results as JSON"
    )
    parent.add_argument(
        "--csv", type=Path, default=None, help="write the results as CSV"
    )
    return parent


def _figure_config_parent() -> argparse.ArgumentParser:
    """Parent parser: config knobs shared by ``figure`` and ``sweep``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="Monte-Carlo sample-size scale factor (use <1 for quick runs)",
    )
    parent.add_argument(
        "--group-size",
        type=int,
        default=DEFAULT_GROUP_SIZE,
        help="sensors per group m",
    )
    parent.add_argument(
        "--radio-range",
        type=float,
        default=DEFAULT_RADIO_RANGE,
        help="radio range R (m)",
    )
    parent.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="master random seed"
    )
    return parent


def _localizer_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--localizer`` / ``--beacon-*`` override group."""
    parent = argparse.ArgumentParser(add_help=False)
    _add_localizer_arguments(parent)
    return parent


def _timeline_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--epochs`` / ``--attack-epoch`` timeline group."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "timeline",
        "override the spec's [timeline] table (temporal scenarios: "
        "mobility, churn, mid-run attacks with detection latency)",
    )
    group.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="number of scoring epochs of the timeline",
    )
    group.add_argument(
        "--epoch-duration",
        type=float,
        default=None,
        help="time units between consecutive epochs",
    )
    group.add_argument(
        "--attack-epoch",
        type=float,
        default=None,
        help=(
            "replace the timeline's attack events with a single full "
            "attack switching on at this time (creates a timeline when "
            "the spec has none)"
        ),
    )
    return parent


def _backend_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--backend*`` override group."""
    parent = argparse.ArgumentParser(add_help=False)
    _add_backend_arguments(parent)
    return parent


def _service_source_parent() -> argparse.ArgumentParser:
    """Parent parser: how ``serve`` / ``loadgen`` build their service."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "spec",
        type=Path,
        help="ScenarioSpec file (.toml or .json) the service is trained from",
    )
    group = parent.add_argument_group(
        "service construction",
        "which trained state the detection service loads",
    )
    group.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="Monte-Carlo sample-size scale factor for the training pass",
    )
    group.add_argument(
        "--group-size",
        type=int,
        default=None,
        help="override the spec's sensors per group m",
    )
    group.add_argument(
        "--metric",
        action="append",
        default=None,
        help=(
            "metric to train and serve a threshold for (repeatable; "
            "default: the spec's metrics)"
        ),
    )
    group.add_argument(
        "--fp-rate",
        type=float,
        default=None,
        help="false-positive budget of the thresholds (default: the spec's)",
    )
    group.add_argument(
        "--warm",
        action="store_true",
        help=(
            "require a warm --cache-dir: startup loads every trained "
            "artifact from the store and never trains (missing artifacts "
            "are an error, not a silent cold start)"
        ),
    )
    return parent


def _serving_parent() -> argparse.ArgumentParser:
    """Parent parser: micro-batching / backpressure knobs of the runtime."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "micro-batching",
        "how the service batches queued claims and sheds overload",
    )
    group.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="flush a micro-batch at this many claims",
    )
    group.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush an incomplete batch this long after its first claim",
    )
    group.add_argument(
        "--queue-size",
        type=int,
        default=1024,
        help="bound of the admission queue (the backpressure trigger)",
    )
    group.add_argument(
        "--overflow",
        choices=["reject", "block"],
        default="reject",
        help=(
            "full-queue policy: reject fails fast with a retry-after hint, "
            "block parks the submitter"
        ),
    )
    group.add_argument(
        "--retry-after-ms",
        type=float,
        default=20.0,
        help="back-off hint attached to rejected claims",
    )
    return parent


def _add_localizer_arguments(parser: argparse.ArgumentParser) -> None:
    """Localizer / beacon-infrastructure overrides shared by figure+sweep."""
    group = parser.add_argument_group(
        "localizer / beacons",
        "override the spec's localization scheme and beacon infrastructure "
        "(beacon-based schemes deploy default beacons when none are given)",
    )
    group.add_argument(
        "--localizer",
        default=None,
        help=(
            "localization scheme used for threshold training "
            "(e.g. beaconless, centroid, mmse, dvhop, apit, rssi, tdoa); "
            "replaces any localizer axis in the spec"
        ),
    )
    group.add_argument(
        "--beacon-count", type=int, default=None, help="number of beacon nodes"
    )
    group.add_argument(
        "--beacon-layout",
        choices=["grid", "random", "perimeter"],
        default=None,
        help="beacon placement layout",
    )
    group.add_argument(
        "--beacon-range",
        type=float,
        default=None,
        help="beacon transmit range (m)",
    )
    group.add_argument(
        "--beacon-noise",
        type=float,
        default=None,
        help="distance-measurement noise std (m) for range-based schemes",
    )
    group.add_argument(
        "--beacon-seed", type=int, default=None, help="beacon placement seed"
    )
    group.add_argument(
        "--beacon-tx-power",
        type=float,
        default=None,
        help="beacon transmit power at 1 m (dBm) for the RSSI scheme",
    )
    group.add_argument(
        "--beacon-path-loss",
        type=float,
        default=None,
        help="path-loss exponent eta of the RSSI log-distance model",
    )
    group.add_argument(
        "--beacon-compromised",
        type=float,
        default=None,
        help="fraction of beacons declaring a false position",
    )
    group.add_argument(
        "--beacon-compromise-displacement",
        type=float,
        default=None,
        help="how far (m) each compromised beacon's declared position lies",
    )


def _apply_localizer_overrides(spec, args):
    """Fold the ``--localizer`` / ``--beacon-*`` flags into a spec."""
    from dataclasses import replace

    from repro.localization.beacons import BeaconSpec

    if args.localizer is not None:
        spec = replace(spec, localizer=args.localizer, localizers=())
    overrides = {
        field: value
        for field, value in (
            ("count", args.beacon_count),
            ("layout", args.beacon_layout),
            ("transmit_range", args.beacon_range),
            ("noise_std", args.beacon_noise),
            ("seed", args.beacon_seed),
            ("tx_power_dbm", args.beacon_tx_power),
            ("path_loss_exponent", args.beacon_path_loss),
            ("compromised", args.beacon_compromised),
            ("compromise_displacement", args.beacon_compromise_displacement),
        )
        if value is not None
    }
    if overrides:
        base = spec.config.beacons or BeaconSpec()
        spec = spec.with_config(
            spec.config.with_beacons(replace(base, **overrides))
        )
    return spec


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Array-backend overrides shared by figure+sweep."""
    group = parser.add_argument_group(
        "compute backend",
        "override the spec's array backend running the likelihood kernels "
        "(see `lad-repro backends` for what this build can run)",
    )
    group.add_argument(
        "--backend",
        default=None,
        help="array backend (e.g. numpy, torch); numpy is the bit-exact default",
    )
    group.add_argument(
        "--backend-device",
        default=None,
        help="backend device (auto, cpu, cuda); auto picks CUDA when present",
    )
    group.add_argument(
        "--backend-dtype",
        choices=["float64", "float32"],
        default=None,
        help="backend compute dtype (numpy supports float64 only)",
    )


def _apply_backend_overrides(spec, args):
    """Fold the ``--backend*`` flags into a spec's ``[backend]`` table."""
    overrides = {
        field: value
        for field, value in (
            ("name", args.backend),
            ("device", args.backend_device),
            ("dtype", args.backend_dtype),
        )
        if value is not None
    }
    if not overrides:
        return spec
    from dataclasses import replace

    from repro.backend import BackendSpec

    base = spec.config.backend or BackendSpec()
    return spec.with_config(
        spec.config.with_backend(replace(base, **overrides))
    )


def _apply_timeline_overrides(spec, args):
    """Fold the ``--epochs`` / ``--attack-epoch`` flags into a spec."""
    if (
        args.epochs is None
        and args.epoch_duration is None
        and args.attack_epoch is None
    ):
        return spec
    import math
    from dataclasses import replace

    from repro.events.timeline import EventSpec, TimelineSpec

    timeline = spec.timeline if spec.timeline is not None else TimelineSpec()
    if args.epoch_duration is not None:
        timeline = replace(timeline, epoch_duration=args.epoch_duration)
    if args.attack_epoch is not None:
        # Replace any attack events with a single full switch-on, and keep
        # enough epochs after it to observe the detection latency.
        events = tuple(
            event for event in timeline.events if event.kind != "attack"
        ) + (EventSpec(kind="attack", action="on", at=(args.attack_epoch,)),)
        epochs = max(
            timeline.epochs,
            math.ceil(args.attack_epoch / timeline.epoch_duration) + 4,
        )
        timeline = replace(timeline, events=events, epochs=epochs)
    if args.epochs is not None:
        timeline = replace(timeline, epochs=args.epochs)
    return replace(spec, timeline=timeline)


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="lad-repro",
        description=(
            "Reproduction of 'LAD: Localization Anomaly Detection for "
            "Wireless Sensor Networks' (Du, Fang, Ning, 2005)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="enable progress logging to stderr"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Flag groups shared by several subcommands are built once as parent
    # parsers, so the flags (and their help text) can never drift apart.
    workers_parent = _workers_parent()
    cache_parent = _cache_parent()
    output_parent = _output_parent()
    figure_config_parent = _figure_config_parent()
    localizer_parent = _localizer_parent()
    backend_parent = _backend_parent()
    timeline_parent = _timeline_parent()

    fig = sub.add_parser(
        "figure",
        help="reproduce one of the paper's figures",
        parents=[
            figure_config_parent,
            workers_parent,
            cache_parent,
            output_parent,
            localizer_parent,
            backend_parent,
            timeline_parent,
        ],
    )
    fig.set_defaults(func=_cmd_figure)
    fig.add_argument(
        "figure_id",
        choices=[
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "figl",
            "figm",
            "figt",
        ],
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative scenario sweep from a spec file (TOML/JSON)",
        parents=[
            figure_config_parent,
            workers_parent,
            cache_parent,
            output_parent,
            localizer_parent,
            backend_parent,
            timeline_parent,
        ],
    )
    sweep.set_defaults(func=_cmd_sweep)
    sweep.add_argument(
        "spec",
        type=Path,
        help=(
            "ScenarioSpec file (.toml or .json); with --figures, a "
            "registered figure id (fig4..fig9) is accepted too"
        ),
    )
    sweep.add_argument(
        "--figures",
        action="store_true",
        help=(
            "render the result as the paper figure named by SPEC (a figure "
            "id or a spec file whose name matches one), emitting the same "
            "FigureResult series as `lad-repro figure`"
        ),
    )
    sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "compute only slice I of an N-way deterministic partition of "
            "the point grid (requires --cache-dir; several hosts pointed "
            "at one shared cache dir cover the grid together, and the "
            "shard that completes it renders the aggregate outputs)"
        ),
    )
    sweep.add_argument(
        "--status",
        action="store_true",
        help=(
            "report manifest-backed sweep progress (k/n points done, "
            "requires --cache-dir) and exit without computing anything"
        ),
    )

    service_source_parent = _service_source_parent()
    serving_parent = _serving_parent()

    serve = sub.add_parser(
        "serve",
        help="serve streaming location-claim verification (JSONL stdin/TCP)",
        parents=[
            service_source_parent,
            serving_parent,
            cache_parent,
            localizer_parent,
            backend_parent,
        ],
    )
    serve.set_defaults(func=_cmd_serve)
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "listen for JSONL claims on this TCP port (0 = ephemeral; "
            "prints 'listening on HOST:PORT'); default: serve stdin"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP listen address"
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a detection service with claims; report p50/p99 latency",
        parents=[
            service_source_parent,
            serving_parent,
            cache_parent,
            localizer_parent,
            backend_parent,
        ],
    )
    loadgen.set_defaults(func=_cmd_loadgen)
    loadgen.add_argument(
        "--claims",
        type=int,
        default=200,
        help="number of claims to generate (victims are cycled)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help=(
            "open-loop release rate in claims/sec "
            "(default: release everything at once — saturation mode)"
        ),
    )
    loadgen.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "drive a running `lad-repro serve --port` instance over TCP "
            "instead of an in-process runtime"
        ),
    )
    loadgen.add_argument(
        "--connections",
        type=int,
        default=1,
        help="TCP connections sharing the claim stream (--connect only)",
    )
    loadgen.add_argument(
        "--localize",
        action="store_true",
        help=(
            "omit claimed locations so the service localizes each "
            "observation first (beaconless scheme only)"
        ),
    )
    loadgen.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the load report as JSON",
    )

    backends = sub.add_parser(
        "backends",
        help="list the registered array backends and probe their availability",
    )
    backends.set_defaults(func=_cmd_backends)

    demo = sub.add_parser("demo", help="run a small end-to-end detection demo")
    demo.set_defaults(func=_cmd_demo)
    demo.add_argument(
        "--degree",
        type=float,
        default=120.0,
        help="degree of damage D (m)",
    )
    demo.add_argument("--metric", default="diff", help="detection metric")
    demo.add_argument("--attack", default="dec_bounded", help="attack class")
    demo.add_argument(
        "--fraction",
        type=float,
        default=0.10,
        help="compromised fraction x",
    )
    demo.add_argument("--group-size", type=int, default=300, help="sensors per group m")
    demo.add_argument(
        "--victims",
        type=int,
        default=200,
        help="number of attacked victims",
    )
    demo.add_argument("--seed", type=int, default=7, help="random seed")

    gz = sub.add_parser("gz-table", help="print the g(z) lookup table accuracy")
    gz.set_defaults(func=_cmd_gz_table)
    gz.add_argument("--radio-range", type=float, default=100.0)
    gz.add_argument("--sigma", type=float, default=50.0)
    gz.add_argument("--omega", type=int, default=1000)

    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.config import SimulationConfig
    from repro.experiments.figures import FIGURE_SPECS, run_figure_spec
    from repro.experiments.reporting import format_figure

    config = SimulationConfig(
        group_size=args.group_size, radio_range=args.radio_range, seed=args.seed
    )
    # Build the figure's declarative spec, fold in any --localizer /
    # --beacon-* overrides, and render through the same dispatch as
    # ``sweep --figures`` (the two paths are pinned equal by tests and CI).
    spec = FIGURE_SPECS[args.figure_id](config=config, scale=args.scale)
    spec = _apply_localizer_overrides(spec, args)
    spec = _apply_backend_overrides(spec, args)
    spec = _apply_timeline_overrides(spec, args)
    result = run_figure_spec(
        spec,
        figure_id=args.figure_id,
        workers=args.workers,
        store=args.cache_dir,
    )
    print(format_figure(result))
    if args.json is not None:
        result.to_json(args.json)
        print(f"\n[written] {args.json}")
    if args.csv is not None:
        result.to_csv(args.csv)
        print(f"[written] {args.csv}")
    return 0


def _print_cache_stats(store) -> None:
    """One-line cache summary (plus the per-point sweep cache when used)."""
    if store is None:
        return
    print(
        f"cache: {store.hits} hit(s), {store.misses} miss(es) "
        f"under {store.root}"
    )
    point_hits = store.hit_counts["attacked_scores"]
    scored = point_hits + store.miss_counts["attacked_scores"]
    if scored:
        print(
            f"cache: attacked scores for {point_hits}/{scored} point(s) "
            "served from cache"
        )
    temporal_hits = store.hit_counts["temporal"]
    temporal_total = temporal_hits + store.miss_counts["temporal"]
    if temporal_total:
        print(
            f"cache: temporal outcomes for {temporal_hits}/{temporal_total} "
            "point(s) served from cache"
        )


def _parse_shard(text: Optional[str]):
    """Parse a ``--shard I/N`` selector into ``(index, count)``."""
    if text is None:
        return None
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"--shard expects I/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"--shard index must satisfy 0 <= I < N, got {text!r}"
        )
    return index, count


def _sweep_status(spec, store, points, densities, localizers) -> int:
    """The ``sweep --status`` mode: manifest-backed progress, no compute.

    One manifest read per (density, localizer) session — no ``.npz`` is
    opened and the cache counters stay untouched.  Stale manifests are
    reconciled against the store (and republished healed) as a side
    effect, so a deleted artifact shows up as pending immediately.
    """
    total_done = total_points = total_healed = 0
    for localizer in localizers:
        for group_size in densities:
            session = spec.session(
                group_size=group_size, localizer=localizer, store=store
            )
            progress = session.sweep().progress(points)
            healed = f", {progress.healed} healed" if progress.healed else ""
            print(
                f"status m={group_size} localizer={localizer}: "
                f"{progress.done}/{progress.total} point(s) done{healed}"
            )
            total_done += progress.done
            total_points += progress.total
            total_healed += progress.healed
    suffix = (
        f" ({total_healed} stale manifest entr"
        f"{'y' if total_healed == 1 else 'ies'} healed)"
        if total_healed
        else ""
    )
    print(f"status: {total_done}/{total_points} point(s) done{suffix}")
    return 0


def _cmd_sweep_figures(args: argparse.Namespace) -> int:
    """The ``sweep --figures`` mode: evaluate a figure spec end to end."""
    from repro.experiments.config import SimulationConfig
    from repro.experiments.figures import FIGURE_SPECS, run_figure_spec
    from repro.experiments.reporting import format_figure
    from repro.experiments.scenario import ScenarioSpec
    from repro.experiments.store import ArtifactStore

    store = ArtifactStore(args.cache_dir) if args.cache_dir is not None else None
    # Same id normalisation as run_figure_spec, so the CLI accepts
    # exactly the ids the library does.
    spec_arg = str(args.spec).strip().lower()
    if args.spec.is_file():
        spec = ScenarioSpec.from_file(args.spec).scaled(args.scale)
    elif spec_arg in FIGURE_SPECS:
        config = SimulationConfig(
            group_size=args.group_size,
            radio_range=args.radio_range,
            seed=args.seed,
        )
        spec = FIGURE_SPECS[spec_arg](config=config, scale=args.scale)
    else:
        raise ValueError(
            f"{spec_arg!r} is neither a spec file nor a registered figure "
            f"id; available figures: {sorted(FIGURE_SPECS)}"
        )
    spec = _apply_localizer_overrides(spec, args)
    spec = _apply_backend_overrides(spec, args)
    spec = _apply_timeline_overrides(spec, args)
    result = run_figure_spec(spec, workers=args.workers, store=store)
    print(format_figure(result))
    _print_cache_stats(store)
    if args.json is not None:
        result.to_json(args.json)
        print(f"[written] {args.json}")
    if args.csv is not None:
        result.to_csv(args.csv)
        print(f"[written] {args.csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import csv
    import json

    from repro.experiments.scenario import ScenarioSpec
    from repro.experiments.store import ArtifactStore

    if args.figures:
        if args.shard is not None or args.status:
            raise ValueError(
                "--shard/--status apply to scenario sweeps, not --figures"
            )
        return _cmd_sweep_figures(args)

    spec = ScenarioSpec.from_file(args.spec).scaled(args.scale)
    spec = _apply_localizer_overrides(spec, args)
    spec = _apply_backend_overrides(spec, args)
    spec = _apply_timeline_overrides(spec, args)
    store = ArtifactStore(args.cache_dir) if args.cache_dir is not None else None
    shard = _parse_shard(args.shard)
    if (shard is not None or args.status) and store is None:
        raise ValueError(
            "--shard and --status require --cache-dir (shards and progress "
            "reports meet in one shared artifact store)"
        )
    points = spec.points()
    densities = spec.density_values()
    localizers = spec.localizer_values()
    print(
        f"scenario {spec.name!r}: {len(points)} point(s) x "
        f"{len(densities)} density value(s) x "
        f"{len(localizers)} localizer(s) [{', '.join(localizers)}], "
        f"FP budget {spec.false_positive_rate:.2%}"
    )
    if spec.timeline is not None:
        print(
            f"timeline: {spec.timeline.epochs} epoch(s) x "
            f"{spec.timeline.epoch_duration:g} time unit(s), "
            f"{len(spec.timeline.events)} event source(s)"
        )
    if args.status:
        return _sweep_status(spec, store, points, densities, localizers)
    header = (
        f"{'m':>6} {'localizer':>10} {'metric':>12} {'attack':>12} "
        f"{'D':>8} {'x':>6} {'DR':>8} {'threshold':>10}"
    )

    def run_pass(shard_arg):
        """One full (or one-shard) sweep pass; returns (rows, temporal rows)."""
        slice_points = (
            points if shard_arg is None else spec.points(shard=shard_arg)
        )
        total = len(slice_points) * len(densities) * len(localizers)
        print(header)
        rows = []
        temporal_rows = []
        done = 0
        for localizer in localizers:
            for group_size in densities:
                session = spec.session(
                    group_size=group_size, localizer=localizer, store=store
                )
                runner = session.sweep(workers=args.workers)
                for point, outcome in runner.iter_detection_rates(
                    points,
                    false_positive_rate=spec.false_positive_rate,
                    shard=shard_arg,
                ):
                    done += 1
                    print(
                        f"{group_size:>6} {localizer:>10} "
                        f"{point.metric:>12} {point.attack:>12} "
                        f"{point.degree_of_damage:>8g} "
                        f"{point.compromised_fraction:>6g} "
                        f"{outcome.detection_rate:>8.3f} "
                        f"{outcome.threshold:>10.2f}"
                        f"    [{done}/{total}]",
                        flush=True,
                    )
                    rows.append(
                        {
                            "group_size": int(group_size),
                            "localizer": localizer,
                            "metric": point.metric,
                            "attack": point.attack,
                            "degree_of_damage": point.degree_of_damage,
                            "compromised_fraction": point.compromised_fraction,
                            "detection_rate": outcome.detection_rate,
                            "threshold": outcome.threshold,
                        }
                    )
                if spec.timeline is None:
                    continue
                # The spec carries a [timeline]: re-run every point through
                # the discrete-event engine and report the online metric
                # family.
                temporal = session.temporal(spec.timeline, workers=args.workers)
                for point, outcome in temporal.iter_outcomes(
                    slice_points, false_positive_rate=spec.false_positive_rate
                ):
                    latency = outcome.detection_latency
                    first_fp = outcome.first_false_positive
                    print(
                        f"{group_size:>6} {localizer:>10} "
                        f"{point.metric:>12} {point.attack:>12} "
                        f"{point.degree_of_damage:>8g} "
                        f"{point.compromised_fraction:>6g} "
                        f"latency={'-' if latency is None else latency} "
                        f"first_fp={'-' if first_fp is None else first_fp} "
                        f"drift={outcome.detection_drift:+.3f}",
                        flush=True,
                    )
                    temporal_rows.append(
                        {
                            "group_size": int(group_size),
                            "localizer": localizer,
                            "metric": point.metric,
                            "attack": point.attack,
                            "degree_of_damage": point.degree_of_damage,
                            "compromised_fraction": point.compromised_fraction,
                            "detection_latency": latency,
                            "detection_time": outcome.detection_time,
                            "first_false_positive": first_fp,
                            "detection_drift": outcome.detection_drift,
                            "threshold": outcome.threshold,
                            "detection_rates": [
                                float(rate)
                                for rate in outcome.detection_rates()
                            ],
                            "delivery_rates": [
                                float(rate)
                                for rate in outcome.delivery_rates()
                            ],
                        }
                    )
        return rows, temporal_rows

    rows, temporal_rows = run_pass(shard)
    if shard is not None:
        # The finishing shard renders the aggregate outputs: if every grid
        # point of every session is now in the shared store, re-run the
        # full grid warm (all cache hits, byte-identical to a single serial
        # run); otherwise report this slice and leave aggregation to
        # whichever shard completes the grid.
        index, count = shard
        grid_keys = []
        for localizer in localizers:
            for group_size in densities:
                session = spec.session(
                    group_size=group_size, localizer=localizer, store=store
                )
                grid_keys.extend(session.attacked_scores_keys(points))
        present = sum(
            1 for key in grid_keys if store.contains("attacked_scores", key)
        )
        if present < len(grid_keys):
            print(
                f"shard {index}/{count}: slice done; {present}/"
                f"{len(grid_keys)} grid point(s) in cache — waiting on "
                "other shard(s) for aggregate outputs"
            )
            _print_cache_stats(store)
            return 0
        print(
            f"shard {index}/{count}: all {len(grid_keys)} grid point(s) "
            "in cache — rendering merged results"
        )
        rows, temporal_rows = run_pass(None)
    _print_cache_stats(store)
    if args.json is not None:
        payload = {"spec": spec.as_dict(), "results": rows}
        if temporal_rows:
            payload["temporal"] = temporal_rows
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"[written] {args.json}")
    if args.csv is not None:
        with Path(args.csv).open("w", newline="", encoding="utf-8") as handle:
            fieldnames = list(rows[0]) if rows else [
                "group_size",
                "localizer",
                "metric",
                "attack",
                "degree_of_damage",
                "compromised_fraction",
                "detection_rate",
                "threshold",
            ]
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        print(f"[written] {args.csv}")
    return 0


def _build_service_session(args: argparse.Namespace):
    """Shared ``serve`` / ``loadgen`` setup: spec file -> (spec, session).

    Applies the localizer/beacon and backend override parents, attaches
    the artifact store when ``--cache-dir`` is given, and pins the
    density override.
    """
    from repro.experiments.scenario import ScenarioSpec
    from repro.experiments.store import ArtifactStore

    spec = ScenarioSpec.from_file(args.spec).scaled(args.scale)
    spec = _apply_localizer_overrides(spec, args)
    spec = _apply_backend_overrides(spec, args)
    store = ArtifactStore(args.cache_dir) if args.cache_dir is not None else None
    session = spec.session(group_size=args.group_size, store=store)
    return spec, session, store


def _build_service(args: argparse.Namespace, spec, session):
    """The :class:`DetectionService` a serve/loadgen invocation asked for."""
    from repro.serving import DetectionService

    return DetectionService.from_session(
        session,
        metrics=tuple(args.metric) if args.metric else spec.metrics,
        false_positive_rate=(
            spec.false_positive_rate if args.fp_rate is None else args.fp_rate
        ),
        require_warm=args.warm,
    )


def _serving_config(args: argparse.Namespace):
    """The :class:`ServingConfig` from the micro-batching parent's flags."""
    from repro.serving import ServingConfig

    return ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_size=args.queue_size,
        overflow=args.overflow,
        retry_after_ms=args.retry_after_ms,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.serving import ServiceRuntime, serve_stdio, serve_tcp

    spec, session, _ = _build_service_session(args)
    service = _build_service(args, spec, session)
    config = _serving_config(args)

    async def run_tcp(runtime: "ServiceRuntime") -> None:
        """Serve TCP until SIGINT/SIGTERM, then drain gracefully.

        On a signal the listening sockets close *first* (no new claims are
        admitted), then the caller's ``runtime.close()`` drains everything
        already sitting in the admission queue before the process exits 0.
        """
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        # Handlers go in *before* the socket is announced, so a signal
        # arriving the instant a client can connect is already graceful.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # platforms / loops without signal-handler support
            installed.append(signum)
        try:
            server = await serve_tcp(
                runtime,
                host=args.host,
                port=args.port,
                announce=lambda host, port: print(
                    f"listening on {host}:{port}", flush=True
                ),
            )
            async with server:
                serving = asyncio.ensure_future(server.serve_forever())
                stopping = asyncio.ensure_future(stop.wait())
                await asyncio.wait(
                    {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
                )
                # Stop accepting connections before the drain, so nothing
                # admitted after the signal slips past the shutdown.
                server.close()
                await server.wait_closed()
                for task in (serving, stopping):
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task
            if stop.is_set():
                print(
                    "signal received: draining admitted claims",
                    file=sys.stderr,
                    flush=True,
                )
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    async def run() -> None:
        runtime = ServiceRuntime(service, config)
        await runtime.start()
        try:
            if args.port is not None:
                await run_tcp(runtime)
            else:
                served = await serve_stdio(runtime)
                print(
                    f"served {served} request line(s); "
                    f"runtime: {runtime.stats.as_dict()}",
                    file=sys.stderr,
                )
        finally:
            await runtime.close()
        if args.port is not None:
            print(
                f"drained; runtime: {runtime.stats.as_dict()}",
                file=sys.stderr,
                flush=True,
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serving import (
        ServiceRuntime,
        claims_from_session,
        run_load,
        run_tcp_load,
    )

    spec, session, _ = _build_service_session(args)
    claims = claims_from_session(
        session,
        count=args.claims,
        localize=args.localize,
        metric=args.metric[0] if args.metric else None,
    )
    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"--connect expects HOST:PORT, got {args.connect!r}"
            )
        report = asyncio.run(
            run_tcp_load(
                host,
                int(port),
                claims,
                rate=args.rate,
                connections=args.connections,
            )
        )
        runtime_stats = None
    else:
        service = _build_service(args, spec, session)
        config = _serving_config(args)

        async def run():
            async with ServiceRuntime(service, config) as runtime:
                report = await run_load(runtime, claims, rate=args.rate)
            return report, runtime.stats.as_dict()

        report, runtime_stats = asyncio.run(run())
    print(report.summary())
    if runtime_stats is not None:
        print(f"runtime: {runtime_stats}")
    if args.json is not None:
        payload = {"report": report.as_dict(), "runtime": runtime_stats}
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"[written] {args.json}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """List registered array backends with an availability probe each."""
    from repro.backend import BACKENDS

    alias_map: dict = {}
    for alias, canonical in BACKENDS.aliases().items():
        alias_map.setdefault(canonical, []).append(alias)
    print(f"{'backend':<10} {'exact':>6}  availability")
    for name in BACKENDS.available():
        cls = BACKENDS.get(name)
        exact = "yes" if cls.numpy_exact else "no"
        print(f"{name:<10} {exact:>6}  {cls.availability()}")
        aliases = sorted(alias_map.get(name, []))
        if aliases:
            print(f"{'':<10} {'':>6}  aliases: {', '.join(aliases)}")
    print(
        "\nexact = bit-identical to the numpy reference (shares its "
        "artifact-cache keys)"
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """End-to-end demo through the streaming service's batch-of-one path.

    Trains a small session, builds its :class:`DetectionService`, then
    verifies every evaluation victim twice — once with its honest claim,
    once with its attacked claim — exactly as an online claimant would be
    verified, one claim at a time.
    """
    import numpy as np

    from repro.experiments.config import SimulationConfig
    from repro.experiments.session import LadSession
    from repro.serving.claims import LocationClaim

    config = SimulationConfig(
        group_size=args.group_size,
        num_training_samples=max(100, args.victims),
        num_victims=args.victims,
        seed=args.seed,
    )
    session = LadSession(config)
    service = session.service(metrics=(args.metric,))
    victims = session.victims()
    honest = [
        service.verify(
            LocationClaim(
                observation=victims.observations[i],
                claimed_location=victims.actual_locations[i],
                claim_id=f"honest-{i}",
            )
        )
        for i in range(victims.observations.shape[0])
    ]
    attacked = [
        service.verify(claim)
        for claim in session.attacked_claims(
            args.metric,
            args.attack,
            degree_of_damage=args.degree,
            compromised_fraction=args.fraction,
        )
    ]
    flagged_honest = sum(1 for verdict in honest if verdict.anomalous)
    flagged_attacked = sum(1 for verdict in attacked if verdict.anomalous)
    latencies = np.asarray(
        [verdict.latency_ms for verdict in honest + attacked]
    )
    print(
        f"metric={args.metric}  attack={args.attack}  "
        f"D={args.degree:g}  x={args.fraction:.0%}"
    )
    print(
        f"benign localization error (mean): "
        f"{session.benign_localization_error():.2f} m"
    )
    print(
        f"trained threshold: {service.threshold(args.metric):.2f} "
        f"(FP budget {service.false_positive_rate:.0%})"
    )
    print(
        f"honest claims flagged:   {flagged_honest}/{len(honest)} "
        f"({flagged_honest / len(honest):.1%} observed FP)"
    )
    print(
        f"detection rate @ 1% FP: "
        f"{flagged_attacked / len(attacked):.3f} "
        f"({flagged_attacked}/{len(attacked)} attacked claims flagged)"
    )
    print(
        f"service latency p50/p99 (batch of one): "
        f"{np.percentile(latencies, 50):.2f} / "
        f"{np.percentile(latencies, 99):.2f} ms"
    )
    return 0


def _cmd_gz_table(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.deployment.gz import GzTable, gz_exact

    table = GzTable(args.radio_range, args.sigma, omega=args.omega)
    zs = np.linspace(0.0, args.radio_range + 4 * args.sigma, 9)
    print(
        f"g(z) table: R={args.radio_range:g}, sigma={args.sigma:g}, omega={args.omega}",
    )
    print(f"{'z':>10} {'g(z) exact':>12} {'g(z) table':>12}")
    for z in zs:
        print(
            f"{z:10.1f} {gz_exact(z, args.radio_range, args.sigma):12.6f} "
            f"{float(table(z)):12.6f}"
        )
    print(f"max abs table error (sampled): {table.max_abs_error(400):.2e}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Every sub-parser binds its handler through ``set_defaults(func=...)``,
    so dispatch is a single call — no per-command ``if`` chain and no
    unreachable fallthrough.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
