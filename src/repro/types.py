"""Common type aliases and small value objects shared across the package.

The simulation deals with three recurring kinds of data:

* **points** — 2-D coordinates in metres, stored as ``float64`` arrays of
  shape ``(2,)`` for a single point or ``(k, 2)`` for a batch;
* **observations** — per-group neighbour counts, stored as ``float64``
  arrays of shape ``(n_groups,)`` for a single sensor or
  ``(k, n_groups)`` for a batch of sensors (float because the attacked
  observations produced by the paper's greedy adversary may take the
  real-valued expected counts);
* **group ids** — integer indices in ``[0, n_groups)``.

Keeping these conventions uniform lets every module exchange plain NumPy
arrays without conversion layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import numpy.typing as npt

#: A single 2-D point or an array of 2-D points.
PointLike = Union[tuple, list, npt.NDArray[np.floating]]

#: Array of per-group neighbour counts.
ObservationArray = npt.NDArray[np.floating]

#: Array of float64 values (generic numeric result).
FloatArray = npt.NDArray[np.floating]

#: Array of integer values (group ids, node ids, counts).
IntArray = npt.NDArray[np.integer]


def as_point(value: PointLike) -> np.ndarray:
    """Coerce *value* into a ``float64`` array of shape ``(2,)``.

    Raises
    ------
    ValueError
        If the value cannot be interpreted as a single 2-D point.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (2,):
        raise ValueError(f"expected a single 2-D point, got shape {arr.shape}")
    return arr


def as_points(value: PointLike) -> np.ndarray:
    """Coerce *value* into a ``float64`` array of shape ``(k, 2)``.

    A single point is promoted to a batch of one.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 1:
        if arr.shape != (2,):
            raise ValueError(f"expected 2-D points, got shape {arr.shape}")
        return arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an array of 2-D points, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular deployment region, in metres.

    The paper's evaluation uses a 1000 m x 1000 m square
    (``Region(0, 0, 1000, 1000)``).
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(
                "region must have positive extent: "
                f"({self.x_min}, {self.y_min}) -> ({self.x_max}, {self.y_max})"
            )

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area of the region in square metres."""
        return self.width * self.height

    @property
    def center(self) -> np.ndarray:
        """Centre point of the region."""
        return np.array(
            [(self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0]
        )

    @property
    def diagonal(self) -> float:
        """Length of the region diagonal (largest possible distance inside)."""
        return float(np.hypot(self.width, self.height))

    def contains(self, points: PointLike) -> np.ndarray:
        """Return a boolean mask of which *points* fall inside the region.

        Boundary points are considered inside.
        """
        pts = as_points(points)
        inside = (
            (pts[:, 0] >= self.x_min)
            & (pts[:, 0] <= self.x_max)
            & (pts[:, 1] >= self.y_min)
            & (pts[:, 1] <= self.y_max)
        )
        return inside

    def contains_point(self, point: PointLike) -> bool:
        """Return ``True`` when the single *point* lies inside the region."""
        return bool(self.contains(as_point(point))[0])

    def clip(self, points: PointLike) -> np.ndarray:
        """Clamp *points* onto the region (component-wise)."""
        pts = as_points(points).copy()
        pts[:, 0] = np.clip(pts[:, 0], self.x_min, self.x_max)
        pts[:, 1] = np.clip(pts[:, 1], self.y_min, self.y_max)
        return pts

    def sample_uniform(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample *size* points uniformly at random from the region."""
        xs = rng.uniform(self.x_min, self.x_max, size=size)
        ys = rng.uniform(self.y_min, self.y_max, size=size)
        return np.column_stack([xs, ys])


#: The deployment region used throughout the paper's evaluation (Section 7.1).
PAPER_REGION = Region(0.0, 0.0, 1000.0, 1000.0)
