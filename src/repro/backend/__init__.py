"""Pluggable array-compute backends for the hot likelihood kernels.

The public surface:

* :class:`ArrayBackend` — the kernel interface (matmul, segmented
  reductions, argmax/gather, masked sums, batched 2x2 solve);
* :data:`BACKENDS` — the backend registry (``numpy`` default, ``torch``
  optional), in the same family as ``METRICS``/``ATTACKS``/
  ``LOCALIZERS``;
* :class:`BackendSpec` — declarative selection (the ``[backend]`` table
  of scenario files and ``--backend`` on the CLI);
* :func:`default_backend` / :func:`resolve_backend` — the shared numpy
  reference instance and the ``None``/name/spec/instance resolver.

Selecting the default numpy backend is bit-for-bit identical to the
historical direct-numpy code paths, and numpy-exact backends share the
historical artifact-cache keys; see :mod:`repro.backend.base`.
"""

from repro.backend.base import (
    BACKENDS,
    ArrayBackend,
    BackendSpec,
    default_backend,
    resolve_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.torch_backend import TorchBackend

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BackendSpec",
    "NumpyBackend",
    "TorchBackend",
    "default_backend",
    "resolve_backend",
]
