"""The :class:`ArrayBackend` seam behind the dense likelihood kernels.

The hot path of the whole evaluation is a handful of array kernels — the
coarse-lattice likelihood matmul, the segmented refinement reductions, the
masked-sum centroid kernel and the batched 2x2 normal equations of MMSE
multilateration.  :class:`ArrayBackend` lifts exactly those operations
behind one small interface so the compute substrate is a configuration
choice:

* :class:`~repro.backend.numpy_backend.NumpyBackend` (the default) *is*
  the pre-refactor numpy code, operation for operation — results are
  bit-for-bit identical to calling the kernels directly, which is what
  lets numpy-exact backends share artifact-cache keys with the historical
  default;
* :class:`~repro.backend.torch_backend.TorchBackend` (optional) runs the
  same operations through torch on CPU or CUDA for million-observation
  batches.  Floating-point accumulation order differs, so it carries its
  own cache identity and is validated by atol-pinned score comparisons
  plus identical detection decisions.

Backends are published through the :data:`BACKENDS` registry (alongside
the metric/attack/deployment/localizer families) and selected
declaratively by a :class:`BackendSpec` — the ``[backend]`` table of a
scenario file, ``--backend`` on the CLI.

Implementations accept plain numpy arrays at every entry point and return
plain numpy ``float64`` arrays; how an operation stages data onto its
device is the backend's business.  The contract every implementation must
honour is *semantic* equivalence with the numpy reference (same shapes,
same argmax tie-breaking of "first maximal element", ``-inf`` handled as
a value); ``numpy_exact`` additionally promises bit-level equality.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.registry import Registry

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BackendSpec",
    "default_backend",
    "resolve_backend",
]

#: Registry of array-compute backends.  Third-party backends plug in with
#: ``@BACKENDS.register(...)`` exactly like metrics or localizers.
BACKENDS = Registry("backend")

#: When the pruned active set would cover at least this fraction of the
#: ``(candidate, group)`` pairs, the sparse likelihood kernels fall back
#: to the dense matmul path.  This is the measured crossover for numpy on
#: CPU; device backends (where the dense matmul is comparatively cheaper)
#: override :attr:`ArrayBackend.dense_fallback_fraction` with their own
#: value, and :class:`BackendSpec` makes it a per-run knob.
DEFAULT_DENSE_FALLBACK_FRACTION = 0.5


class ArrayBackend(abc.ABC):
    """Array-kernel interface shared by every compute backend.

    The operations are the ones the evaluation pipeline actually spends
    its time in: array plumbing (``asarray``/``to_numpy``), the dense
    likelihood matmuls, segmented reductions and argmax/gather for the
    lock-step refinement, masked sums for the beacon kernels, and the
    batched closed-form 2x2 solve.  Everything else in the pipeline is
    orchestration and stays plain numpy.
    """

    #: Canonical registry name.
    name: str = "abstract"

    #: ``True`` when every operation is bit-for-bit identical to the
    #: numpy reference.  Numpy-exact backends alias to the historical
    #: artifact-cache keys (their :meth:`fingerprint` is ``None``), so a
    #: warm sweep cache stays warm when such a backend is selected.
    numpy_exact: bool = False

    #: Active-fraction threshold above which the pruned likelihood kernels
    #: fall back to the dense path (see
    #: :data:`DEFAULT_DENSE_FALLBACK_FRACTION`).
    dense_fallback_fraction: float = DEFAULT_DENSE_FALLBACK_FRACTION

    #: Resolved device the kernels run on (informational).
    device: str = "cpu"

    #: Compute dtype of the device kernels (results always return float64).
    dtype: str = "float64"

    # -- availability ------------------------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can be instantiated in this environment."""
        return True

    @classmethod
    def availability(cls) -> str:
        """Human-readable availability probe (``lad-repro backends``)."""
        return "available"

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> Optional[Dict[str, object]]:
        """This backend's contribution to artifact-cache keys.

        ``None`` for numpy-exact backends: their results are bit-identical
        to the default, so they must share the default's keys (a warm
        cache written before — or without — the backend layer still hits).
        Every other backend returns its identity (name, device, dtype),
        because scores may differ at the bit level.
        """
        if self.numpy_exact:
            return None
        return {"name": self.name, "device": self.device, "dtype": self.dtype}

    def describe(self) -> str:
        """One-line description for CLI listings."""
        return f"{self.name} (device={self.device}, dtype={self.dtype})"

    # -- array plumbing ----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, values: Any) -> Any:
        """Stage *values* as this backend's array type (float64 semantics)."""

    @abc.abstractmethod
    def to_numpy(self, values: Any) -> np.ndarray:
        """Materialise a backend array as a numpy ``float64`` array."""

    # -- dense likelihood kernels ------------------------------------------

    @abc.abstractmethod
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Plain matrix product ``a @ b``."""

    @abc.abstractmethod
    def binomial_loglik(
        self,
        row_coeff: np.ndarray,
        obs: np.ndarray,
        m: float,
        log_p: np.ndarray,
        log_q: np.ndarray,
    ) -> np.ndarray:
        """The coarse-lattice likelihood kernel.

        Computes ``row_coeff[:, None] + obs @ log_p.T + (m - obs) @
        log_q.T`` — the two matrix products that dominate the dense
        batched log-likelihood (*obs* is ``(k, g)``, *log_p*/*log_q* are
        ``(c, g)``; the result is ``(k, c)``).
        """

    @abc.abstractmethod
    def segmented_loglik(
        self,
        obs_rep: np.ndarray,
        probs: np.ndarray,
        m: float,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        """Dense per-candidate binomial log-likelihood row sums.

        *obs_rep* and *probs* are ``(total, g)`` (one row per refinement
        candidate); the result is the ``(total,)`` log-likelihood of each
        candidate: the unobserved ``(m - k) log(1 - p)`` term everywhere,
        plus the binomial coefficient and ``k log p`` at the observed
        (``k > 0``) pairs, with the degenerate ``p >= 1`` masking applied
        when *reaches_one*.  *log_coefficients* maps observed counts to
        binomial log-coefficients (backends may substitute their own
        device-side ``lgamma`` evaluation).
        """

    @abc.abstractmethod
    def sparse_segment_loglik(
        self,
        k_values: np.ndarray,
        probs: np.ndarray,
        m: float,
        candidate_ids: np.ndarray,
        num_candidates: int,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        """Pruned active-set likelihood: per-pair terms + segmented sum.

        *k_values*, *probs* and *candidate_ids* are flat, one entry per
        scored ``(candidate, group)`` pair; the result scatters the
        per-pair binomial terms onto ``num_candidates`` candidate slots
        (the segmented reduction replacing the dense row sum).
        """

    # -- reductions and gathers --------------------------------------------

    @abc.abstractmethod
    def segment_sum(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Sum *values* into ``num_segments`` slots indexed by *segment_ids*."""

    @abc.abstractmethod
    def segment_argmax(
        self, values: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment argmax of a flat concatenated value array.

        *values* concatenates one block per segment, *counts* gives the
        block lengths (all must be positive).  Returns ``(indices,
        maxima)`` where ``indices[i]`` is the **global** index into
        *values* of segment *i*'s first maximal element — the same
        tie-breaking as running ``np.argmax`` per segment — and
        ``maxima[i]`` the value there.  ``-inf`` is an ordinary value
        (all ``-inf`` segments return their first element); ``NaN`` must
        not appear (the likelihood kernels cannot produce it).
        """

    @abc.abstractmethod
    def rowwise_argmax(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Argmax along axis 1 plus the gathered maxima, per row."""

    @abc.abstractmethod
    def masked_sum(self, terms: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Sum *terms* over axis 1 with masked-out entries as exact zeros.

        *mask* is boolean ``(k, b)``; *terms* is ``(k, b)`` — or
        ``(k, b, d)``-broadcastable with a trailing component axis (the
        masked-centroid kernel) in which case the mask applies to every
        component.
        """

    # -- batched linear algebra --------------------------------------------

    @abc.abstractmethod
    def solve2x2(
        self,
        m00: np.ndarray,
        m01: np.ndarray,
        m11: np.ndarray,
        v0: np.ndarray,
        v1: np.ndarray,
        *,
        rtol: float = 1e-9,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Solve a batch of symmetric 2x2 normal-equation systems.

        Returns ``(estimates, solvable)``: the closed-form solutions
        ``(k, 2)`` and a boolean mask flagging rows whose determinant
        clears ``rtol * trace**2`` (near-singular systems are reported
        unsolvable rather than amplified).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(device={self.device!r}, dtype={self.dtype!r})"


@dataclass(frozen=True)
class BackendSpec:
    """Declarative selection of an array backend (the ``[backend]`` table).

    Attributes
    ----------
    name:
        Registered backend name (``repro.backend.BACKENDS``).
    device:
        Device policy: ``"auto"`` (the backend picks its best device),
        ``"cpu"``, or an accelerator name such as ``"cuda"`` /
        ``"cuda:1"`` for backends that support one.
    dtype:
        Compute dtype policy for device kernels (``"float64"`` or
        ``"float32"``).  Results are always returned as float64; float32
        trades accuracy for throughput on devices where float64 is slow
        and is rejected by numpy-exact backends.
    dense_fallback_fraction:
        Optional override of the pruned-kernel dense-fallback crossover
        (``None`` = the backend's own default).
    """

    name: str = "numpy"
    device: str = "auto"
    dtype: str = "float64"
    dense_fallback_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "name", BACKENDS.canonical(self.name))
        set_(self, "device", str(self.device).strip().lower())
        set_(self, "dtype", str(self.dtype).strip().lower())
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"unsupported backend dtype {self.dtype!r}; "
                "choose 'float64' or 'float32'"
            )
        if self.dense_fallback_fraction is not None:
            fraction = float(self.dense_fallback_fraction)
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    "dense_fallback_fraction must be in (0, 1]"
                )
            set_(self, "dense_fallback_fraction", fraction)

    def build(self) -> ArrayBackend:
        """Instantiate the selected backend (raises when unavailable)."""
        cls = BACKENDS.get(self.name)
        backend = cls(device=self.device, dtype=self.dtype)
        if self.dense_fallback_fraction is not None:
            backend.dense_fallback_fraction = self.dense_fallback_fraction
        return backend

    def with_device(self, device: str) -> "BackendSpec":
        """A copy of the spec pinned to a different device."""
        return replace(self, device=device)

    # -- serialisation (the [backend] table of scenario files) -------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (TOML/JSON-ready; lossless round trip)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "device": self.device,
            "dtype": self.dtype,
        }
        if self.dense_fallback_fraction is not None:
            data["dense_fallback_fraction"] = self.dense_fallback_fraction
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BackendSpec":
        """Rebuild a spec from its :meth:`as_dict` form (typos raise)."""
        data = dict(data)
        known = {"name", "device", "dtype", "dense_fallback_fraction"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown backend field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


#: Process-wide default backend instance (the numpy reference), shared so
#: every kernel constructed without an explicit backend uses one object.
_DEFAULT_BACKEND: Optional[ArrayBackend] = None


def default_backend() -> ArrayBackend:
    """The shared numpy reference backend (built lazily, one per process)."""
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        _DEFAULT_BACKEND = BACKENDS.create("numpy")
    return _DEFAULT_BACKEND


def resolve_backend(spec) -> ArrayBackend:
    """Resolve ``None`` / name / :class:`BackendSpec` / instance to a backend."""
    if spec is None:
        return default_backend()
    if isinstance(spec, ArrayBackend):
        return spec
    if isinstance(spec, BackendSpec):
        return spec.build()
    if isinstance(spec, str):
        return BackendSpec(name=spec).build()
    raise TypeError(
        "backend must be None, a registered name, a BackendSpec or an "
        f"ArrayBackend instance, got {type(spec).__name__}"
    )
