"""Optional torch backend (CPU + CUDA when available).

Runs the same kernel interface through torch so million-observation
batches can use an accelerator.  Torch is an optional dependency
(``pip install lad-repro[gpu]``): this module always imports cleanly,
the registry entry is always listed, and availability is probed at
instantiation time — ``lad-repro backends`` reports *why* the backend is
unavailable instead of crashing.

Design notes
------------

* **Lazy torch import.**  ``torch`` is imported inside methods, never at
  module scope and never stored on the instance, so backend objects stay
  picklable — sweep sessions are shipped to worker processes, and each
  worker re-imports torch on first use.
* **Numpy at the boundary.**  Every operation accepts plain numpy arrays
  and returns numpy ``float64``; staging to the device and the compute
  dtype (``float64`` or ``float32``) are internal policy.
* **Not bit-exact.**  Torch reductions accumulate in a different order
  than the numpy reference (and ``float32`` rounds), so
  ``numpy_exact = False``: the backend carries its own artifact-cache
  identity and is validated by atol-pinned score comparisons plus
  identical detection decisions, never bit equality.
* **Fallback crossover.**  A device matmul is comparatively cheaper than
  gather/scatter traffic, so the pruned kernels fall back to the dense
  path earlier on CUDA (``dense_fallback_fraction = 0.35`` vs the CPU
  0.5).
"""

from __future__ import annotations

import importlib.util
from typing import Any, Callable

import numpy as np

from repro.backend.base import BACKENDS, ArrayBackend

__all__ = ["TorchBackend"]


def _torch():
    """Import torch on demand (raises a clear error when missing)."""
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "the torch backend requires the optional 'torch' dependency "
            "(pip install lad-repro[gpu])"
        ) from exc
    return torch


@BACKENDS.register("pytorch", name="torch")
class TorchBackend(ArrayBackend):
    """Torch implementation of the kernel interface (CPU or CUDA)."""

    name = "torch"
    numpy_exact = False

    def __init__(self, device: str = "auto", dtype: str = "float64"):
        if not self.is_available():  # pragma: no cover - depends on env
            raise RuntimeError(
                "the torch backend requires the optional 'torch' dependency "
                "(pip install lad-repro[gpu])"
            )
        torch = _torch()
        device = str(device).strip().lower()
        if device == "auto":
            device = "cuda" if torch.cuda.is_available() else "cpu"
        if device.split(":")[0] not in ("cpu", "cuda"):
            raise ValueError(
                f"unsupported torch device {device!r}; use 'auto', 'cpu' "
                "or 'cuda[:index]'"
            )
        if device.split(":")[0] == "cuda" and not torch.cuda.is_available():
            raise RuntimeError(
                "device='cuda' requested but torch reports no CUDA device"
            )
        dtype = str(dtype).strip().lower()
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"unsupported torch dtype {dtype!r}; use 'float64' or 'float32'"
            )
        self.device = device
        self.dtype = dtype
        if device.split(":")[0] == "cuda":
            # Device<->host traffic dominates the sparse gathers sooner on
            # an accelerator, so prefer the dense matmul earlier.
            self.dense_fallback_fraction = 0.35

    # -- availability ------------------------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("torch") is not None

    @classmethod
    def availability(cls) -> str:
        if not cls.is_available():
            return "unavailable (torch not installed; pip install lad-repro[gpu])"
        torch = _torch()
        if torch.cuda.is_available():  # pragma: no cover - needs a GPU
            return (
                f"available (torch {torch.__version__}, "
                f"CUDA: {torch.cuda.get_device_name(0)})"
            )
        return f"available (torch {torch.__version__}, CPU only, CUDA absent)"

    # -- staging helpers ---------------------------------------------------

    @property
    def _dtype(self):
        torch = _torch()
        return torch.float32 if self.dtype == "float32" else torch.float64

    def _stage(self, values: Any):
        """Move *values* onto the device in the compute dtype."""
        torch = _torch()
        if isinstance(values, torch.Tensor):
            return values.to(device=self.device, dtype=self._dtype)
        return torch.as_tensor(
            np.asarray(values), dtype=self._dtype, device=self.device
        )

    def _unstage(self, tensor) -> np.ndarray:
        """Materialise a tensor back as a numpy float64 array."""
        return tensor.detach().to("cpu", dtype=_torch().float64).numpy()

    # -- array plumbing ----------------------------------------------------

    def asarray(self, values: Any) -> Any:
        return self._stage(values)

    def to_numpy(self, values: Any) -> np.ndarray:
        torch = _torch()
        if isinstance(values, torch.Tensor):
            return self._unstage(values)
        return np.asarray(values, dtype=np.float64)

    # -- dense likelihood kernels ------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._unstage(self._stage(a) @ self._stage(b))

    def binomial_loglik(
        self,
        row_coeff: np.ndarray,
        obs: np.ndarray,
        m: float,
        log_p: np.ndarray,
        log_q: np.ndarray,
    ) -> np.ndarray:
        coeff = self._stage(row_coeff)
        obs_t = self._stage(obs)
        ll = (
            coeff[:, None]
            + obs_t @ self._stage(log_p).T
            + (m - obs_t) @ self._stage(log_q).T
        )
        return self._unstage(ll)

    def segmented_loglik(
        self,
        obs_rep: np.ndarray,
        probs: np.ndarray,
        m: float,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        torch = _torch()
        obs_t = self._stage(obs_rep)
        probs_t = self._stage(probs)
        one = torch.tensor(1.0, dtype=self._dtype, device=probs_t.device)
        neg_inf = torch.tensor(
            float("-inf"), dtype=self._dtype, device=probs_t.device
        )
        if reaches_one:
            log_q = torch.log(torch.where(probs_t < 1, 1.0 - probs_t, one))
        else:
            log_q = torch.log1p(-probs_t)
        out = (m - obs_t) * log_q

        observed = obs_t > 0
        k_obs = obs_t[observed]
        p_obs = probs_t[observed]
        # The binomial coefficients are observation-only; evaluate them
        # through the shared (numpy/scipy) gammaln path and stage the
        # short observed vector.
        coeff = self._stage(
            log_coefficients(self.to_numpy(k_obs), m)
        )
        term = coeff + k_obs * torch.log(p_obs)
        term = torch.where(p_obs <= 0, neg_inf, term)
        out = out.masked_scatter(observed, out[observed] + term)

        if reaches_one:
            out = torch.where((probs_t >= 1) & (obs_t < m), neg_inf, out)
        return self._unstage(out.sum(dim=1))

    def sparse_segment_loglik(
        self,
        k_values: np.ndarray,
        probs: np.ndarray,
        m: float,
        candidate_ids: np.ndarray,
        num_candidates: int,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        torch = _torch()
        k = self._stage(k_values)
        probs_t = self._stage(probs)
        one = torch.tensor(1.0, dtype=self._dtype, device=probs_t.device)
        neg_inf = torch.tensor(
            float("-inf"), dtype=self._dtype, device=probs_t.device
        )
        if reaches_one:
            log_q = torch.log(torch.where(probs_t < 1, 1.0 - probs_t, one))
        else:
            log_q = torch.log1p(-probs_t)
        terms = (m - k) * log_q

        observed = k > 0
        k_obs = k[observed]
        p_obs = probs_t[observed]
        coeff = self._stage(log_coefficients(self.to_numpy(k_obs), m))
        term = coeff + k_obs * torch.log(p_obs)
        term = torch.where(p_obs <= 0, neg_inf, term)
        terms = terms.masked_scatter(observed, terms[observed] + term)
        if reaches_one:
            terms = torch.where((probs_t >= 1) & (k < m), neg_inf, terms)

        out = torch.zeros(
            int(num_candidates), dtype=self._dtype, device=terms.device
        )
        ids = torch.as_tensor(
            np.asarray(candidate_ids, dtype=np.int64), device=terms.device
        )
        out.index_add_(0, ids, terms)
        return self._unstage(out)

    # -- reductions and gathers --------------------------------------------

    def segment_sum(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        torch = _torch()
        vals = self._stage(values)
        out = torch.zeros(
            int(num_segments), dtype=self._dtype, device=vals.device
        )
        ids = torch.as_tensor(
            np.asarray(segment_ids, dtype=np.int64), device=vals.device
        )
        out.index_add_(0, ids, vals)
        return self._unstage(out)

    def segment_argmax(
        self, values: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        torch = _torch()
        counts_np = np.asarray(counts, dtype=np.int64)
        if counts_np.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        if np.any(counts_np <= 0):
            raise ValueError("segment_argmax requires positive segment counts")
        vals = self._stage(values)
        n = vals.shape[0]
        device = vals.device
        counts_t = torch.as_tensor(counts_np, device=device)
        offsets = torch.zeros(
            counts_np.size, dtype=torch.int64, device=device
        )
        offsets[1:] = torch.cumsum(counts_t, 0)[:-1]
        seg_ids = torch.repeat_interleave(
            torch.arange(counts_np.size, device=device), counts_t
        )
        maxima = torch.full(
            (counts_np.size,),
            float("-inf"),
            dtype=self._dtype,
            device=device,
        )
        maxima.scatter_reduce_(0, seg_ids, vals, reduce="amax")
        # First maximal element per segment (np.argmax tie-breaking).
        is_max = vals == maxima[seg_ids]
        tagged = torch.where(
            is_max,
            torch.arange(n, device=device),
            torch.full((n,), n, dtype=torch.int64, device=device),
        )
        indices = torch.full(
            (counts_np.size,), n, dtype=torch.int64, device=device
        )
        indices.scatter_reduce_(0, seg_ids, tagged, reduce="amin")
        return (
            indices.to("cpu").numpy(),
            self._unstage(maxima),
        )

    def rowwise_argmax(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        vals = self._stage(values)
        maxima, idx = vals.max(dim=1)
        return idx.to("cpu").numpy(), self._unstage(maxima)

    def masked_sum(self, terms: np.ndarray, mask: np.ndarray) -> np.ndarray:
        torch = _torch()
        terms_t = self._stage(terms)
        mask_t = torch.as_tensor(
            np.asarray(mask, dtype=bool), device=terms_t.device
        )
        if terms_t.dim() == mask_t.dim() + 1:
            mask_t = mask_t[..., None]
        zero = torch.tensor(0.0, dtype=self._dtype, device=terms_t.device)
        return self._unstage(torch.where(mask_t, terms_t, zero).sum(dim=1))

    # -- batched linear algebra --------------------------------------------

    def solve2x2(
        self,
        m00: np.ndarray,
        m01: np.ndarray,
        m11: np.ndarray,
        v0: np.ndarray,
        v1: np.ndarray,
        *,
        rtol: float = 1e-9,
    ) -> tuple[np.ndarray, np.ndarray]:
        torch = _torch()
        a00 = self._stage(m00)
        a01 = self._stage(m01)
        a11 = self._stage(m11)
        b0 = self._stage(v0)
        b1 = self._stage(v1)
        det = a00 * a11 - a01 * a01
        solvable = det > rtol * (a00 + a11) ** 2
        one = torch.tensor(1.0, dtype=self._dtype, device=det.device)
        safe_det = torch.where(solvable, det, one)
        estimates = torch.stack(
            [(a11 * b0 - a01 * b1) / safe_det, (a00 * b1 - a01 * b0) / safe_det],
            dim=1,
        )
        return self._unstage(estimates), solvable.to("cpu").numpy()
