"""The numpy reference backend.

Every operation here *is* the pre-refactor kernel code, moved verbatim —
same expressions, same evaluation order — so selecting this backend (the
default) is guaranteed bit-for-bit identical to the historical code
paths.  That guarantee (``numpy_exact = True``) is what lets the backend
alias to the historical artifact-cache keys, and it is what the
registry-parametrised equivalence suite pins down: any edit that changes
a result at the bit level is a contract violation, not a cleanup.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.backend.base import BACKENDS, ArrayBackend

__all__ = ["NumpyBackend"]


@BACKENDS.register("np", name="numpy")
class NumpyBackend(ArrayBackend):
    """Bit-exact numpy implementation of the kernel interface (the default)."""

    name = "numpy"
    numpy_exact = True

    def __init__(self, device: str = "auto", dtype: str = "float64"):
        device = str(device).strip().lower()
        if device not in ("auto", "cpu"):
            raise ValueError(
                f"the numpy backend runs on the CPU only, got device={device!r}"
            )
        if str(dtype).strip().lower() != "float64":
            raise ValueError(
                "the numpy backend is the bit-exact float64 reference; "
                f"dtype={dtype!r} is not supported (use the torch backend "
                "for reduced precision)"
            )
        self.device = "cpu"
        self.dtype = "float64"

    # -- availability ------------------------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        return True

    @classmethod
    def availability(cls) -> str:
        return f"available (numpy {np.__version__}, bit-exact reference)"

    # -- array plumbing ----------------------------------------------------

    def asarray(self, values: Any) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def to_numpy(self, values: Any) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    # -- dense likelihood kernels ------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def binomial_loglik(
        self,
        row_coeff: np.ndarray,
        obs: np.ndarray,
        m: float,
        log_p: np.ndarray,
        log_q: np.ndarray,
    ) -> np.ndarray:
        return row_coeff[:, None] + obs @ log_p.T + (m - obs) @ log_q.T

    def segmented_loglik(
        self,
        obs_rep: np.ndarray,
        probs: np.ndarray,
        m: float,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            # Dense part: (m − k) · log(1 − p).  Groups far from a candidate
            # have p below the rounding threshold of 1 − p, so their term is
            # an exact zero without any masking.
            if reaches_one:
                log_q = np.log(np.where(probs < 1, 1.0 - probs, 1.0))
            else:
                log_q = np.log(1.0 - probs)
            out = (m - obs_rep) * log_q

            # Sparse part: the observed (k > 0) pairs additionally carry the
            # binomial coefficient and k · log p — a few percent of all
            # elements, so gammaln and the second log run on a short vector.
            observed = obs_rep > 0
            k_obs = obs_rep[observed]
            p_obs = probs[observed]
            term = log_coefficients(k_obs, m) + k_obs * np.log(p_obs)
        term = np.where(p_obs <= 0, -np.inf, term)
        out[observed] += term

        if reaches_one:
            out = np.where((probs >= 1) & (obs_rep < m), -np.inf, out)
        return out.sum(axis=1)

    def sparse_segment_loglik(
        self,
        k_values: np.ndarray,
        probs: np.ndarray,
        m: float,
        candidate_ids: np.ndarray,
        num_candidates: int,
        *,
        reaches_one: bool,
        log_coefficients: Callable[[np.ndarray, float], np.ndarray],
    ) -> np.ndarray:
        k = k_values
        with np.errstate(divide="ignore", invalid="ignore"):
            if reaches_one:
                log_q = np.log(np.where(probs < 1, 1.0 - probs, 1.0))
            else:
                log_q = np.log(1.0 - probs)
            terms = (m - k) * log_q
            observed = k > 0
            k_obs = k[observed]
            p_obs = probs[observed]
            term = log_coefficients(k_obs, m) + k_obs * np.log(p_obs)
        term = np.where(p_obs <= 0, -np.inf, term)
        terms[observed] += term
        if reaches_one:
            terms = np.where((probs >= 1) & (k < m), -np.inf, terms)
        return self.segment_sum(terms, candidate_ids, num_candidates)

    # -- reductions and gathers --------------------------------------------

    def segment_sum(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        return np.bincount(segment_ids, weights=values, minlength=num_segments)

    def segment_argmax(
        self, values: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=values.dtype),
            )
        if np.any(counts <= 0):
            raise ValueError("segment_argmax requires positive segment counts")
        offsets = np.concatenate([[0], np.cumsum(counts[:-1])])
        maxima = np.maximum.reduceat(values, offsets)
        # First maximal element per segment (np.argmax tie-breaking): tag
        # every maximal position with its global index, everything else
        # with the (out-of-range) total length, and take the segment min.
        tagged = np.where(
            values == np.repeat(maxima, counts),
            np.arange(values.size, dtype=np.int64),
            np.int64(values.size),
        )
        indices = np.minimum.reduceat(tagged, offsets)
        return indices, maxima

    def rowwise_argmax(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        idx = np.argmax(values, axis=1)
        return idx, values[np.arange(values.shape[0]), idx]

    def masked_sum(self, terms: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if terms.ndim == mask.ndim + 1:
            mask = mask[..., None]
        return np.where(mask, terms, 0.0).sum(axis=1)

    # -- batched linear algebra --------------------------------------------

    def solve2x2(
        self,
        m00: np.ndarray,
        m01: np.ndarray,
        m11: np.ndarray,
        v0: np.ndarray,
        v1: np.ndarray,
        *,
        rtol: float = 1e-9,
    ) -> tuple[np.ndarray, np.ndarray]:
        det = m00 * m11 - m01 * m01
        # M is a sum of outer products, so det >= 0 up to rounding, and
        # det / tr(M)^2 ~ lambda_min / lambda_max: near-singular systems
        # would amplify noise by 1/lambda_min, so they are flagged
        # unsolvable instead of solved.
        solvable = det > rtol * (m00 + m11) ** 2
        safe_det = np.where(solvable, det, 1.0)
        estimates = np.column_stack(
            [(m11 * v0 - m01 * v1) / safe_det, (m00 * v1 - m01 * v0) / safe_det]
        )
        return estimates, solvable
