"""The streaming detection service core — vectorised claim verification.

:class:`DetectionService` is the online form of the LAD detector: it holds
a trained session's state (deployment knowledge with its ``g(z)`` table,
the localization scheme, one trained threshold per metric, the array
backend) and verifies batches of :class:`~repro.serving.claims.LocationClaim`
requests in one vectorised pass:

1. claims without a claimed location are localized first — all of them in
   one :meth:`BeaconlessLocalizer.localize_observations` call;
2. one :meth:`DeploymentKnowledge.expected_observation` call produces the
   expected observations ``µ`` of the whole batch;
3. each metric scores its claims' ``(o, µ)`` rows with the same vectorised
   ``compute`` kernel the offline evaluation uses;
4. scores become :class:`~repro.core.verdict.Verdict` objects under the
   session-trained thresholds.

Every kernel in that pipeline is row-elementwise (and the batch engine is
pinned batch == loop bit-for-bit), so a claim's verdict never depends on
which other claims shared its micro-batch — the service is bit-identical
to offline :class:`~repro.experiments.session.LadSession` scoring by
construction, which the serving test-suite asserts across all registered
localizers.

Construction is either *live* (:meth:`DetectionService.from_session`
trains thresholds through the session, reusing its artifact store when
present) or *warm* (``require_warm=True`` loads the benign scores straight
from the :class:`~repro.experiments.store.ArtifactStore` and refuses to
fall back to training — cold starts should be a decision, not an
accident).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.core.thresholds import derive_threshold
from repro.core.verdict import Verdict
from repro.deployment.knowledge import DeploymentKnowledge
from repro.localization.base import LocalizationScheme
from repro.localization.beaconless import BeaconlessLocalizer
from repro.serving.claims import ClaimError, LocationClaim
from repro.utils.logging import get_logger
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.scenario import ScenarioSpec
    from repro.experiments.session import LadSession

__all__ = ["DetectionService"]

_LOGGER = get_logger("serving.service")


class DetectionService:
    """Verify location claims against a trained LAD configuration.

    Parameters
    ----------
    knowledge:
        The deployment knowledge (with its ``g(z)`` table) claims are
        verified against.
    thresholds:
        One trained detection threshold per metric name.  Usually derived
        by :meth:`from_session`; passing them explicitly supports loading
        exported state without a session object.
    false_positive_rate:
        The nominal false-positive budget the thresholds were trained at
        (recorded on every verdict).
    metric:
        Default metric for claims that don't name one; must have a
        threshold.  Defaults to the first thresholded metric.
    localizer:
        Localization scheme for claims arriving *without* a claimed
        location.  Only observation-only schemes (the beaconless MLE
        engine) can serve those; beacon-based schemes verify claimed
        locations only.
    """

    def __init__(
        self,
        knowledge: DeploymentKnowledge,
        *,
        thresholds: Mapping[str, float],
        false_positive_rate: float = 0.01,
        metric: Union[str, AnomalyMetric, None] = None,
        localizer: Optional[LocalizationScheme] = None,
    ):
        if not thresholds:
            raise ValueError("a DetectionService needs at least one threshold")
        check_fraction("false_positive_rate", false_positive_rate)
        self._knowledge = knowledge
        self._thresholds = {
            resolve_metric(name).name: float(value)
            for name, value in thresholds.items()
        }
        self._false_positive_rate = float(false_positive_rate)
        if metric is None:
            self._default_metric = next(iter(self._thresholds))
        else:
            self._default_metric = resolve_metric(metric).name
        if self._default_metric not in self._thresholds:
            raise ValueError(
                f"default metric {self._default_metric!r} has no trained "
                f"threshold (have: {sorted(self._thresholds)})"
            )
        self._localizer = localizer

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_session(
        cls,
        session: "LadSession",
        *,
        metrics: Sequence[Union[str, AnomalyMetric]] = ("diff",),
        false_positive_rate: float = 0.01,
        require_warm: bool = False,
    ) -> "DetectionService":
        """Build a service from a :class:`LadSession`'s trained state.

        With ``require_warm=False`` thresholds come from
        :meth:`LadSession.threshold` — trained now, or served from the
        session's artifact store when warm.  With ``require_warm=True``
        the session *must* carry a store already holding every metric's
        benign scores: they are loaded via
        :meth:`ArtifactStore.load_required` and startup performs zero
        training (a missing artifact raises ``KeyError`` instead of
        silently training).
        """
        names = [resolve_metric(metric).name for metric in metrics]
        if not names:
            raise ValueError("metrics must name at least one trained metric")
        thresholds: Dict[str, float] = {}
        if require_warm:
            store = session.store
            if store is None:
                raise ValueError(
                    "require_warm=True needs a session with an artifact "
                    "store (pass store=/cache dir to the session)"
                )
            for name in names:
                arrays = store.load_required(
                    "benign_scores", session.benign_scores_key(name)
                )
                thresholds[name] = derive_threshold(
                    arrays["scores"], 1.0 - false_positive_rate
                )
        else:
            for name in names:
                thresholds[name] = session.threshold(
                    name, false_positive_rate=false_positive_rate
                )
        _LOGGER.info(
            "detection service ready: metrics=%s fp=%.2f%% warm=%s",
            names,
            100.0 * false_positive_rate,
            require_warm,
        )
        return cls(
            session.knowledge,
            thresholds=thresholds,
            false_positive_rate=false_positive_rate,
            metric=names[0],
            localizer=session.localizer,
        )

    @classmethod
    def from_spec(
        cls,
        spec: Union["ScenarioSpec", str],
        *,
        store=None,
        metrics: Optional[Sequence[str]] = None,
        false_positive_rate: Optional[float] = None,
        localizer: Optional[str] = None,
        group_size: Optional[int] = None,
        require_warm: bool = False,
    ) -> "DetectionService":
        """Build a service from a declarative scenario spec (or spec file).

        The spec's metric list and false-positive budget are the defaults;
        *store* enables the warm-start path (``require_warm=True`` then
        guarantees zero training at startup).
        """
        from repro.experiments.scenario import ScenarioSpec

        if not isinstance(spec, ScenarioSpec):
            spec = ScenarioSpec.from_file(spec)
        session = spec.session(
            group_size=group_size, localizer=localizer, store=store
        )
        return cls.from_session(
            session,
            metrics=tuple(metrics) if metrics else spec.metrics,
            false_positive_rate=(
                spec.false_positive_rate
                if false_positive_rate is None
                else false_positive_rate
            ),
            require_warm=require_warm,
        )

    # -- properties --------------------------------------------------------

    @property
    def knowledge(self) -> DeploymentKnowledge:
        """The deployment knowledge claims are verified against."""
        return self._knowledge

    @property
    def localizer(self) -> Optional[LocalizationScheme]:
        """The localization scheme for location-less claims (may be ``None``)."""
        return self._localizer

    @property
    def metrics(self) -> List[str]:
        """Names of the metrics with trained thresholds."""
        return sorted(self._thresholds)

    @property
    def default_metric(self) -> str:
        """Metric used by claims that don't name one."""
        return self._default_metric

    @property
    def false_positive_rate(self) -> float:
        """The false-positive budget the thresholds were trained at."""
        return self._false_positive_rate

    @property
    def n_groups(self) -> int:
        """Length every claim observation must have."""
        return int(self._knowledge.n_groups)

    def threshold(self, metric: Union[str, AnomalyMetric]) -> float:
        """The trained threshold of one metric."""
        name = resolve_metric(metric).name
        if name not in self._thresholds:
            raise KeyError(
                f"no trained threshold for metric {name!r} "
                f"(have: {sorted(self._thresholds)})"
            )
        return self._thresholds[name]

    # -- claim validation --------------------------------------------------

    def validate(self, claim: LocationClaim) -> None:
        """Raise :class:`ClaimError` when *claim* cannot be served.

        Checked at admission (before a claim occupies queue space) so a
        bad claim is rejected immediately and can never poison the
        micro-batch it would have joined.
        """
        if claim.observation.shape[0] != self.n_groups:
            raise ClaimError(
                f"claim observation has {claim.observation.shape[0]} "
                f"group(s); this deployment has {self.n_groups}"
            )
        metric = claim.metric or self._default_metric
        if resolve_metric(metric).name not in self._thresholds:
            raise ClaimError(
                f"no trained threshold for metric {metric!r} "
                f"(have: {sorted(self._thresholds)})"
            )
        if claim.needs_localization and not self._can_localize():
            raise ClaimError(
                "claim has no claimed_location and this service cannot "
                "localize observations (needs the beaconless scheme; "
                f"localizer is {self._localizer!r})"
            )

    def _can_localize(self) -> bool:
        return isinstance(self._localizer, BeaconlessLocalizer)

    # -- verification ------------------------------------------------------

    def verify_batch(
        self, claims: Sequence[LocationClaim]
    ) -> List[Verdict]:
        """Verify a micro-batch of claims in one vectorised pass.

        Location-less claims are localized together in one
        :meth:`localize_observations` call, the whole batch shares one
        :meth:`expected_observation` call, and each metric scores its rows
        with one vectorised ``compute``.  Every kernel is row-elementwise,
        so verdicts are bit-identical whether a claim is verified alone or
        inside any batch.

        Claims carrying non-finite values (``NaN``/``inf`` in the
        observation or the claimed location) get a per-claim *error*
        verdict — ``decision == "error"``, treated as anomalous — instead
        of poisoning the batch matmul: one bad claim never perturbs its
        batch-mates' scores.
        """
        claims = list(claims)
        if not claims:
            return []
        for claim in claims:
            self.validate(claim)

        verdicts: List[Optional[Verdict]] = [None] * len(claims)
        ok_rows: List[int] = []
        for row, claim in enumerate(claims):
            message = None
            if not np.isfinite(claim.observation).all():
                message = "claim observation contains non-finite values"
            elif claim.claimed_location is not None and not np.isfinite(
                claim.claimed_location
            ).all():
                message = "claimed location contains non-finite coordinates"
            if message is None:
                ok_rows.append(row)
                continue
            name = resolve_metric(claim.metric or self._default_metric).name
            verdicts[row] = Verdict(
                score=float("nan"),
                threshold=self._thresholds[name],
                anomalous=True,
                metric=name,
                false_positive_rate=self._false_positive_rate,
                claim_id=claim.claim_id,
                error=message,
            )
        if not ok_rows:
            return verdicts  # type: ignore[return-value]

        observations = np.stack([claims[row].observation for row in ok_rows])
        locations = np.empty((len(ok_rows), 2), dtype=np.float64)
        localize_positions = [
            pos
            for pos, row in enumerate(ok_rows)
            if claims[row].needs_localization
        ]
        for pos, row in enumerate(ok_rows):
            if claims[row].claimed_location is not None:
                locations[pos] = claims[row].claimed_location
        if localize_positions:
            estimates = self._localizer.localize_observations(
                self._knowledge, observations[localize_positions]
            )
            locations[localize_positions] = estimates

        expected = self._knowledge.expected_observation(locations)

        # Group rows by metric so each metric runs one vectorised compute;
        # compute is row-elementwise, so grouping cannot change any score.
        by_metric: Dict[str, List[int]] = {}
        for pos, row in enumerate(ok_rows):
            name = resolve_metric(claims[row].metric or self._default_metric).name
            by_metric.setdefault(name, []).append(pos)

        for name, positions in by_metric.items():
            metric = resolve_metric(name)
            scores = np.atleast_1d(
                np.asarray(
                    metric.compute(
                        observations[positions],
                        expected[positions],
                        group_size=self._knowledge.group_size,
                    ),
                    dtype=np.float64,
                )
            )
            threshold = self._thresholds[name]
            for pos, score in zip(positions, scores):
                value = float(score)
                verdicts[ok_rows[pos]] = Verdict(
                    score=value,
                    threshold=threshold,
                    anomalous=value > threshold,
                    metric=name,
                    false_positive_rate=self._false_positive_rate,
                    claim_id=claims[ok_rows[pos]].claim_id,
                )
        return verdicts  # type: ignore[return-value]

    def verify(self, claim: LocationClaim) -> Verdict:
        """Verify one claim (a batch of one) and record its latency."""
        start = time.perf_counter()
        verdict = self.verify_batch([claim])[0]
        return verdict.with_latency((time.perf_counter() - start) * 1000.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DetectionService(metrics={self.metrics}, "
            f"fp={self._false_positive_rate:g}, "
            f"n_groups={self.n_groups})"
        )
