"""Load generator + latency reporting for the detection service.

``lad-repro loadgen`` (and the serving benchmark suite) drive a
:class:`~repro.serving.runtime.ServiceRuntime` — in-process or over TCP —
with realistic claim streams and report what operators actually tune for:
sustained claims/sec and the p50/p99 end-to-end latency a claimant sees.

Claim material comes from the scenario itself
(:func:`claims_from_session`): the session's evaluation victims provide
honest ``(observation, actual location)`` pairs, so the generated load
exercises the same score distribution as the offline evaluation — no
synthetic observations that the ``g(z)`` table has never seen.

The generator is **open-loop**: claim *i* is released at
``start + i / rate`` regardless of how fast earlier claims completed, so
queueing delay shows up in the latency percentiles instead of being
hidden by a closed feedback loop (the standard way load generators
accidentally flatter p99).  ``rate=None`` releases everything immediately
— the saturation mode the throughput benchmark uses.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.verdict import Verdict
from repro.serving.claims import LocationClaim
from repro.serving.runtime import ServiceOverloaded, ServiceRuntime
from repro.serving.transport import ClaimClient, RemoteClaimError

__all__ = [
    "LoadReport",
    "claims_from_session",
    "run_load",
    "run_tcp_load",
]

_Submit = Callable[[LocationClaim], Awaitable[Verdict]]


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run measured.

    Latencies are measured client-side (submission to verdict, in
    milliseconds), so they include queueing and — over TCP — the wire.
    """

    total: int
    completed: int
    rejected: int
    errors: int
    flagged: int
    duration_s: float
    latencies_ms: np.ndarray
    #: Verdict score per claim in submission order (NaN where the claim was
    #: rejected or errored) — lets callers compare runs bit-for-bit.
    scores: np.ndarray

    @property
    def claims_per_sec(self) -> float:
        """Completed verdicts per second of wall-clock."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile *q* (in [0, 100]) in milliseconds."""
        if self.latencies_ms.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_ms, q))

    @property
    def p50_ms(self) -> float:
        """Median end-to-end latency."""
        return self.percentile(50.0)

    @property
    def p99_ms(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.percentile(99.0)

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly summary (used by the CLI and the benchmark)."""
        return {
            "total": self.total,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "flagged": self.flagged,
            "duration_s": round(self.duration_s, 6),
            "claims_per_sec": round(self.claims_per_sec, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
        }

    def summary(self) -> str:
        """One human line: throughput + tail latency."""
        return (
            f"{self.completed}/{self.total} verdicts in {self.duration_s:.3f}s "
            f"({self.claims_per_sec:.1f} claims/s), "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms, "
            f"{self.flagged} flagged, {self.rejected} rejected"
        )


def claims_from_session(
    session,
    *,
    count: int,
    localize: bool = False,
    metric: Optional[str] = None,
) -> List[LocationClaim]:
    """Honest claims drawn from a session's evaluation victims.

    Victims are cycled when *count* exceeds the sample.  With
    ``localize=True`` the claimed locations are omitted, turning every
    claim into a localize-then-verify request (beaconless sessions only).
    """
    victims = session.victims()
    observations = np.asarray(victims.observations)
    locations = np.asarray(victims.actual_locations)
    claims = []
    for i in range(count):
        j = i % observations.shape[0]
        claims.append(
            LocationClaim(
                observation=observations[j],
                claimed_location=None if localize else locations[j],
                claim_id=f"load-{i}",
                metric=metric,
            )
        )
    return claims


async def _drive(
    submit: _Submit,
    claims: Sequence[LocationClaim],
    *,
    rate: Optional[float] = None,
) -> LoadReport:
    """Release claims open-loop at *rate*/sec (or all at once) and collect."""
    loop = asyncio.get_running_loop()
    outcomes: List[Optional[Verdict]] = [None] * len(claims)
    rejected = 0
    errors = 0
    latencies: List[float] = []

    async def one(index: int, claim: LocationClaim) -> None:
        nonlocal rejected, errors
        begin = time.perf_counter()
        try:
            verdict = await submit(claim)
        except (ServiceOverloaded, RemoteClaimError) as error:
            overloaded = getattr(error, "overloaded", True)
            if isinstance(error, ServiceOverloaded) or overloaded:
                rejected += 1
            else:
                errors += 1
            return
        except Exception:
            errors += 1
            return
        outcomes[index] = verdict
        latencies.append((time.perf_counter() - begin) * 1000.0)

    start = loop.time()
    wall_start = time.perf_counter()
    tasks = []
    for index, claim in enumerate(claims):
        if rate is not None:
            target = start + index / rate
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        tasks.append(loop.create_task(one(index, claim)))
    if tasks:
        await asyncio.gather(*tasks)
    duration = time.perf_counter() - wall_start

    verdicts = [verdict for verdict in outcomes if verdict is not None]
    return LoadReport(
        total=len(claims),
        completed=len(verdicts),
        rejected=rejected,
        errors=errors,
        flagged=sum(1 for verdict in verdicts if verdict.anomalous),
        duration_s=duration,
        latencies_ms=np.asarray(latencies, dtype=np.float64),
        scores=np.array(
            [
                np.nan if verdict is None else verdict.score
                for verdict in outcomes
            ],
            dtype=np.float64,
        ),
    )


async def run_load(
    runtime: ServiceRuntime,
    claims: Sequence[LocationClaim],
    *,
    rate: Optional[float] = None,
) -> LoadReport:
    """Drive an in-process runtime with *claims* and measure the outcome."""
    return await _drive(runtime.submit, claims, rate=rate)


async def run_tcp_load(
    host: str,
    port: int,
    claims: Sequence[LocationClaim],
    *,
    rate: Optional[float] = None,
    connections: int = 1,
) -> LoadReport:
    """Drive a remote ``lad-repro serve`` instance over TCP.

    *connections* clients share the claim stream round-robin, so the
    generator itself does not serialise on one socket when probing a
    server's saturation throughput.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    clients = [ClaimClient(host, port) for _ in range(connections)]
    for client in clients:
        await client.__aenter__()
    try:

        async def submit(claim: LocationClaim) -> Verdict:
            # claim_id is "load-<i>": route by stream order for round-robin.
            index = hash(claim.claim_id) % connections
            return await clients[index].submit(claim)

        return await _drive(submit, claims, rate=rate)
    finally:
        for client in clients:
            await client.__aexit__(None, None, None)
