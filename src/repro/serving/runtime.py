"""Asyncio front of the detection service — micro-batching + backpressure.

:class:`ServiceRuntime` wraps a :class:`~repro.serving.service.DetectionService`
in the shape an online verifier actually needs:

* **admission** — ``await runtime.submit(claim)`` validates the claim,
  enqueues it, and resolves to its :class:`~repro.core.verdict.Verdict`;
* **micro-batching** — a single consumer task collects queued claims into
  batches, flushing when ``max_batch_size`` claims are waiting *or*
  ``max_wait_ms`` has passed since the batch opened, whichever comes
  first.  Each flush is ONE vectorised
  :meth:`DetectionService.verify_batch` call;
* **backpressure** — the admission queue is bounded.  When it is full,
  ``overflow="reject"`` fails fast with :class:`ServiceOverloaded`
  (carrying a ``retry_after_ms`` hint for the transport to relay), while
  ``overflow="block"`` parks the submitter until space frees up;
* **graceful shutdown** — ``await runtime.close()`` stops admission
  (:class:`ServiceClosed`), then drains: every claim accepted before the
  close is still verified and its future resolved.  Nothing is dropped.

Batches run in a single-thread executor so the event loop keeps admitting
(and rejecting) claims while numpy crunches the current batch — admission
latency stays flat under load instead of tracking batch compute time.

The micro-batcher uses a *persistent pending getter*: the one outstanding
``queue.get()`` future survives a flush timeout into the next batch
instead of being cancelled, so a claim can never be popped by a getter
that is abandoned before delivering it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.verdict import Verdict
from repro.serving.claims import LocationClaim
from repro.serving.service import DetectionService
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive

__all__ = [
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceRuntime",
    "ServiceStats",
    "ServingConfig",
]

_LOGGER = get_logger("serving.runtime")

#: Queue marker that tells the batch loop to flush and exit.
_SENTINEL = object()


class ServiceOverloaded(RuntimeError):
    """The admission queue is full and the overflow policy is ``reject``.

    Attributes
    ----------
    retry_after_ms:
        How long the submitter should back off before retrying.
    """

    def __init__(self, retry_after_ms: float):
        super().__init__(
            f"detection service overloaded; retry in {retry_after_ms:g} ms"
        )
        self.retry_after_ms = float(retry_after_ms)


class ServiceClosed(RuntimeError):
    """The runtime is shutting down and no longer admits claims."""


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs of the asyncio serving front.

    Attributes
    ----------
    max_batch_size:
        Flush a micro-batch as soon as this many claims are collected.
    max_wait_ms:
        Flush an incomplete batch this long after its first claim arrived
        (the latency price a claim may pay for batching).
    queue_size:
        Bound of the admission queue; the backpressure trigger.
    overflow:
        ``"reject"`` fails a submit into a full queue with
        :class:`ServiceOverloaded`; ``"block"`` parks the submitter.
    retry_after_ms:
        Back-off hint carried by :class:`ServiceOverloaded` (and relayed
        by transports in error responses).
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    queue_size: int = 1024
    overflow: str = "reject"
    retry_after_ms: float = 20.0

    def __post_init__(self) -> None:
        check_positive("max_batch_size", self.max_batch_size)
        check_positive("queue_size", self.queue_size)
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.overflow not in ("reject", "block"):
            raise ValueError(
                f"overflow must be 'reject' or 'block', got {self.overflow!r}"
            )
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}"
            )


@dataclass
class ServiceStats:
    """Running counters of one :class:`ServiceRuntime`."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    largest_batch: int = 0
    batched_claims: int = 0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    @property
    def mean_batch_size(self) -> float:
        """Average claims per flushed micro-batch."""
        return self.batched_claims / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Counter snapshot (without the raw latency samples)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 3),
        }


class ServiceRuntime:
    """Bounded-queue micro-batching front of a :class:`DetectionService`.

    Use as an async context manager::

        async with ServiceRuntime(service, config) as runtime:
            verdict = await runtime.submit(claim)

    or call :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(
        self,
        service: DetectionService,
        config: Optional[ServingConfig] = None,
    ):
        self._service = service
        self._config = config or ServingConfig()
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self.stats = ServiceStats()

    @property
    def service(self) -> DetectionService:
        """The wrapped detection service."""
        return self._service

    @property
    def config(self) -> ServingConfig:
        """The serving configuration."""
        return self._config

    @property
    def started(self) -> bool:
        """Whether the batch loop is running."""
        return self._worker is not None and not self._worker.done()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ServiceRuntime":
        """Start the micro-batching consumer task."""
        if self._worker is not None:
            raise RuntimeError("ServiceRuntime is already started")
        self._queue = asyncio.Queue(maxsize=self._config.queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="lad-serve"
        )
        self._worker = asyncio.get_running_loop().create_task(self._run())
        return self

    async def close(self) -> None:
        """Stop admission, drain every accepted claim, stop the loop.

        Safe to call more than once.  Claims whose :meth:`submit` already
        succeeded (or is blocked inside an accepted ``put``) are verified
        before the batch loop exits — the sentinel enters the queue behind
        them, so the loop cannot see it first.
        """
        if self._closed:
            if self._worker is not None:
                await asyncio.shield(self._worker)
            return
        self._closed = True
        if self._worker is None:
            return
        await self._queue.put(_SENTINEL)
        await self._worker
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "ServiceRuntime":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- admission ---------------------------------------------------------

    async def submit(self, claim: LocationClaim) -> Verdict:
        """Admit one claim and await its verdict.

        Raises
        ------
        ServiceClosed
            The runtime is (or starts) shutting down.
        ServiceOverloaded
            The queue is full under the ``reject`` overflow policy.
        ClaimError
            The claim cannot be served (checked before it takes a slot).
        """
        if self._worker is None:
            raise RuntimeError("ServiceRuntime is not started")
        if self._closed:
            raise ServiceClosed("detection service is shutting down")
        self._service.validate(claim)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = (claim, future, time.perf_counter())
        if self._config.overflow == "reject":
            try:
                self._queue.put_nowait(entry)
            except asyncio.QueueFull:
                self.stats.rejected += 1
                raise ServiceOverloaded(self._config.retry_after_ms) from None
        else:
            await self._queue.put(entry)
        self.stats.submitted += 1
        return await future

    # -- the micro-batcher -------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        max_wait_s = self._config.max_wait_ms / 1000.0
        getter: Optional[asyncio.Future] = None
        running = True
        while running:
            # Wait (without deadline) for the claim that opens a batch.
            if getter is None:
                getter = asyncio.ensure_future(self._queue.get())
            await asyncio.wait({getter})
            first = getter.result()
            getter = None
            if first is _SENTINEL:
                break
            batch = [first]
            deadline = loop.time() + max_wait_s
            # Top up until the batch is full or the batch timer fires.  A
            # timed-out getter is NOT cancelled — it stays pending and
            # opens (or joins) the next batch, so no claim is ever lost.
            while len(batch) < self._config.max_batch_size:
                if getter is None:
                    # Fast path: drain claims that are already queued
                    # without paying an event-loop round-trip per claim —
                    # this is where a saturated queue spends its time.
                    try:
                        entry = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        pass
                    else:
                        if entry is _SENTINEL:
                            running = False
                            break
                        batch.append(entry)
                        continue
                    getter = asyncio.ensure_future(self._queue.get())
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                done, _ = await asyncio.wait({getter}, timeout=timeout)
                if not done:
                    break
                entry = getter.result()
                getter = None
                if entry is _SENTINEL:
                    running = False
                    break
                batch.append(entry)
            await self._flush(batch)
        # Defensive drain: with FIFO admission the sentinel is always the
        # last entry, so this should find nothing — but if it ever does,
        # verifying is strictly better than dropping.
        leftovers = []
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if entry is not _SENTINEL:
                leftovers.append(entry)
        if leftovers:  # pragma: no cover - unreachable by construction
            await self._flush(leftovers)

    async def _flush(
        self, batch: List[Tuple[LocationClaim, asyncio.Future, float]]
    ) -> None:
        """Verify one micro-batch off-loop and resolve its futures."""
        claims = [claim for claim, _, _ in batch]
        try:
            verdicts = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._service.verify_batch, claims
            )
        except Exception as error:  # claim validation happens at admission,
            # so this is a genuine backend failure: fail the whole batch.
            _LOGGER.exception("micro-batch of %d claims failed", len(claims))
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(error)
                    self.stats.failed += 1
            return
        finish = time.perf_counter()
        self.stats.batches += 1
        self.stats.batched_claims += len(batch)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        for verdict, (_, future, enqueued) in zip(verdicts, batch):
            latency_ms = (finish - enqueued) * 1000.0
            self.stats.latencies_ms.append(latency_ms)
            if not future.done():
                future.set_result(verdict.with_latency(latency_ms))
                self.stats.completed += 1
