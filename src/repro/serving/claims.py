"""Location claims — the request type of the streaming detection service.

A :class:`LocationClaim` is what a node submits for verification: its
observation vector ``o`` (how many neighbours it heard from each
deployment group) plus, usually, the location it claims to be at.  Claims
without a claimed location ask the service to *localize first*: the
observation is run through the service's localization scheme (the
beaconless MLE engine — the only scheme that needs nothing beyond the
observation) and the resulting estimate is verified exactly like a claimed
one.

The module also carries the JSONL wire form used by ``lad-repro serve``:
one claim per line, ``{"id": ..., "observation": [...],
"claimed_location": [x, y]}``.  Malformed requests raise
:class:`ClaimError`, which transports turn into per-line error responses
instead of dropping the connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["ClaimError", "LocationClaim", "claim_from_dict", "claim_to_dict"]


class ClaimError(ValueError):
    """A malformed or unserviceable location claim."""


@dataclass(frozen=True, eq=False)
class LocationClaim:
    """One location-verification request.

    Attributes
    ----------
    observation:
        The claimant's observation vector, shape ``(n_groups,)``.
    claimed_location:
        The location the node claims, shape ``(2,)`` — or ``None`` to ask
        the service to localize the observation first (beaconless scheme
        only).
    claim_id:
        Caller-chosen identifier echoed on the verdict (transports use it
        to match out-of-order responses).
    metric:
        Optional per-claim metric override; ``None`` uses the service's
        default metric.
    """

    observation: np.ndarray
    claimed_location: Optional[np.ndarray] = None
    claim_id: Optional[str] = None
    metric: Optional[str] = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        observation = np.asarray(self.observation, dtype=np.float64)
        if observation.ndim != 1 or observation.size == 0:
            raise ClaimError(
                f"claim observation must be a non-empty 1-D vector, got "
                f"shape {observation.shape}"
            )
        if not np.all(np.isfinite(observation)):
            raise ClaimError("claim observation contains non-finite values")
        set_(self, "observation", observation)
        if self.claimed_location is not None:
            location = np.asarray(self.claimed_location, dtype=np.float64)
            if location.shape != (2,):
                raise ClaimError(
                    f"claimed_location must be a 2-vector, got shape "
                    f"{location.shape}"
                )
            if not np.all(np.isfinite(location)):
                raise ClaimError("claimed_location contains non-finite values")
            set_(self, "claimed_location", location)
        if self.claim_id is not None:
            set_(self, "claim_id", str(self.claim_id))
        if self.metric is not None:
            set_(self, "metric", str(self.metric))

    @property
    def needs_localization(self) -> bool:
        """Whether the service must localize before it can verify."""
        return self.claimed_location is None


def claim_from_dict(payload: Mapping) -> LocationClaim:
    """Decode one JSONL request object into a :class:`LocationClaim`."""
    if not isinstance(payload, Mapping):
        raise ClaimError(f"claim must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {"id", "observation", "claimed_location", "metric"}
    if unknown:
        raise ClaimError(f"unknown claim field(s): {', '.join(sorted(unknown))}")
    if "observation" not in payload:
        raise ClaimError("claim is missing the 'observation' field")
    return LocationClaim(
        observation=payload["observation"],
        claimed_location=payload.get("claimed_location"),
        claim_id=payload.get("id"),
        metric=payload.get("metric"),
    )


def claim_to_dict(claim: LocationClaim) -> Dict[str, object]:
    """Encode a claim as its JSONL request object."""
    payload: Dict[str, object] = {"observation": claim.observation.tolist()}
    if claim.claimed_location is not None:
        payload["claimed_location"] = claim.claimed_location.tolist()
    if claim.claim_id is not None:
        payload["id"] = claim.claim_id
    if claim.metric is not None:
        payload["metric"] = claim.metric
    return payload
