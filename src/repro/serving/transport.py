"""JSONL transports of ``lad-repro serve`` — TCP and stdio.

The wire protocol is newline-delimited JSON in both directions.  Requests
are claim objects (see :func:`repro.serving.claims.claim_from_dict`)::

    {"id": "c-17", "observation": [4, 0, 2, ...], "claimed_location": [120.0, 85.5]}

Responses are either verdicts::

    {"id": "c-17", "decision": "accept", "score": 41.25, "threshold": 57.0, ...}

or per-line errors (the connection stays open — one bad request never
tears down a stream of good ones)::

    {"id": "c-17", "error": "claim observation has 9 ...", "retry_after_ms": 20.0}

``retry_after_ms`` is present exactly when the failure is backpressure
(:class:`~repro.serving.runtime.ServiceOverloaded`) and tells a
well-behaved client how long to back off.

Responses may arrive out of request order (claims from one connection land
in different micro-batches), which is why requests carry caller-chosen
``id``\\ s: :class:`ClaimClient` — the client used by the load generator —
matches responses back to submitters by id.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import sys
from typing import Awaitable, Callable, Dict, Optional, TextIO

from repro.core.verdict import Verdict
from repro.serving.claims import (
    ClaimError,
    LocationClaim,
    claim_from_dict,
    claim_to_dict,
)
from repro.serving.runtime import ServiceClosed, ServiceOverloaded, ServiceRuntime
from repro.utils.logging import get_logger

__all__ = [
    "ClaimClient",
    "RemoteClaimError",
    "serve_stdio",
    "serve_tcp",
]

_LOGGER = get_logger("serving.transport")

_WriteLine = Callable[[str], Awaitable[None]]


def _encode_error(
    claim_id: Optional[str],
    message: str,
    *,
    retry_after_ms: Optional[float] = None,
) -> str:
    payload: Dict[str, object] = {"error": message}
    if claim_id is not None:
        payload["id"] = claim_id
    if retry_after_ms is not None:
        payload["retry_after_ms"] = retry_after_ms
    return json.dumps(payload)


async def _handle_line(
    runtime: ServiceRuntime, line: str, write: _WriteLine
) -> None:
    """Decode one request line, submit it, write exactly one response."""
    claim_id: Optional[str] = None
    try:
        payload = json.loads(line)
        if isinstance(payload, dict):
            raw_id = payload.get("id")
            claim_id = None if raw_id is None else str(raw_id)
        claim = claim_from_dict(payload)
    except json.JSONDecodeError as error:
        await write(_encode_error(claim_id, f"invalid JSON: {error}"))
        return
    except ClaimError as error:
        await write(_encode_error(claim_id, str(error)))
        return
    try:
        verdict = await runtime.submit(claim)
    except ServiceOverloaded as error:
        await write(
            _encode_error(
                claim.claim_id,
                str(error),
                retry_after_ms=error.retry_after_ms,
            )
        )
    except (ServiceClosed, ClaimError) as error:
        await write(_encode_error(claim.claim_id, str(error)))
    else:
        await write(json.dumps(verdict.as_dict()))


async def serve_stdio(
    runtime: ServiceRuntime,
    *,
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
) -> int:
    """Serve JSONL claims from *in_stream* until EOF; returns lines served.

    The batch-processing default of ``lad-repro serve``: pipe a claim file
    in, collect one response line per request on stdout.  Requests are
    submitted concurrently (so micro-batching still happens); all in-flight
    claims are awaited before returning.
    """
    in_stream = sys.stdin if in_stream is None else in_stream
    out_stream = sys.stdout if out_stream is None else out_stream
    loop = asyncio.get_running_loop()
    lock = asyncio.Lock()

    async def write(line: str) -> None:
        async with lock:
            out_stream.write(line + "\n")
            out_stream.flush()

    served = 0
    tasks = []
    while True:
        line = await loop.run_in_executor(None, in_stream.readline)
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        served += 1
        tasks.append(loop.create_task(_handle_line(runtime, line, write)))
    if tasks:
        await asyncio.gather(*tasks)
    return served


async def serve_tcp(
    runtime: ServiceRuntime,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[Callable[[str, int], None]] = None,
) -> asyncio.AbstractServer:
    """Start the TCP JSONL server and return it (caller serves forever).

    ``port=0`` binds an ephemeral port; *announce* is called with the
    actual ``(host, port)`` once listening — the CLI prints
    ``listening on HOST:PORT`` from it so scripted clients (and the CI
    smoke test) can parse the bound address.
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        lock = asyncio.Lock()

        async def write(line: str) -> None:
            async with lock:
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()

        tasks = set()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                task = asyncio.get_running_loop().create_task(
                    _handle_line(runtime, line, write)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks)
        except (ConnectionResetError, BrokenPipeError):
            _LOGGER.info("connection from %s reset", peer)
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    server = await asyncio.start_server(handle, host=host, port=port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    if announce is not None:
        announce(bound_host, bound_port)
    _LOGGER.info("serving claims on %s:%d", bound_host, bound_port)
    return server


class RemoteClaimError(RuntimeError):
    """An error response from a remote detection service.

    Attributes
    ----------
    retry_after_ms:
        Back-off hint when the failure was backpressure, else ``None``.
    """

    def __init__(self, message: str, retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms

    @property
    def overloaded(self) -> bool:
        """Whether the remote rejected the claim due to backpressure."""
        return self.retry_after_ms is not None


class ClaimClient:
    """Async JSONL client matching out-of-order responses by claim id.

    Used by the load generator's ``--connect`` mode::

        async with ClaimClient(host, port) as client:
            verdict = await client.submit(claim)
    """

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = int(port)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[str, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._ids = itertools.count()
        self._send_lock = asyncio.Lock()

    async def __aenter__(self) -> "ClaimClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )
        return self

    async def __aexit__(self, *exc_info) -> None:
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
        if self._reader_task is not None:
            await asyncio.wait({self._reader_task})
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    RemoteClaimError("connection closed before response")
                )
        self._pending.clear()

    async def _read_responses(self) -> None:
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                payload = json.loads(raw.decode("utf-8"))
                future = self._pending.pop(str(payload.get("id")), None)
                if future is None or future.done():
                    continue
                if "error" in payload:
                    future.set_exception(
                        RemoteClaimError(
                            payload["error"], payload.get("retry_after_ms")
                        )
                    )
                else:
                    future.set_result(
                        Verdict(
                            score=float(payload["score"]),
                            threshold=float(payload["threshold"]),
                            anomalous=payload["decision"] == "flag",
                            metric=payload["metric"],
                            false_positive_rate=float(
                                payload["false_positive_rate"]
                            ),
                            claim_id=payload.get("id"),
                            latency_ms=payload.get("latency_ms"),
                        )
                    )
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        RemoteClaimError("connection closed before response")
                    )
            self._pending.clear()

    async def submit(self, claim: LocationClaim) -> Verdict:
        """Send one claim and await its verdict (or raise the remote error)."""
        if self._writer is None:
            raise RuntimeError("ClaimClient is not connected")
        claim_id = claim.claim_id
        if claim_id is None:
            claim_id = f"c{next(self._ids)}"
        payload = claim_to_dict(claim)
        payload["id"] = claim_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[claim_id] = future
        line = json.dumps(payload).encode("utf-8") + b"\n"
        async with self._send_lock:
            self._writer.write(line)
            await self._writer.drain()
        return await future
