"""Streaming detection service — online LAD claim verification.

The offline pipeline answers "what detection rate does this configuration
achieve?"; this package answers the operational question: "is *this*
node's location claim consistent with the deployment, right now, and how
many such claims per second can the detector sustain?"

Layers, bottom up:

* :mod:`~repro.serving.claims` — :class:`LocationClaim`, the request type
  and its JSONL wire form;
* :mod:`~repro.serving.service` — :class:`DetectionService`, the
  vectorised verifier holding trained session state (bit-identical to
  offline :class:`~repro.experiments.session.LadSession` scoring);
* :mod:`~repro.serving.runtime` — :class:`ServiceRuntime`, the asyncio
  micro-batching front with bounded-queue backpressure and draining
  shutdown;
* :mod:`~repro.serving.transport` — the JSONL TCP / stdio transports of
  ``lad-repro serve`` and the matching :class:`ClaimClient`;
* :mod:`~repro.serving.loadgen` — the open-loop load generator behind
  ``lad-repro loadgen`` and the serving throughput benchmark.
"""

from repro.serving.claims import (
    ClaimError,
    LocationClaim,
    claim_from_dict,
    claim_to_dict,
)
from repro.serving.loadgen import (
    LoadReport,
    claims_from_session,
    run_load,
    run_tcp_load,
)
from repro.serving.runtime import (
    ServiceClosed,
    ServiceOverloaded,
    ServiceRuntime,
    ServiceStats,
    ServingConfig,
)
from repro.serving.service import DetectionService
from repro.serving.transport import (
    ClaimClient,
    RemoteClaimError,
    serve_stdio,
    serve_tcp,
)

__all__ = [
    "ClaimClient",
    "ClaimError",
    "DetectionService",
    "LoadReport",
    "LocationClaim",
    "RemoteClaimError",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceRuntime",
    "ServiceStats",
    "ServingConfig",
    "claim_from_dict",
    "claim_to_dict",
    "claims_from_session",
    "run_load",
    "run_tcp_load",
    "serve_stdio",
    "serve_tcp",
]
