"""Generic component registries for the public scenario API.

Every pluggable component family (anomaly metrics, attack classes,
deployment models, localization schemes) is published through a
:class:`Registry`: a mapping from canonical short names (plus friendly
aliases) to component classes.  User code and third-party scenarios plug
components in by name::

    import repro.metrics, repro.attacks

    metric = repro.metrics.create("diff")
    repro.attacks.available()          # ['dec_bounded', 'dec_only']

and can register their own implementations with the ``@register``
decorator::

    @repro.metrics.register("my_metric", "mm")
    class MyMetric(AnomalyMetric):
        name = "my_metric"
        ...

The registries replace the old ``get_metric``-style string dispatch: names
are normalised the same way everywhere (lower-case, spaces and dashes to
underscores), unknown names raise a uniform error listing the choices, and
the declarative :class:`~repro.experiments.scenario.ScenarioSpec` validates
its component names against these registries at construction time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Type, TypeVar

__all__ = ["Registry", "normalize_name"]

T = TypeVar("T")


def normalize_name(name: str) -> str:
    """Canonical lookup form of a component name.

    Lower-cased with spaces and dashes folded to underscores, so
    ``"Dec-Bounded"``, ``"dec bounded"`` and ``"dec_bounded"`` all resolve
    to the same entry.
    """
    return str(name).strip().lower().replace(" ", "_").replace("-", "_")


class Registry:
    """A name → class mapping with aliases and decorator registration.

    Parameters
    ----------
    kind:
        Human-readable component-family name used in error messages
        (e.g. ``"metric"``).

    Examples
    --------
    >>> METRICS = Registry("metric")
    >>> @METRICS.register("difference", "dm")
    ... class DiffMetric:
    ...     name = "diff"
    >>> METRICS.create("DM")  # doctest: +ELLIPSIS
    <...DiffMetric object at ...>
    >>> METRICS.available()
    ['diff']
    """

    def __init__(self, kind: str):
        self._kind = str(kind)
        self._classes: Dict[str, type] = {}
        self._aliases: Dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def register(
        self, *aliases: str, name: Optional[str] = None
    ) -> Callable[[Type[T]], Type[T]]:
        """Class decorator registering a component under its canonical name.

        The canonical name is *name* when given, otherwise the class'
        ``name`` attribute.  Extra positional *aliases* resolve to the same
        class.  Re-registering an existing name replaces it (so user code
        can override a built-in), but an alias may not shadow a different
        component's canonical name.
        """

        def decorator(cls: Type[T]) -> Type[T]:
            canonical = normalize_name(name or getattr(cls, "name", "") or "")
            if not canonical:
                raise ValueError(
                    f"cannot register {cls!r} as a {self._kind}: it has no "
                    "'name' attribute and no explicit name was given"
                )
            if self._aliases.get(canonical, canonical) != canonical:
                # Lookups consult aliases first, so a canonical name hiding
                # behind an existing alias would be unreachable.
                raise ValueError(
                    f"cannot register {self._kind} {canonical!r}: the name "
                    f"is already an alias of {self._aliases[canonical]!r}"
                )
            self._classes[canonical] = cls
            for alias in aliases:
                key = normalize_name(alias)
                if key in self._classes and key != canonical:
                    raise ValueError(
                        f"alias {alias!r} would shadow the registered "
                        f"{self._kind} {key!r}"
                    )
                self._aliases[key] = canonical
            return cls

        return decorator

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> type:
        """The registered class for *name* (canonical or alias)."""
        key = normalize_name(name)
        key = self._aliases.get(key, key)
        try:
            return self._classes[key]
        except KeyError:
            raise ValueError(
                f"unknown {self._kind} {name!r}; choose from {self.available()}"
            ) from None

    def create(self, name: str, **kwargs):
        """Instantiate the component registered under *name*."""
        return self.get(name)(**kwargs)

    def resolve(self, spec, **kwargs):
        """Pass a component instance through, or create one from its name."""
        if isinstance(spec, str):
            return self.create(spec, **kwargs)
        return spec

    def canonical(self, name: str) -> str:
        """The canonical name *name* resolves to (validating it exists)."""
        key = normalize_name(name)
        key = self._aliases.get(key, key)
        if key not in self._classes:
            raise ValueError(
                f"unknown {self._kind} {name!r}; choose from {self.available()}"
            )
        return key

    # -- introspection -----------------------------------------------------

    def available(self) -> List[str]:
        """Sorted canonical names of every registered component."""
        return sorted(self._classes)

    def aliases(self) -> Dict[str, str]:
        """Mapping of alias → canonical name (copy)."""
        return dict(self._aliases)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = normalize_name(name)
        return self._aliases.get(key, key) in self._classes

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self._kind!r}, {self.available()})"
