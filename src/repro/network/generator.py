"""Network generation from a deployment model.

The generator implements the deployment process of Section 3.1: ``n``
equal-size groups of ``m`` sensors, group ``G_i`` dropped at deployment
point ``i``, every sensor's resident point drawn from the model's landing
distribution around its group's deployment point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.deployment.knowledge import DeploymentKnowledge
from repro.deployment.models import DeploymentModel, paper_deployment_model
from repro.network.network import SensorNetwork
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.utils.rng import as_generator
from repro.utils.validation import check_int

__all__ = ["NetworkGenerator", "generate_network"]


@dataclass
class NetworkGenerator:
    """Factory producing :class:`SensorNetwork` instances from a model.

    Parameters
    ----------
    model:
        Deployment model (grid of deployment points + landing distribution).
    group_size:
        Number of sensors per group (``m``).
    radio:
        Radio model; defaults to the unit disk with ``R`` = 100 m used in
        the paper's experiments.
    clip_to_region:
        Clamp resident points onto the region boundary (off by default, as
        in the paper).
    """

    model: DeploymentModel
    group_size: int = 300
    radio: Optional[RadioModel] = None
    clip_to_region: bool = False

    def __post_init__(self) -> None:
        check_int("group_size", self.group_size, minimum=1)
        if self.radio is None:
            self.radio = UnitDiskRadio(100.0)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes each generated network will contain."""
        return self.model.n_groups * self.group_size

    def generate(self, rng=None) -> SensorNetwork:
        """Deploy one network realisation."""
        generator = as_generator(rng)
        positions, group_ids = self.model.sample_network_positions(
            generator, self.group_size, clip_to_region=self.clip_to_region
        )
        return SensorNetwork(
            positions=positions,
            group_ids=group_ids,
            n_groups=self.model.n_groups,
            radio=self.radio,
            region=self.model.region,
        )

    def knowledge(
        self,
        *,
        omega: int = 1000,
        backend=None,
        dense_fallback_fraction: Optional[float] = None,
    ) -> DeploymentKnowledge:
        """The deployment knowledge matching the networks this generator makes.

        *backend* and *dense_fallback_fraction* are forwarded to
        :class:`DeploymentKnowledge` (``None`` keeps the numpy reference
        backend and its crossover).
        """
        return DeploymentKnowledge(
            self.model,
            group_size=self.group_size,
            radio_range=self.radio.nominal_range,
            omega=omega,
            backend=backend,
            dense_fallback_fraction=dense_fallback_fraction,
        )


def generate_network(
    group_size: int = 300,
    *,
    radio_range: float = 100.0,
    sigma: float = 50.0,
    rng=None,
    model: Optional[DeploymentModel] = None,
) -> tuple[SensorNetwork, DeploymentKnowledge]:
    """Convenience helper: deploy one paper-style network and its knowledge.

    Returns the ``(network, knowledge)`` pair with the paper's default
    parameters (10 x 10 grid over 1 km², ``σ`` = 50 m, ``R`` = 100 m,
    ``m`` = *group_size*).
    """
    if model is None:
        model = paper_deployment_model(sigma=sigma)
    generator = NetworkGenerator(
        model=model, group_size=group_size, radio=UnitDiskRadio(radio_range)
    )
    network = generator.generate(rng)
    knowledge = generator.knowledge()
    return network, knowledge
