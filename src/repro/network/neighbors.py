"""Neighbour discovery and observation vectors.

After deployment each sensor broadcasts its group id and counts how many
neighbours it hears from every group (Section 5.1).  The resulting
*observation* vector ``o = (o_1, …, o_n)`` is the only runtime input LAD
needs besides the estimated location.

:class:`NeighborIndex` wraps a KD-tree over all node positions and answers
fixed-radius neighbour queries for arbitrary query points.  It also accounts
for per-node range overrides: range-change attacks enlarge the *sender's*
range (which makes a distant node appear in the victim's neighbourhood),
and a reduced override caps how far the sender is heard.

Observation collection for a batch of nodes has two implementations:

* a per-node reference loop (:meth:`NeighborIndex.observation_of_node`
  repeated), which is also the only correct path for probabilistic radio
  models driven by a random generator;
* a one-pass vectorised path used by :meth:`NeighborIndex.observations_of_nodes`
  for deterministic radios — all KD-tree ball queries are issued at once,
  the link filter runs over one flat candidate array, and the per-group
  counts are accumulated with a single grouped histogram.

Both paths produce identical observation vectors; the batched one turns the
evaluation harness' neighbour-discovery cost from ``k`` Python-level queries
into a handful of vectorised kernels.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.network.network import SensorNetwork
from repro.types import as_point

__all__ = [
    "NeighborIndex",
    "observation_from_neighbors",
    "observations_for_nodes",
]

#: Victim batches at least this large route their candidate search through
#: the threaded ``query_ball_point(..., workers=-1)`` path; below it the
#: single tree-against-tree sparse-distance pass has less overhead.
PARALLEL_QUERY_MIN_NODES = 512

#: The threaded ball query only amortises its ragged-result handling when
#: enough cores share the tree walks; below this the sparse pass wins.
PARALLEL_QUERY_MIN_CPUS = 4


def observation_from_neighbors(
    neighbor_groups: np.ndarray, n_groups: int
) -> np.ndarray:
    """Histogram the group ids of a node's neighbours into an observation."""
    neighbor_groups = np.asarray(neighbor_groups, dtype=np.int64)
    return np.bincount(neighbor_groups, minlength=n_groups).astype(np.float64)


class NeighborIndex:
    """KD-tree backed neighbour queries for a :class:`SensorNetwork`.

    Parameters
    ----------
    network:
        The deployed network to index.  Node positions are copied into the
        tree at construction time; rebuild the index after moving nodes.
    """

    def __init__(self, network: SensorNetwork):
        self._network = network
        self._tree = cKDTree(network.positions)
        self._has_custom_ranges = network.ranges is not None and bool(
            np.any(network.ranges != network.radio.nominal_range)
        )

    @property
    def network(self) -> SensorNetwork:
        """The indexed network."""
        return self._network

    # -- raw neighbour queries ----------------------------------------------

    def _search_radius(self) -> float:
        """Candidate search radius covering every possible link length."""
        nominal = self._network.radio.max_range
        if self._has_custom_ranges:
            return float(max(nominal, np.max(self._network.ranges)))
        return float(nominal)

    def _link_mask(
        self,
        dist: np.ndarray,
        candidates: np.ndarray,
        rng=None,
    ) -> np.ndarray:
        """Which candidate links are up, honouring per-node range overrides.

        A node at its nominal range is governed by the radio model.  An
        enlarged range additionally extends the link deterministically up to
        the effective range (keeping whatever probabilistic reach the radio
        model allows beyond it); a reduced range is a hard cap — the sender
        is never heard beyond it, whatever the radio model says.
        """
        net = self._network
        if not self._has_custom_ranges:
            return net.radio.link_up(dist, rng=rng)
        sender_range = net.ranges[candidates]
        nominal = net.radio.nominal_range
        cap = np.where(
            sender_range < nominal,
            sender_range,
            np.maximum(sender_range, net.radio.max_range),
        )
        up = net.radio.link_up(dist, rng=rng)
        up |= (sender_range > nominal) & (dist <= sender_range)
        up &= dist <= cap
        return up

    def neighbors_of_point(
        self,
        point,
        *,
        exclude: Optional[int] = None,
        rng=None,
    ) -> np.ndarray:
        """Indices of nodes whose transmissions reach *point*.

        A node ``u`` is a neighbour of the query point when the distance is
        within ``u``'s effective transmission range (per-node overrides are
        honoured) and the radio model keeps the link up.

        Parameters
        ----------
        point:
            Query location (typically a sensor's resident point).
        exclude:
            Optional node index to drop from the result (the querying node
            itself).
        rng:
            Random generator used by probabilistic radio models.
        """
        p = as_point(point)
        candidates = np.asarray(
            self._tree.query_ball_point(p, self._search_radius()), dtype=np.int64
        )
        if candidates.size == 0:
            return candidates
        diff = self._network.positions[candidates] - p
        dist = np.hypot(diff[:, 0], diff[:, 1])
        neighbors = candidates[self._link_mask(dist, candidates, rng=rng)]
        if exclude is not None:
            neighbors = neighbors[neighbors != exclude]
        return np.sort(neighbors)

    def neighbors_of_node(self, node: int, *, rng=None) -> np.ndarray:
        """Indices of the neighbours of node *node* (excluding itself)."""
        node = int(node)
        return self.neighbors_of_point(
            self._network.positions[node], exclude=node, rng=rng
        )

    # -- observations --------------------------------------------------------

    def observation_of_point(
        self, point, *, exclude: Optional[int] = None, rng=None
    ) -> np.ndarray:
        """Observation vector (per-group neighbour counts) at *point*."""
        neighbors = self.neighbors_of_point(point, exclude=exclude, rng=rng)
        return observation_from_neighbors(
            self._network.group_ids[neighbors], self._network.n_groups
        )

    def observation_of_node(self, node: int, *, rng=None) -> np.ndarray:
        """Observation vector of node *node*."""
        node = int(node)
        return self.observation_of_point(
            self._network.positions[node], exclude=node, rng=rng
        )

    def observations_of_nodes(
        self, nodes: Sequence[int], *, rng=None, batched: bool = True
    ) -> np.ndarray:
        """Observation vectors for a batch of nodes, shape ``(k, n_groups)``.

        For deterministic radio models all ``k`` queries run as one
        vectorised pass (see :meth:`_observations_one_pass`); probabilistic
        radios fall back to the per-node loop so the stream of random draws
        matches repeated :meth:`observation_of_node` calls exactly.

        Parameters
        ----------
        nodes:
            Node indices to collect observations for.
        rng:
            Random generator used by probabilistic radio models.
        batched:
            Set to ``False`` to force the per-node reference loop (used by
            the equivalence tests and benchmarks).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if batched and self._network.radio.is_deterministic:
            return self._observations_one_pass(nodes)
        out = np.empty((nodes.size, self._network.n_groups), dtype=np.float64)
        for row, node in enumerate(nodes):
            out[row] = self.observation_of_node(int(node), rng=rng)
        return out

    def _observations_one_pass(self, nodes: np.ndarray) -> np.ndarray:
        """Build all observation vectors with one query / filter / histogram.

        A KD-tree over the query points answers every ball query in one
        tree-against-tree sparse-distance pass (closed ball, like
        ``query_ball_point``), already paired with the link distances; the
        link filter and the per-group histogram then run as flat vectorised
        kernels.  Avoiding the per-node Python queries — and the per-node
        ragged list handling — is what makes large victim batches cheap.

        Batches of at least :data:`PARALLEL_QUERY_MIN_NODES` nodes — on
        machines with at least :data:`PARALLEL_QUERY_MIN_CPUS` cores —
        issue the ball queries through ``query_ball_point(..., workers=-1)``
        instead: the sparse-distance pass is single-threaded, while the
        threaded query spreads the tree walks over every core.  Both
        branches find the same closed-ball candidate sets, and the threaded
        branch recomputes the link distances with ``np.hypot`` exactly like
        the per-node reference path.
        """
        net = self._network
        if nodes.size == 0:
            return np.zeros((0, net.n_groups), dtype=np.float64)
        query_points = net.positions[nodes]
        if (
            nodes.size >= PARALLEL_QUERY_MIN_NODES
            and (os.cpu_count() or 1) >= PARALLEL_QUERY_MIN_CPUS
        ):
            hits = self._tree.query_ball_point(
                query_points, self._search_radius(), workers=-1
            )
            counts = np.fromiter(
                (len(h) for h in hits), dtype=np.int64, count=nodes.size
            )
            candidates = np.fromiter(
                itertools.chain.from_iterable(hits),
                dtype=np.int64,
                count=int(counts.sum()),
            )
            rows = np.repeat(np.arange(nodes.size), counts)
            diff = net.positions[candidates] - query_points[rows]
            dist = np.hypot(diff[:, 0], diff[:, 1])
        else:
            pairs = cKDTree(query_points).sparse_distance_matrix(
                self._tree, self._search_radius(), output_type="ndarray"
            )
            rows = pairs["i"]
            candidates = pairs["j"]
            dist = pairs["v"]
        keep = self._link_mask(dist, candidates) & (candidates != nodes[rows])
        flat_bins = rows[keep] * net.n_groups + net.group_ids[candidates[keep]]
        histogram = np.bincount(flat_bins, minlength=nodes.size * net.n_groups)
        return histogram.reshape(nodes.size, net.n_groups).astype(np.float64)

    def neighbor_counts(self, nodes: Sequence[int], *, rng=None) -> np.ndarray:
        """Total number of neighbours of each node in *nodes*."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self._network.radio.is_deterministic:
            return self._observations_one_pass(nodes).sum(axis=1).astype(np.int64)
        counts = np.empty(nodes.size, dtype=np.int64)
        for row, node in enumerate(nodes):
            counts[row] = self.neighbors_of_node(int(node), rng=rng).size
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NeighborIndex(nodes={self._network.num_nodes})"


def observations_for_nodes(
    network: SensorNetwork, nodes: Iterable[int], *, rng=None
) -> np.ndarray:
    """Convenience wrapper: build an index and collect observations for *nodes*."""
    index = NeighborIndex(network)
    return index.observations_of_nodes(list(nodes), rng=rng)
