"""Neighbour discovery and observation vectors.

After deployment each sensor broadcasts its group id and counts how many
neighbours it hears from every group (Section 5.1).  The resulting
*observation* vector ``o = (o_1, …, o_n)`` is the only runtime input LAD
needs besides the estimated location.

:class:`NeighborIndex` wraps a KD-tree over all node positions and answers
fixed-radius neighbour queries for arbitrary query points.  It also accounts
for per-node range overrides (range-change attacks enlarge the *sender's*
range, which makes a distant node appear in the victim's neighbourhood).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.network.network import SensorNetwork
from repro.types import as_point, as_points

__all__ = [
    "NeighborIndex",
    "observation_from_neighbors",
    "observations_for_nodes",
]


def observation_from_neighbors(
    neighbor_groups: np.ndarray, n_groups: int
) -> np.ndarray:
    """Histogram the group ids of a node's neighbours into an observation."""
    neighbor_groups = np.asarray(neighbor_groups, dtype=np.int64)
    return np.bincount(neighbor_groups, minlength=n_groups).astype(np.float64)


class NeighborIndex:
    """KD-tree backed neighbour queries for a :class:`SensorNetwork`.

    Parameters
    ----------
    network:
        The deployed network to index.  Node positions are copied into the
        tree at construction time; rebuild the index after moving nodes.
    """

    def __init__(self, network: SensorNetwork):
        self._network = network
        self._tree = cKDTree(network.positions)
        self._has_custom_ranges = network.ranges is not None and bool(
            np.any(network.ranges != network.radio.nominal_range)
        )

    @property
    def network(self) -> SensorNetwork:
        """The indexed network."""
        return self._network

    # -- raw neighbour queries ----------------------------------------------

    def neighbors_of_point(
        self,
        point,
        *,
        exclude: Optional[int] = None,
        rng=None,
    ) -> np.ndarray:
        """Indices of nodes whose transmissions reach *point*.

        A node ``u`` is a neighbour of the query point when the distance is
        within ``u``'s effective transmission range (per-node overrides are
        honoured) and the radio model keeps the link up.

        Parameters
        ----------
        point:
            Query location (typically a sensor's resident point).
        exclude:
            Optional node index to drop from the result (the querying node
            itself).
        rng:
            Random generator used by probabilistic radio models.
        """
        p = as_point(point)
        net = self._network
        nominal = net.radio.max_range
        if self._has_custom_ranges:
            search_radius = float(max(nominal, np.max(net.ranges)))
        else:
            search_radius = float(nominal)
        candidates = np.asarray(
            self._tree.query_ball_point(p, search_radius), dtype=np.int64
        )
        if candidates.size == 0:
            return candidates
        diff = net.positions[candidates] - p
        dist = np.hypot(diff[:, 0], diff[:, 1])

        if self._has_custom_ranges:
            sender_range = net.ranges[candidates]
            # The radio model handles links within the nominal range; nodes
            # with enlarged ranges reach further deterministically.
            up = net.radio.link_up(dist, rng=rng) | (dist <= sender_range)
            up &= dist <= np.maximum(sender_range, net.radio.max_range)
        else:
            up = net.radio.link_up(dist, rng=rng)

        neighbors = candidates[up]
        if exclude is not None:
            neighbors = neighbors[neighbors != exclude]
        return np.sort(neighbors)

    def neighbors_of_node(self, node: int, *, rng=None) -> np.ndarray:
        """Indices of the neighbours of node *node* (excluding itself)."""
        node = int(node)
        return self.neighbors_of_point(
            self._network.positions[node], exclude=node, rng=rng
        )

    # -- observations --------------------------------------------------------

    def observation_of_point(
        self, point, *, exclude: Optional[int] = None, rng=None
    ) -> np.ndarray:
        """Observation vector (per-group neighbour counts) at *point*."""
        neighbors = self.neighbors_of_point(point, exclude=exclude, rng=rng)
        return observation_from_neighbors(
            self._network.group_ids[neighbors], self._network.n_groups
        )

    def observation_of_node(self, node: int, *, rng=None) -> np.ndarray:
        """Observation vector of node *node*."""
        node = int(node)
        return self.observation_of_point(
            self._network.positions[node], exclude=node, rng=rng
        )

    def observations_of_nodes(self, nodes: Sequence[int], *, rng=None) -> np.ndarray:
        """Observation vectors for a batch of nodes, shape ``(k, n_groups)``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.empty((nodes.size, self._network.n_groups), dtype=np.float64)
        for row, node in enumerate(nodes):
            out[row] = self.observation_of_node(int(node), rng=rng)
        return out

    def neighbor_counts(self, nodes: Sequence[int], *, rng=None) -> np.ndarray:
        """Total number of neighbours of each node in *nodes*."""
        nodes = np.asarray(nodes, dtype=np.int64)
        counts = np.empty(nodes.size, dtype=np.int64)
        for row, node in enumerate(nodes):
            counts[row] = self.neighbors_of_node(int(node), rng=rng).size
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NeighborIndex(nodes={self._network.num_nodes})"


def observations_for_nodes(
    network: SensorNetwork, nodes: Iterable[int], *, rng=None
) -> np.ndarray:
    """Convenience wrapper: build an index and collect observations for *nodes*."""
    index = NeighborIndex(network)
    return index.observations_of_nodes(list(nodes), rng=rng)
