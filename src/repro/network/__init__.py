"""Sensor-network substrate: nodes, topology, radio models and observations."""

from repro.network.radio import (
    RadioModel,
    UnitDiskRadio,
    LogNormalShadowingRadio,
)
from repro.network.network import SensorNetwork
from repro.network.generator import NetworkGenerator, generate_network
from repro.network.neighbors import (
    NeighborIndex,
    observation_from_neighbors,
    observations_for_nodes,
)
from repro.network.messages import GroupAnnouncement, BroadcastLog, collect_observation

__all__ = [
    "RadioModel",
    "UnitDiskRadio",
    "LogNormalShadowingRadio",
    "SensorNetwork",
    "NetworkGenerator",
    "generate_network",
    "NeighborIndex",
    "observation_from_neighbors",
    "observations_for_nodes",
    "GroupAnnouncement",
    "BroadcastLog",
    "collect_observation",
]
