"""Group-membership broadcast protocol.

Section 5.1 of the paper: after deployment every sensor broadcasts its group
id to its neighbours, and each sensor builds its observation by counting the
announcements it receives per group.  This module models that exchange at
message granularity, which is what the attack primitives manipulate
(a silent node sends nothing, an impersonating node lies about its group,
a multi-impersonating node floods many claims when no per-link
authentication is in place).

For large Monte-Carlo sweeps the vectorised
:class:`~repro.network.neighbors.NeighborIndex` path is used instead; the
message-level model exists so that the attack primitives can be validated
against an explicit protocol simulation in the tests and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork

__all__ = [
    "GroupAnnouncement",
    "BroadcastLog",
    "collect_observation",
    "run_announcement_round",
]


@dataclass(frozen=True)
class GroupAnnouncement:
    """A single "I am from group ``claimed_group``" message.

    Attributes
    ----------
    sender:
        Index of the physical node that transmitted the message, or ``-1``
        when the message was injected through a wormhole/replay and has no
        in-neighbourhood physical sender.
    claimed_group:
        The group id carried in the message (may differ from the sender's
        true group under impersonation).
    authenticated:
        Whether the message carries a valid per-link authentication tag.
        Detection deployments that enforce authentication drop
        unauthenticated messages, which is what restricts adversaries to
        Dec-Only attacks (Section 6.2).
    """

    sender: int
    claimed_group: int
    authenticated: bool = True


@dataclass
class BroadcastLog:
    """All announcements received by one node during the broadcast round."""

    receiver: int
    messages: List[GroupAnnouncement] = field(default_factory=list)

    def add(self, message: GroupAnnouncement) -> None:
        """Record a received announcement."""
        self.messages.append(message)

    def extend(self, messages: Iterable[GroupAnnouncement]) -> None:
        """Record several received announcements."""
        self.messages.extend(messages)

    def __len__(self) -> int:
        return len(self.messages)


def collect_observation(
    log: BroadcastLog,
    n_groups: int,
    *,
    require_authentication: bool = False,
    deduplicate_senders: bool = False,
) -> np.ndarray:
    """Build an observation vector from a node's broadcast log.

    Parameters
    ----------
    log:
        The announcements the node received.
    n_groups:
        Number of deployment groups.
    require_authentication:
        Drop unauthenticated messages (models a deployment with pairwise
        authentication, the pre-condition of the Dec-Only attack class).
    deduplicate_senders:
        Count at most one message per physical sender.  Combined with
        authentication this removes the multi-impersonation channel.
    """
    counts = np.zeros(n_groups, dtype=np.float64)
    seen: set[int] = set()
    for msg in log.messages:
        if require_authentication and not msg.authenticated:
            continue
        if deduplicate_senders and msg.sender >= 0:
            if msg.sender in seen:
                continue
            seen.add(msg.sender)
        if 0 <= msg.claimed_group < n_groups:
            counts[msg.claimed_group] += 1.0
    return counts


def run_announcement_round(
    network: SensorNetwork,
    receivers: Optional[Iterable[int]] = None,
    *,
    index: Optional[NeighborIndex] = None,
    rng=None,
) -> Dict[int, BroadcastLog]:
    """Simulate one honest group-announcement round.

    Every node broadcasts its true group id once; each receiver in
    *receivers* (default: every node) logs the announcements of its
    neighbours.  Compromised nodes also broadcast honestly here — attack
    behaviour is layered on top by :mod:`repro.attacks.primitives`, which
    edits the logs.

    Returns a mapping from receiver node index to its :class:`BroadcastLog`.
    """
    idx = index or NeighborIndex(network)
    if receivers is None:
        receivers = range(network.num_nodes)
    logs: Dict[int, BroadcastLog] = {}
    for receiver in receivers:
        receiver = int(receiver)
        neighbors = idx.neighbors_of_node(receiver, rng=rng)
        log = BroadcastLog(receiver=receiver)
        for sender in neighbors:
            log.add(
                GroupAnnouncement(
                    sender=int(sender),
                    claimed_group=int(network.group_ids[sender]),
                    authenticated=True,
                )
            )
        logs[receiver] = log
    return logs
