"""The :class:`SensorNetwork` container.

A sensor network is stored column-wise as flat NumPy arrays (positions,
group ids, per-node radio ranges, compromised flags) rather than as a list
of node objects, so that neighbour discovery, observation counting and the
detection metrics can all run as vectorised kernels over tens of thousands
of nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.network.radio import RadioModel, UnitDiskRadio
from repro.types import Region, as_points
from repro.utils.validation import check_positive

__all__ = ["SensorNetwork"]


@dataclass
class SensorNetwork:
    """A deployed wireless sensor network.

    Attributes
    ----------
    positions:
        Resident points of all nodes, shape ``(N, 2)`` (metres).
    group_ids:
        Deployment-group index of each node, shape ``(N,)``.
    n_groups:
        Total number of deployment groups ``n`` (some groups may have no
        surviving members, so this cannot be inferred from ``group_ids``).
    radio:
        The radio model used for connectivity (defaults to a 100 m unit
        disk, the implicit model of the paper).
    region:
        The deployment region (used for plotting and for keeping spoofed
        locations inside the field); optional.
    ranges:
        Optional per-node transmission ranges.  ``None`` means every node
        uses the radio model's nominal range; the range-change attack sets
        individual entries.
    compromised:
        Boolean mask of compromised nodes, shape ``(N,)``.  Starts all
        ``False``; attack code marks nodes.
    """

    positions: np.ndarray
    group_ids: np.ndarray
    n_groups: int
    radio: RadioModel = field(default_factory=lambda: UnitDiskRadio(100.0))
    region: Optional[Region] = None
    ranges: Optional[np.ndarray] = None
    compromised: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.positions = as_points(self.positions)
        self.group_ids = np.asarray(self.group_ids, dtype=np.int64)
        if self.positions.shape[0] != self.group_ids.shape[0]:
            raise ValueError("positions and group_ids must have the same length")
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.group_ids.size and (
            self.group_ids.min() < 0 or self.group_ids.max() >= self.n_groups
        ):
            raise ValueError("group_ids must lie in [0, n_groups)")
        if self.ranges is not None:
            self.ranges = np.asarray(self.ranges, dtype=np.float64)
            if self.ranges.shape != (self.num_nodes,):
                raise ValueError("ranges must have one entry per node")
        if self.compromised is None:
            self.compromised = np.zeros(self.num_nodes, dtype=bool)
        else:
            self.compromised = np.asarray(self.compromised, dtype=bool)
            if self.compromised.shape != (self.num_nodes,):
                raise ValueError("compromised must have one entry per node")

    # -- basic queries -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total number of deployed nodes ``N``."""
        return int(self.positions.shape[0])

    @property
    def group_size(self) -> int:
        """Nominal number of nodes per group (``m``), assuming equal groups."""
        if self.num_nodes % self.n_groups != 0:
            raise ValueError(
                "group_size is only defined for equal-size groups; "
                "use group_counts() instead"
            )
        return self.num_nodes // self.n_groups

    def group_counts(self) -> np.ndarray:
        """Number of nodes actually present in each group."""
        return np.bincount(self.group_ids, minlength=self.n_groups)

    def node_range(self, node: int) -> float:
        """Effective transmission range of a single node."""
        if self.ranges is not None:
            return float(self.ranges[node])
        return float(self.radio.nominal_range)

    def effective_ranges(self) -> np.ndarray:
        """Per-node effective transmission ranges as a dense array."""
        if self.ranges is not None:
            return self.ranges.copy()
        return np.full(self.num_nodes, self.radio.nominal_range, dtype=np.float64)

    def members_of(self, group: int) -> np.ndarray:
        """Indices of the nodes belonging to *group*."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group must be in [0, {self.n_groups}), got {group}")
        return np.flatnonzero(self.group_ids == group)

    # -- mutation used by attack code ---------------------------------------

    def mark_compromised(self, nodes) -> None:
        """Mark the given node indices as compromised."""
        idx = np.asarray(nodes, dtype=np.int64)
        self.compromised[idx] = True

    def set_node_range(self, node: int, new_range: float) -> None:
        """Override a single node's transmission range (range-change attack)."""
        check_positive("new_range", new_range)
        if self.ranges is None:
            self.ranges = np.full(
                self.num_nodes, self.radio.nominal_range, dtype=np.float64
            )
        self.ranges[int(node)] = float(new_range)

    def move_node(self, node: int, new_position) -> None:
        """Physically relocate a node (used by the node-movement variant of
        the range-change attack)."""
        pos = np.asarray(new_position, dtype=np.float64)
        if pos.shape != (2,):
            raise ValueError("new_position must be a single 2-D point")
        self.positions[int(node)] = pos

    def copy(self) -> "SensorNetwork":
        """Deep copy of the network (positions, flags and ranges)."""
        return SensorNetwork(
            positions=self.positions.copy(),
            group_ids=self.group_ids.copy(),
            n_groups=self.n_groups,
            radio=self.radio,
            region=self.region,
            ranges=None if self.ranges is None else self.ranges.copy(),
            compromised=self.compromised.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensorNetwork(nodes={self.num_nodes}, groups={self.n_groups}, "
            f"radio={self.radio!r})"
        )
