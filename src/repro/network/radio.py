"""Radio propagation models.

The paper assumes a fixed transmission range ``R`` (unit-disk connectivity);
range changes only appear as an *attack* (Section 6).  A log-normal
shadowing model is provided as well so the sensitivity of the detection
pipeline to imperfect unit-disk assumptions can be studied (this feeds the
"deployment-knowledge accuracy" future-work experiment the paper sketches in
its conclusion).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["RadioModel", "UnitDiskRadio", "LogNormalShadowingRadio"]


class RadioModel(abc.ABC):
    """Decides which pairs of nodes can hear each other."""

    @property
    @abc.abstractmethod
    def nominal_range(self) -> float:
        """Nominal transmission range in metres (``R`` in the paper)."""

    @abc.abstractmethod
    def link_up(self, distances: np.ndarray, rng=None) -> np.ndarray:
        """Boolean mask of which links (given their lengths) are up."""

    @property
    def max_range(self) -> float:
        """An upper bound on any link length this model can produce.

        Used by neighbour discovery to bound the candidate search radius.
        """
        return self.nominal_range

    @property
    def is_deterministic(self) -> bool:
        """Whether :meth:`link_up` ignores its random generator.

        Deterministic radios let neighbour discovery batch many queries into
        a single vectorised pass without changing the stream of random draws
        a per-node loop would have consumed.
        """
        return False


class UnitDiskRadio(RadioModel):
    """Deterministic unit-disk model: a link is up iff its length is <= R."""

    def __init__(self, radio_range: float = 100.0):
        self._range = check_positive("radio_range", radio_range)

    @property
    def nominal_range(self) -> float:
        return self._range

    @property
    def is_deterministic(self) -> bool:
        return True

    def link_up(self, distances: np.ndarray, rng=None) -> np.ndarray:
        distances = np.asarray(distances, dtype=np.float64)
        return distances <= self._range

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnitDiskRadio(range={self._range:g})"


class LogNormalShadowingRadio(RadioModel):
    """Probabilistic connectivity with log-normal shadowing.

    The received power at distance ``d`` deviates from the path-loss mean by
    a zero-mean Gaussian (in dB) with standard deviation ``shadowing_db``.
    A link is up when the shadowed path loss stays within the link budget
    implied by the nominal range.  With ``shadowing_db = 0`` this reduces to
    the unit-disk model.
    """

    def __init__(
        self,
        radio_range: float = 100.0,
        *,
        path_loss_exponent: float = 2.5,
        shadowing_db: float = 4.0,
        max_range_factor: float = 2.0,
    ):
        self._range = check_positive("radio_range", radio_range)
        self._exponent = check_positive("path_loss_exponent", path_loss_exponent)
        self._shadowing_db = check_positive("shadowing_db", shadowing_db, strict=False)
        self._max_range_factor = check_positive("max_range_factor", max_range_factor)
        if max_range_factor < 1.0:
            raise ValueError("max_range_factor must be >= 1")

    @property
    def nominal_range(self) -> float:
        return self._range

    @property
    def path_loss_exponent(self) -> float:
        """Path-loss exponent of the propagation model."""
        return self._exponent

    @property
    def shadowing_db(self) -> float:
        """Standard deviation of the shadowing term, in dB."""
        return self._shadowing_db

    @property
    def max_range(self) -> float:
        return self._range * self._max_range_factor

    @property
    def is_deterministic(self) -> bool:
        return self._shadowing_db == 0.0

    def link_up(self, distances: np.ndarray, rng=None) -> np.ndarray:
        distances = np.asarray(distances, dtype=np.float64)
        if self._shadowing_db == 0.0:
            return distances <= self._range
        generator = as_generator(rng)
        # Margin (in dB) of the link budget relative to the nominal range.
        with np.errstate(divide="ignore"):
            margin_db = (
                10.0
                * self._exponent
                * (np.log10(self._range) - np.log10(np.maximum(distances, 1e-9)))
            )
        shadowing = generator.normal(0.0, self._shadowing_db, size=distances.shape)
        up = margin_db + shadowing >= 0.0
        # Hard cut-off so the neighbour search radius stays bounded.
        return up & (distances <= self.max_range)

    def connection_probability(self, distances: np.ndarray) -> np.ndarray:
        """Analytic probability that a link of the given length is up."""
        from scipy.special import ndtr

        distances = np.asarray(distances, dtype=np.float64)
        if self._shadowing_db == 0.0:
            return (distances <= self._range).astype(np.float64)
        with np.errstate(divide="ignore"):
            margin_db = (
                10.0
                * self._exponent
                * (np.log10(self._range) - np.log10(np.maximum(distances, 1e-9)))
            )
        prob = ndtr(margin_db / self._shadowing_db)
        return np.where(distances <= self.max_range, prob, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogNormalShadowingRadio(range={self._range:g}, "
            f"exponent={self._exponent:g}, shadowing_db={self._shadowing_db:g})"
        )
