"""Reproduction of *LAD: Localization Anomaly Detection for Wireless Sensor
Networks* (Du, Fang, Ning, 2005).

The package is organised bottom-up:

* :mod:`repro.deployment` — deployment knowledge (grid deployment model,
  Gaussian landing distribution, the ``g(z)`` formula and its lookup table);
* :mod:`repro.network` — sensor-network substrate (generation, radio
  models, neighbour discovery, group-announcement protocol);
* :mod:`repro.localization` — the beaconless MLE localization scheme the
  paper evaluates with, plus beacon-based baselines;
* :mod:`repro.attacks` — the adversary models (silence / impersonation /
  multi-impersonation / range-change primitives, the Dec-Bounded and
  Dec-Only classes, the greedy metric-minimising adversary, D-anomaly
  displacement);
* :mod:`repro.core` — the LAD detection scheme itself (expected
  observations, the Diff / Add-all / Probability metrics, threshold
  training, the detector, ROC evaluation);
* :mod:`repro.experiments` — the scenario API (``LadSession`` cached
  evaluation state, declarative ``ScenarioSpec`` sweeps, the artifact
  store) that regenerates every figure of the paper's evaluation section;
* :mod:`repro.events` — the discrete-event temporal engine (timelines of
  mobility, churn, beacon failures and mid-run attacks replayed through
  per-epoch re-localization, with online detection-latency metrics);
* :mod:`repro.serving` — the streaming detection service
  (``DetectionService`` vectorised claim verification, the asyncio
  micro-batching runtime with backpressure, JSONL transports and the
  load generator behind ``lad-repro serve`` / ``lad-repro loadgen``);
* :mod:`repro.applications` — motivating applications (geographic routing,
  surveillance, coverage) used by the examples.

Pluggable component families (metrics, attack classes, deployment models,
localizers, array backends) are published through :class:`repro.registry.Registry`
instances — ``repro.metrics.create("diff")``,
``repro.attacks.available()``, ``repro.localization.create("dvhop")`` —
so third-party scenarios can add components by name.
"""

from repro._version import __version__

# Array-compute backends (the deployment kernels already depend on them,
# so the export is eager and free).
from repro.backend import (
    ArrayBackend,
    BACKENDS,
    BackendSpec,
    NumpyBackend,
    TorchBackend,
    default_backend,
)

# Deployment substrate.
from repro.types import Region, PAPER_REGION
from repro.deployment import (
    GaussianResidentDistribution,
    UniformDiskResidentDistribution,
    GridDeploymentModel,
    HexDeploymentModel,
    RandomDeploymentModel,
    paper_deployment_model,
    GzTable,
    gz_exact,
    gz_quadrature,
    DeploymentKnowledge,
)

# Network substrate.
from repro.network import (
    SensorNetwork,
    NetworkGenerator,
    generate_network,
    NeighborIndex,
    UnitDiskRadio,
    LogNormalShadowingRadio,
)

# Localization schemes.
from repro.localization import (
    BeaconlessLocalizer,
    CentroidLocalizer,
    MmseMultilaterationLocalizer,
    DvHopLocalizer,
    ApitLocalizer,
    BeaconInfrastructure,
    localization_error,
    localization_errors,
)

# Attacks.
from repro.attacks import (
    AttackBudget,
    DecBoundedAttack,
    DecOnlyAttack,
    GreedyMetricMinimizer,
    DisplacementAttack,
    SilenceAttack,
    ImpersonationAttack,
    MultiImpersonationAttack,
    RangeChangeAttack,
    WormholeAttack,
)

# The LAD core.
from repro.core import (
    DiffMetric,
    AddAllMetric,
    ProbabilityMetric,
    resolve_metric,
    LADDetector,
    ThresholdTable,
    collect_training_data,
    benign_scores,
    compute_roc,
    RocCurve,
    attacked_scores_for_victims,
    detection_rate_at_false_positive,
    evaluate_detection,
    Verdict,
    verdicts_from_scores,
)

# Registries.
from repro.registry import Registry

# The experiments layer (sessions, scenario specs, sweeps, artifact store)
# is exported lazily: ``repro.LadSession`` etc. resolve on first access, so
# ``import repro`` stays light and never drags in multiprocessing-heavy
# paths that user code may not need.
_LAZY_EXPORTS = {
    "SimulationConfig": "repro.experiments.config",
    "LadSession": "repro.experiments.session",
    "ScenarioSpec": "repro.experiments.scenario",
    "ArtifactStore": "repro.experiments.store",
    "SweepPoint": "repro.experiments.sweep",
    "SweepRunner": "repro.experiments.sweep",
    "SweepManifest": "repro.experiments.manifest",
    "SweepProgress": "repro.experiments.manifest",
    "shard_of_point": "repro.experiments.sweep",
    "shard_points": "repro.experiments.sweep",
    "FigureResult": "repro.experiments.results",
    "run_figure": "repro.experiments.figures",
    "run_figure_spec": "repro.experiments.figures.common",
    # events (lazy: the temporal engine pulls in the sweep machinery)
    "EventEngine": "repro.events",
    "EventSpec": "repro.events",
    "TimelineSpec": "repro.events",
    "TemporalOutcome": "repro.events",
    "TemporalRunner": "repro.events",
    "TemporalWorld": "repro.events",
    # serving (lazy for the same reason: asyncio machinery on demand)
    "DetectionService": "repro.serving",
    "LocationClaim": "repro.serving",
    "ClaimError": "repro.serving",
    "ServiceRuntime": "repro.serving",
    "ServingConfig": "repro.serving",
    "ServiceOverloaded": "repro.serving",
    "ServiceClosed": "repro.serving",
    "LoadReport": "repro.serving",
    "claims_from_session": "repro.serving",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        value = getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
        globals()[name] = value
        return value
    if name == "metrics":
        # ``repro.metrics`` (the registry facade) as a lazy submodule, so
        # ``import repro; repro.metrics.create("diff")`` just works.
        import importlib

        return importlib.import_module("repro.metrics")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS) | {"metrics"})


__all__ = [
    "__version__",
    # backends
    "ArrayBackend",
    "BACKENDS",
    "BackendSpec",
    "NumpyBackend",
    "TorchBackend",
    "default_backend",
    # types
    "Region",
    "PAPER_REGION",
    # deployment
    "GaussianResidentDistribution",
    "UniformDiskResidentDistribution",
    "GridDeploymentModel",
    "HexDeploymentModel",
    "RandomDeploymentModel",
    "paper_deployment_model",
    "GzTable",
    "gz_exact",
    "gz_quadrature",
    "DeploymentKnowledge",
    # network
    "SensorNetwork",
    "NetworkGenerator",
    "generate_network",
    "NeighborIndex",
    "UnitDiskRadio",
    "LogNormalShadowingRadio",
    # localization
    "BeaconlessLocalizer",
    "CentroidLocalizer",
    "MmseMultilaterationLocalizer",
    "DvHopLocalizer",
    "ApitLocalizer",
    "BeaconInfrastructure",
    "localization_error",
    "localization_errors",
    # attacks
    "AttackBudget",
    "DecBoundedAttack",
    "DecOnlyAttack",
    "GreedyMetricMinimizer",
    "DisplacementAttack",
    "SilenceAttack",
    "ImpersonationAttack",
    "MultiImpersonationAttack",
    "RangeChangeAttack",
    "WormholeAttack",
    # core
    "DiffMetric",
    "AddAllMetric",
    "ProbabilityMetric",
    "resolve_metric",
    "LADDetector",
    "ThresholdTable",
    "collect_training_data",
    "benign_scores",
    "compute_roc",
    "RocCurve",
    "attacked_scores_for_victims",
    "detection_rate_at_false_positive",
    "evaluate_detection",
    "Verdict",
    "verdicts_from_scores",
    # registries
    "Registry",
    # experiments (lazy)
    "SimulationConfig",
    "LadSession",
    "ScenarioSpec",
    "ArtifactStore",
    "SweepPoint",
    "SweepRunner",
    "SweepManifest",
    "SweepProgress",
    "shard_of_point",
    "shard_points",
    "FigureResult",
    "run_figure",
    "run_figure_spec",
    # events (lazy)
    "EventEngine",
    "EventSpec",
    "TimelineSpec",
    "TemporalOutcome",
    "TemporalRunner",
    "TemporalWorld",
    # serving (lazy)
    "DetectionService",
    "LocationClaim",
    "ClaimError",
    "ServiceRuntime",
    "ServingConfig",
    "ServiceOverloaded",
    "ServiceClosed",
    "LoadReport",
    "claims_from_session",
]
