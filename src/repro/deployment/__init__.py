"""Deployment-knowledge modelling (paper Section 3).

The deployment substrate provides:

* resident-point distributions (:mod:`repro.deployment.distributions`) —
  the two-dimensional Gaussian of Section 3.2 plus alternatives;
* group-based deployment models (:mod:`repro.deployment.models`) — the grid
  layout of Figure 1 plus hexagonal and random layouts;
* the ``g(z)`` neighbourhood probability of Theorem 1
  (:mod:`repro.deployment.gz`), both as exact quadrature and as the
  constant-time table-lookup approximation of Section 3.3;
* :class:`repro.deployment.knowledge.DeploymentKnowledge`, the bundle of
  deployment information each sensor carries and that both the beaconless
  localization scheme and the LAD detector consume.
"""

from repro.deployment.distributions import (
    ResidentPointDistribution,
    GaussianResidentDistribution,
    UniformDiskResidentDistribution,
)
from repro.deployment.models import (
    DEPLOYMENTS as registry,
    DeploymentModel,
    GridDeploymentModel,
    HexDeploymentModel,
    RandomDeploymentModel,
    resolve_deployment_model,
    paper_deployment_model,
)
from repro.deployment.gz import (
    gz_exact,
    gz_quadrature,
    gz_polar_integration,
    gz_monte_carlo,
    GzTable,
)
from repro.deployment.knowledge import DeploymentKnowledge

# Bound registry operations: ``repro.deployment.create("grid")``,
# ``repro.deployment.available()``, ``@repro.deployment.register(...)``.
register = registry.register
create = registry.create
get = registry.get
resolve = registry.resolve
available = registry.available
aliases = registry.aliases

__all__ = [
    "ResidentPointDistribution",
    "GaussianResidentDistribution",
    "UniformDiskResidentDistribution",
    "DeploymentModel",
    "GridDeploymentModel",
    "HexDeploymentModel",
    "RandomDeploymentModel",
    "registry",
    "register",
    "create",
    "get",
    "resolve",
    "available",
    "aliases",
    "resolve_deployment_model",
    "paper_deployment_model",
    "gz_exact",
    "gz_quadrature",
    "gz_polar_integration",
    "gz_monte_carlo",
    "GzTable",
    "DeploymentKnowledge",
]
