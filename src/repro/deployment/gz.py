"""The neighbourhood probability ``g(z)`` of Theorem 1 and its lookup table.

``g(z)`` is the probability that a sensor from a deployment group whose
deployment point is ``z`` metres away lands within radio range ``R`` of the
querying sensor, given that landing offsets follow the isotropic Gaussian of
Section 3.2.  Equation (1) of the paper:

.. math::

    g(z) = \\mathbf{1}\\{z < R\\}\\Big[1 - e^{-(R-z)^2 / 2\\sigma^2}\\Big]
          + \\int_{|z-R|}^{z+R} \\frac{1}{2\\pi\\sigma^2} e^{-\\ell^2/2\\sigma^2}
            \\; 2\\ell \\cos^{-1}\\!\\Big(\\frac{\\ell^2 + z^2 - R^2}{2\\ell z}\\Big)
            \\, d\\ell

The first term is the Rayleigh probability of landing inside the disk of
radius ``R − z`` (which lies entirely within the neighbourhood), and the
integral accumulates, ring by ring, the fraction of each ring of radius
``ℓ`` around the deployment point that intersects the neighbourhood disk.

Four implementations are provided:

* :func:`gz_exact` — adaptive quadrature of Eq. (1) (reference accuracy);
* :func:`gz_quadrature` — fixed-order Gauss–Legendre quadrature of Eq. (1),
  vectorised over ``z`` (used to build tables quickly);
* :func:`gz_polar_integration` — independent evaluation via direct polar
  integration of the Gaussian over the neighbourhood disk (cross-check, this
  route never uses the Theorem 1 algebra);
* :func:`gz_monte_carlo` — plain Monte-Carlo estimate (cross-check).

:class:`GzTable` is the table-lookup approximation of Section 3.3: ``g`` is
pre-computed at ``ω + 1`` points and queries are answered by linear
interpolation in constant time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import integrate

from repro.utils.rng import as_generator
from repro.utils.tables import LookupTable1D
from repro.utils.validation import check_int, check_positive

__all__ = [
    "gz_exact",
    "gz_quadrature",
    "gz_polar_integration",
    "gz_monte_carlo",
    "GzTable",
]

#: Distances below this threshold are treated as "at the deployment point",
#: where Eq. (1) degenerates (division by ``z``) and the exact value is the
#: Rayleigh CDF at ``R``.
_Z_EPSILON = 1e-9


def _rayleigh_cdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """P(landing distance <= r) for the Gaussian landing distribution."""
    r = np.asarray(r, dtype=np.float64)
    return 1.0 - np.exp(-np.clip(r, 0.0, None) ** 2 / (2.0 * sigma**2))


def _integrand(
    ell: np.ndarray,
    z: float,
    radio_range: float,
    sigma: float,
) -> np.ndarray:
    """Integrand of Eq. (1) at ring radius ``ell`` for a scalar ``z``."""
    ell = np.asarray(ell, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        cos_arg = (ell**2 + z**2 - radio_range**2) / (2.0 * ell * z)
    cos_arg = np.clip(cos_arg, -1.0, 1.0)
    density = np.exp(-(ell**2) / (2.0 * sigma**2)) / (2.0 * np.pi * sigma**2)
    return density * 2.0 * ell * np.arccos(cos_arg)


def gz_exact(z, radio_range: float, sigma: float) -> np.ndarray:
    """Evaluate Eq. (1) with adaptive quadrature (``scipy.integrate.quad``).

    Accurate to quadrature tolerance but evaluates one adaptive integral per
    distinct ``z`` value, so it is intended for validation and table
    construction rather than hot loops.
    """
    radio_range = check_positive("radio_range", radio_range)
    sigma = check_positive("sigma", sigma)
    z_arr = np.atleast_1d(np.asarray(z, dtype=np.float64))
    if np.any(z_arr < 0):
        raise ValueError("z must be >= 0")
    out = np.empty_like(z_arr)
    for i, zi in enumerate(z_arr):
        if zi < _Z_EPSILON:
            out[i] = _rayleigh_cdf(radio_range, sigma)
            continue
        first = 0.0
        if zi < radio_range:
            first = float(_rayleigh_cdf(radio_range - zi, sigma))
        lo, hi = abs(zi - radio_range), zi + radio_range
        integral, _ = integrate.quad(
            _integrand, lo, hi, args=(float(zi), radio_range, sigma), limit=200
        )
        out[i] = first + integral
    out = np.clip(out, 0.0, 1.0)
    if np.isscalar(z) or np.asarray(z).ndim == 0:
        return float(out[0])
    return out


def gz_quadrature(
    z, radio_range: float, sigma: float, *, order: int = 256
) -> np.ndarray:
    """Evaluate Eq. (1) with fixed-order Gauss–Legendre quadrature.

    Vectorised over ``z``: the quadrature nodes of every ``z`` value are
    evaluated in a single ``(len(z), order)`` array operation, which makes
    building dense tables cheap.
    """
    radio_range = check_positive("radio_range", radio_range)
    sigma = check_positive("sigma", sigma)
    check_int("order", order, minimum=2)
    z_arr = np.atleast_1d(np.asarray(z, dtype=np.float64))
    if np.any(z_arr < 0):
        raise ValueError("z must be >= 0")

    nodes, weights = np.polynomial.legendre.leggauss(int(order))

    lo = np.abs(z_arr - radio_range)
    hi = z_arr + radio_range
    half = 0.5 * (hi - lo)
    mid = 0.5 * (hi + lo)
    # ``ell`` has shape (len(z), order).
    ell = mid[:, None] + half[:, None] * nodes[None, :]

    z_col = z_arr[:, None]
    with np.errstate(invalid="ignore", divide="ignore"):
        cos_arg = (ell**2 + z_col**2 - radio_range**2) / (2.0 * ell * z_col)
    cos_arg = np.clip(cos_arg, -1.0, 1.0)
    density = np.exp(-(ell**2) / (2.0 * sigma**2)) / (2.0 * np.pi * sigma**2)
    integrand = density * 2.0 * ell * np.arccos(cos_arg)
    integral = half * np.einsum("ij,j->i", integrand, weights)

    first = np.where(
        z_arr < radio_range, _rayleigh_cdf(radio_range - z_arr, sigma), 0.0
    )
    out = np.clip(first + integral, 0.0, 1.0)
    # The z -> 0 limit is handled exactly.
    out = np.where(z_arr < _Z_EPSILON, _rayleigh_cdf(radio_range, sigma), out)
    if np.isscalar(z) or np.asarray(z).ndim == 0:
        return float(out[0])
    return out


def gz_polar_integration(
    z,
    radio_range: float,
    sigma: float,
    *,
    angular_order: int = 256,
    radial_order: int = 256,
) -> np.ndarray:
    """Independent evaluation of ``g(z)`` without using the Theorem 1 algebra.

    Integrates the two-dimensional Gaussian directly over the neighbourhood
    disk in polar coordinates *centred at the sensor*: for each direction
    ``φ`` and radius ``r ≤ R`` the point ``(z + r cosφ, r sinφ)`` (relative
    to the deployment point) contributes
    ``f(point) · r``.  Used by the test-suite to validate Theorem 1.
    """
    radio_range = check_positive("radio_range", radio_range)
    sigma = check_positive("sigma", sigma)
    z_arr = np.atleast_1d(np.asarray(z, dtype=np.float64))
    if np.any(z_arr < 0):
        raise ValueError("z must be >= 0")

    r_nodes, r_weights = np.polynomial.legendre.leggauss(int(radial_order))
    a_nodes, a_weights = np.polynomial.legendre.leggauss(int(angular_order))
    # Map radial nodes to (0, R), angular nodes to (0, 2*pi).
    r = 0.5 * radio_range * (r_nodes + 1.0)
    rw = 0.5 * radio_range * r_weights
    phi = np.pi * (a_nodes + 1.0)
    pw = np.pi * a_weights

    # Squared distance from the deployment point to the sample point, for
    # every (z, r, phi) combination: shape (nz, nr, nphi).
    cos_phi = np.cos(phi)[None, None, :]
    r_grid = r[None, :, None]
    z_grid = z_arr[:, None, None]
    sq = z_grid**2 + r_grid**2 + 2.0 * z_grid * r_grid * cos_phi
    density = np.exp(-sq / (2.0 * sigma**2)) / (2.0 * np.pi * sigma**2)
    integrand = density * r_grid
    out = np.einsum("ijk,j,k->i", integrand, rw, pw)
    out = np.clip(out, 0.0, 1.0)
    if np.isscalar(z) or np.asarray(z).ndim == 0:
        return float(out[0])
    return out


def gz_monte_carlo(
    z, radio_range: float, sigma: float, *, samples: int = 200_000, rng=None
) -> np.ndarray:
    """Monte-Carlo estimate of ``g(z)`` by sampling landing offsets."""
    radio_range = check_positive("radio_range", radio_range)
    sigma = check_positive("sigma", sigma)
    check_int("samples", samples, minimum=1)
    generator = as_generator(rng)
    z_arr = np.atleast_1d(np.asarray(z, dtype=np.float64))
    offsets = generator.normal(0.0, sigma, size=(int(samples), 2))
    out = np.empty_like(z_arr)
    for i, zi in enumerate(z_arr):
        dx = offsets[:, 0] - zi
        dy = offsets[:, 1]
        out[i] = np.mean(dx * dx + dy * dy <= radio_range * radio_range)
    if np.isscalar(z) or np.asarray(z).ndim == 0:
        return float(out[0])
    return out


class GzTable:
    """Constant-time table-lookup approximation of ``g(z)`` (Section 3.3).

    The range ``[0, z_max]`` is divided into ``ω`` equal sub-ranges; ``g`` is
    pre-computed at the ``ω + 1`` dividing points with
    :func:`gz_quadrature`, and queries interpolate linearly between the two
    surrounding knots.  Distances beyond ``z_max`` clamp to ``g(z_max)``
    (which is chosen so that the value there is negligible).

    Parameters
    ----------
    radio_range:
        Wireless transmission range ``R`` in metres.
    sigma:
        Standard deviation of the Gaussian landing distribution.
    omega:
        Number of sub-ranges (``ω`` in the paper).  The default of 1000
        keeps the interpolation error far below any statistical noise; the
        ablation benchmark shows a few hundred already suffices.
    z_max:
        Upper end of the tabulated range.  Defaults to
        ``radio_range + 6 σ + 1`` (beyond which ``g`` is effectively zero)
        unless a larger value is requested.
    """

    def __init__(
        self,
        radio_range: float,
        sigma: float,
        *,
        omega: int = 1000,
        z_max: Optional[float] = None,
        quadrature_order: int = 256,
    ):
        self._radio_range = check_positive("radio_range", radio_range)
        self._sigma = check_positive("sigma", sigma)
        self._omega = check_int("omega", omega, minimum=1)
        default_span = radio_range + 6.0 * sigma + 1.0
        self._z_max = float(z_max) if z_max is not None else default_span
        if self._z_max <= 0:
            raise ValueError("z_max must be > 0")
        self._table = LookupTable1D.from_function(
            lambda zs: gz_quadrature(
                zs, self._radio_range, self._sigma, order=quadrature_order
            ),
            0.0,
            self._z_max,
            self._omega,
            clamp=True,
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_tabulated(
        cls,
        radio_range: float,
        sigma: float,
        knots: np.ndarray,
        values: np.ndarray,
    ) -> "GzTable":
        """Rebuild a table from already-computed knot positions and values.

        The transport-side constructor: sweep workers receive the knot
        arrays of a trained table (e.g. through shared memory) and rebuild
        it without re-running the quadrature pass.  Lookups only ever touch
        the knot arrays, so the rebuilt table interpolates bit-identically
        to the one the arrays came from.  ``float64`` inputs are wrapped
        without copying, which keeps shared-memory views zero-copy.
        """
        table = cls.__new__(cls)
        table._radio_range = check_positive("radio_range", radio_range)
        table._sigma = check_positive("sigma", sigma)
        knots_arr = np.asarray(knots, dtype=np.float64)
        values_arr = np.asarray(values, dtype=np.float64)
        if knots_arr.ndim != 1 or knots_arr.shape != values_arr.shape:
            raise ValueError("knots and values must be matching 1-D arrays")
        if knots_arr.size < 2:
            raise ValueError("a tabulated g(z) needs at least two knots")
        table._omega = int(knots_arr.size - 1)
        table._z_max = float(knots_arr[-1])
        if table._z_max <= 0:
            raise ValueError("z_max must be > 0")
        table._table = LookupTable1D(knots_arr, values_arr, clamp=True)
        return table

    # -- properties --------------------------------------------------------

    @property
    def radio_range(self) -> float:
        """Wireless transmission range ``R``."""
        return self._radio_range

    @property
    def sigma(self) -> float:
        """Standard deviation of the landing distribution."""
        return self._sigma

    @property
    def omega(self) -> int:
        """Number of table sub-ranges."""
        return self._omega

    @property
    def z_max(self) -> float:
        """Largest tabulated distance."""
        return self._z_max

    @property
    def table(self) -> LookupTable1D:
        """The underlying interpolation table."""
        return self._table

    # -- evaluation --------------------------------------------------------

    def __call__(self, z) -> np.ndarray:
        """Interpolated ``g(z)`` for scalar or array ``z`` (clipped to [0, 1])."""
        values = self._table(np.abs(np.asarray(z, dtype=np.float64)))
        return np.clip(values, 0.0, 1.0) if not np.isscalar(values) else float(
            min(max(values, 0.0), 1.0)
        )

    def fast_lookup(self, z: np.ndarray) -> np.ndarray:
        """Vectorised ``g(z)`` via the table's uniform-grid fast path.

        Used by the batched likelihood kernels on large distance arrays
        (``z`` must be non-negative, which every distance matrix satisfies).
        Agrees with :meth:`__call__` up to floating-point rounding.
        """
        return np.clip(self._table.fast_lookup(z), 0.0, 1.0)

    def max_abs_error(self, samples: int = 2000) -> float:
        """Maximum absolute error of the table against adaptive quadrature."""
        zs = np.linspace(0.0, self._z_max, int(samples))
        exact = gz_exact(zs, self._radio_range, self._sigma)
        return float(np.max(np.abs(exact - self._table(zs))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GzTable(R={self._radio_range:g}, sigma={self._sigma:g}, "
            f"omega={self._omega}, z_max={self._z_max:g})"
        )
