"""The deployment knowledge carried by every sensor.

:class:`DeploymentKnowledge` bundles exactly the information the paper
assumes each sensor stores before deployment:

* the coordinates of every deployment point;
* the number of sensors deployed per group (``m``);
* the wireless transmission range ``R``;
* the pre-computed ``g(z)`` table (Section 3.3).

Both the beaconless localization scheme and the LAD detector consume this
object, so it is the natural seam between the deployment substrate and the
rest of the system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.deployment.gz import GzTable
from repro.deployment.models import DeploymentModel
from repro.types import Region, as_points
from repro.utils.validation import check_int, check_positive

__all__ = ["DeploymentKnowledge"]


class DeploymentKnowledge:
    """Per-sensor deployment knowledge (deployment points, ``m``, ``R``, ``g``).

    Parameters
    ----------
    model:
        The deployment model (grid layout + landing distribution).
    group_size:
        Number of sensors per deployment group (``m``).
    radio_range:
        Wireless transmission range ``R`` in metres.
    gz_table:
        Optional pre-built :class:`~repro.deployment.gz.GzTable`.  When
        omitted one is constructed from ``radio_range`` and the model's
        Gaussian ``σ``.
    omega:
        Table resolution used when ``gz_table`` is not supplied.
    """

    def __init__(
        self,
        model: DeploymentModel,
        group_size: int,
        radio_range: float,
        *,
        gz_table: Optional[GzTable] = None,
        omega: int = 1000,
    ):
        self._model = model
        self._group_size = check_int("group_size", group_size, minimum=1)
        self._radio_range = check_positive("radio_range", radio_range)
        if gz_table is None:
            sigma = getattr(model.distribution, "sigma", None)
            if sigma is None:
                raise ValueError(
                    "a GzTable must be supplied explicitly for non-Gaussian "
                    "resident-point distributions"
                )
            z_max = model.region.diagonal + radio_range
            gz_table = GzTable(radio_range, sigma, omega=omega, z_max=z_max)
        self._gz = gz_table

    # -- properties --------------------------------------------------------

    @property
    def model(self) -> DeploymentModel:
        """The deployment model this knowledge was derived from."""
        return self._model

    @property
    def region(self) -> Region:
        """Deployment region."""
        return self._model.region

    @property
    def deployment_points(self) -> np.ndarray:
        """Deployment-point coordinates, shape ``(n_groups, 2)``."""
        return self._model.deployment_points

    @property
    def n_groups(self) -> int:
        """Number of deployment groups ``n``."""
        return self._model.n_groups

    @property
    def group_size(self) -> int:
        """Number of sensors per group ``m``."""
        return self._group_size

    @property
    def radio_range(self) -> float:
        """Wireless transmission range ``R``."""
        return self._radio_range

    @property
    def gz_table(self) -> GzTable:
        """The ``g(z)`` lookup table."""
        return self._gz

    # -- core computations -------------------------------------------------

    def membership_probabilities(self, locations) -> np.ndarray:
        """``g_i(θ)`` for each location ``θ`` and each group ``i``.

        Parameters
        ----------
        locations:
            A single point or an array of shape ``(k, 2)``.

        Returns
        -------
        Array of shape ``(k, n_groups)`` where entry ``[j, i]`` is the
        probability that a given sensor from group ``i`` lands within radio
        range of ``locations[j]``.
        """
        distances = self._model.distances_to_groups(as_points(locations))
        return np.asarray(self._gz(distances), dtype=np.float64)

    def expected_observation(self, locations) -> np.ndarray:
        """Expected observation ``µ_i = m · g_i(θ)`` (paper Eq. (2)).

        Returns an array of shape ``(k, n_groups)``.
        """
        return self._group_size * self.membership_probabilities(locations)

    def expected_neighbor_count(self, locations) -> np.ndarray:
        """Total expected number of neighbours at each location, ``Σ_i µ_i``."""
        return self.expected_observation(locations).sum(axis=1)

    def log_likelihood(self, locations, observation) -> np.ndarray:
        """Log-likelihood of *observation* if the sensor were at *locations*.

        The observation counts of the ``n`` groups are modelled as
        independent ``Binomial(m, g_i(θ))`` variables, which is the
        probabilistic model behind both the beaconless localization scheme
        and the Probability metric.

        Parameters
        ----------
        locations:
            Candidate locations, shape ``(k, 2)``.
        observation:
            A single observation vector of shape ``(n_groups,)``.

        Returns
        -------
        Array of shape ``(k,)`` with the total log-likelihood per location.
        """
        from repro.utils.stats import binomial_log_pmf

        obs = np.asarray(observation, dtype=np.float64)
        if obs.shape != (self.n_groups,):
            raise ValueError(
                f"observation must have shape ({self.n_groups},), got {obs.shape}"
            )
        probs = self.membership_probabilities(locations)
        log_pmf = binomial_log_pmf(obs[None, :], self._group_size, probs)
        return log_pmf.sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeploymentKnowledge(n_groups={self.n_groups}, m={self._group_size}, "
            f"R={self._radio_range:g})"
        )
