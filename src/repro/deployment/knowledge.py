"""The deployment knowledge carried by every sensor.

:class:`DeploymentKnowledge` bundles exactly the information the paper
assumes each sensor stores before deployment:

* the coordinates of every deployment point;
* the number of sensors deployed per group (``m``);
* the wireless transmission range ``R``;
* the pre-computed ``g(z)`` table (Section 3.3).

Both the beaconless localization scheme and the LAD detector consume this
object, so it is the natural seam between the deployment substrate and the
rest of the system.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.backend import ArrayBackend, resolve_backend
from repro.deployment.gz import GzTable
from repro.deployment.models import DeploymentModel
from repro.types import Region, as_points
from repro.utils.validation import check_int, check_positive

__all__ = ["DeploymentKnowledge"]

#: Probabilities at or below this value cannot perturb a log-likelihood term:
#: ``1.0 - p == 1.0`` in float64 (so the unobserved ``(m - k) log(1 - p)``
#: term is an exact zero) whenever ``p <= 2**-55``.
_PRUNE_TINY = 2.0**-55


class DeploymentKnowledge:
    """Per-sensor deployment knowledge (deployment points, ``m``, ``R``, ``g``).

    Parameters
    ----------
    model:
        The deployment model (grid layout + landing distribution).
    group_size:
        Number of sensors per deployment group (``m``).
    radio_range:
        Wireless transmission range ``R`` in metres.
    gz_table:
        Optional pre-built :class:`~repro.deployment.gz.GzTable`.  When
        omitted one is constructed from ``radio_range`` and the model's
        Gaussian ``σ``.
    omega:
        Table resolution used when ``gz_table`` is not supplied.
    backend:
        Array backend running the batched likelihood kernels: ``None``
        (the shared numpy reference), a registered backend name, a
        :class:`~repro.backend.BackendSpec`, or an
        :class:`~repro.backend.ArrayBackend` instance.
    dense_fallback_fraction:
        Optional override of the active-set fraction above which the
        pruned kernels fall back to the dense path; defaults to the
        backend's own crossover.
    """

    def __init__(
        self,
        model: DeploymentModel,
        group_size: int,
        radio_range: float,
        *,
        gz_table: Optional[GzTable] = None,
        omega: int = 1000,
        backend=None,
        dense_fallback_fraction: Optional[float] = None,
    ):
        self._model = model
        self._group_size = check_int("group_size", group_size, minimum=1)
        self._radio_range = check_positive("radio_range", radio_range)
        self._backend = resolve_backend(backend)
        if dense_fallback_fraction is None:
            self._dense_fallback = float(self._backend.dense_fallback_fraction)
        else:
            self._dense_fallback = float(dense_fallback_fraction)
            if not 0.0 < self._dense_fallback <= 1.0:
                raise ValueError("dense_fallback_fraction must be in (0, 1]")
        if gz_table is None:
            sigma = getattr(model.distribution, "sigma", None)
            if sigma is None:
                raise ValueError(
                    "a GzTable must be supplied explicitly for non-Gaussian "
                    "resident-point distributions"
                )
            z_max = model.region.diagonal + radio_range
            gz_table = GzTable(radio_range, sigma, omega=omega, z_max=z_max)
        self._gz = gz_table
        self._group_tree: Optional[cKDTree] = None
        self._support_radius: Optional[float] = None

    # -- transport ---------------------------------------------------------

    def share_parts(self) -> tuple[dict, dict]:
        """Split the knowledge into flat arrays plus a small skeleton.

        Returns ``(arrays, skeleton)``: the arrays hold everything with
        O(n_groups) or O(ω) footprint (the deployment lattice and the
        tabulated ``g(z)`` knots/values, contiguous ``float64`` so they can
        travel through ``multiprocessing.shared_memory`` zero-copy); the
        skeleton holds only scalars plus the tiny landing-distribution
        object.  :meth:`from_share_parts` rebuilds an equivalent knowledge
        object whose likelihood kernels are bit-identical: distances come
        from ``cdist`` over the identical points and probabilities from
        interpolation over the identical knots.
        """
        gz = self._gz
        arrays = {
            "deployment_points": np.ascontiguousarray(
                self.deployment_points, dtype=np.float64
            ),
            "gz_knots": np.ascontiguousarray(gz.table.knots, dtype=np.float64),
            "gz_values": np.ascontiguousarray(gz.table.values, dtype=np.float64),
        }
        region = self.region
        skeleton = {
            "version": 1,
            "region": (region.x_min, region.y_min, region.x_max, region.y_max),
            "distribution": self._model.distribution,
            "group_size": self._group_size,
            "radio_range": self._radio_range,
            "gz_radio_range": gz.radio_range,
            "gz_sigma": gz.sigma,
            "dense_fallback_fraction": self._dense_fallback,
        }
        return arrays, skeleton

    @classmethod
    def from_share_parts(
        cls, skeleton: dict, arrays: dict, *, backend=None
    ) -> "DeploymentKnowledge":
        """Rebuild knowledge from :meth:`share_parts` output.

        *backend* is resolved locally (backends hold process-local state and
        are rebuilt from their spec on the receiving side, not shipped).
        """
        from repro.deployment.models import PrebuiltDeploymentModel

        table = GzTable.from_tabulated(
            skeleton["gz_radio_range"],
            skeleton["gz_sigma"],
            arrays["gz_knots"],
            arrays["gz_values"],
        )
        model = PrebuiltDeploymentModel(
            Region(*skeleton["region"]),
            arrays["deployment_points"],
            distribution=skeleton["distribution"],
        )
        return cls(
            model,
            skeleton["group_size"],
            skeleton["radio_range"],
            gz_table=table,
            backend=backend,
            dense_fallback_fraction=skeleton["dense_fallback_fraction"],
        )

    # -- properties --------------------------------------------------------

    @property
    def model(self) -> DeploymentModel:
        """The deployment model this knowledge was derived from."""
        return self._model

    @property
    def region(self) -> Region:
        """Deployment region."""
        return self._model.region

    @property
    def deployment_points(self) -> np.ndarray:
        """Deployment-point coordinates, shape ``(n_groups, 2)``."""
        return self._model.deployment_points

    @property
    def n_groups(self) -> int:
        """Number of deployment groups ``n``."""
        return self._model.n_groups

    @property
    def group_size(self) -> int:
        """Number of sensors per group ``m``."""
        return self._group_size

    @property
    def radio_range(self) -> float:
        """Wireless transmission range ``R``."""
        return self._radio_range

    @property
    def gz_table(self) -> GzTable:
        """The ``g(z)`` lookup table."""
        return self._gz

    @property
    def backend(self) -> ArrayBackend:
        """The array backend running the batched likelihood kernels."""
        return self._backend

    @property
    def dense_fallback_fraction(self) -> float:
        """Active-set fraction above which pruned kernels go dense."""
        return self._dense_fallback

    # -- active-group pruning ----------------------------------------------

    @property
    def support_radius(self) -> float:
        """Distance beyond which ``g(z)`` cannot perturb a likelihood term.

        Derived from the ``g(z)`` table itself: the first knot after the
        last one whose value exceeds ``2**-55``.  Linear interpolation stays
        within the bracketing knot values, so every query beyond this radius
        yields ``p`` with ``1.0 - p == 1.0`` in float64 — the unobserved
        ``(m − k) · log(1 − p)`` term of such a group is an *exact* zero and
        can be skipped without changing the likelihood sum.  ``inf`` when
        the table still carries non-negligible mass at its upper end (the
        pruned kernels then fall back to the dense path).
        """
        if self._support_radius is None:
            knots = self._gz.table.knots
            values = self._gz.table.values
            above = np.flatnonzero(values > _PRUNE_TINY)
            if above.size == 0:
                self._support_radius = 0.0
            elif above[-1] == values.size - 1:
                self._support_radius = float("inf")
            else:
                self._support_radius = float(knots[above[-1] + 1])
        return self._support_radius

    def active_groups(
        self, locations, radius: Optional[float] = None
    ) -> list[np.ndarray]:
        """Group indices within *radius* of each location (KD-tree query).

        Parameters
        ----------
        locations:
            Query locations, shape ``(k, 2)`` (or a single point).
        radius:
            Search radius in metres; defaults to :attr:`support_radius`.

        Returns
        -------
        One sorted ``int64`` index array per location.  An empty array means
        the location is outside every group's reach.
        """
        pts = as_points(locations)
        r = self.support_radius if radius is None else float(radius)
        if not np.isfinite(r):
            everything = np.arange(self.n_groups, dtype=np.int64)
            return [everything] * pts.shape[0]
        if self._group_tree is None:
            self._group_tree = cKDTree(self.deployment_points)
        hits = self._group_tree.query_ball_point(pts, r, return_sorted=True)
        return [np.asarray(h, dtype=np.int64) for h in hits]

    def _shared_active_set(
        self, locations: np.ndarray, observations: np.ndarray
    ) -> Optional[np.ndarray]:
        """Active set shared by a batch kernel call, or ``None`` for dense.

        The union of (a) every group within :attr:`support_radius` of some
        candidate and (b) every group any observation row touches.  Groups
        outside the union contribute exact zeros to every ``(row, candidate)``
        likelihood (they have ``k == 0`` in all rows and ``1 − p == 1.0`` at
        all candidates), so restricting the kernel to the union only changes
        floating-point summation order.
        """
        if not np.isfinite(self.support_radius):
            return None
        near = self.active_groups(locations)
        observed = np.flatnonzero(np.any(observations != 0, axis=0))
        active = np.unique(np.concatenate([*near, observed]))
        if active.size >= self._dense_fallback * self.n_groups:
            return None
        return active

    # -- core computations -------------------------------------------------

    def membership_probabilities(self, locations) -> np.ndarray:
        """``g_i(θ)`` for each location ``θ`` and each group ``i``.

        Parameters
        ----------
        locations:
            A single point or an array of shape ``(k, 2)``.

        Returns
        -------
        Array of shape ``(k, n_groups)`` where entry ``[j, i]`` is the
        probability that a given sensor from group ``i`` lands within radio
        range of ``locations[j]``.
        """
        distances = self._model.distances_to_groups(as_points(locations))
        return np.asarray(self._gz(distances), dtype=np.float64)

    def expected_observation(self, locations) -> np.ndarray:
        """Expected observation ``µ_i = m · g_i(θ)`` (paper Eq. (2)).

        Returns an array of shape ``(k, n_groups)``.
        """
        return self._group_size * self.membership_probabilities(locations)

    def expected_neighbor_count(self, locations) -> np.ndarray:
        """Total expected number of neighbours at each location, ``Σ_i µ_i``."""
        return self.expected_observation(locations).sum(axis=1)

    def log_likelihood(self, locations, observation) -> np.ndarray:
        """Log-likelihood of *observation* if the sensor were at *locations*.

        The observation counts of the ``n`` groups are modelled as
        independent ``Binomial(m, g_i(θ))`` variables, which is the
        probabilistic model behind both the beaconless localization scheme
        and the Probability metric.

        Parameters
        ----------
        locations:
            Candidate locations, shape ``(k, 2)``.
        observation:
            A single observation vector of shape ``(n_groups,)``.

        Returns
        -------
        Array of shape ``(k,)`` with the total log-likelihood per location.
        """
        from repro.utils.stats import binomial_log_pmf

        obs = np.asarray(observation, dtype=np.float64)
        if obs.shape != (self.n_groups,):
            raise ValueError(
                f"observation must have shape ({self.n_groups},), got {obs.shape}"
            )
        probs = self.membership_probabilities(locations)
        log_pmf = binomial_log_pmf(obs[None, :], self._group_size, probs)
        return log_pmf.sum(axis=1)

    @staticmethod
    def _log_coefficients(k_values: np.ndarray, m: float) -> np.ndarray:
        """Binomial log-coefficients, via a small value table when possible.

        Honest observations are integer counts drawn from a narrow range, so
        the ``gammaln`` evaluations collapse to one pass over
        ``0 … max(k)`` followed by a gather.  Real-valued observations (the
        tainted ones can be fractional) fall back to the element-wise form.
        """
        from repro.utils.stats import binomial_log_coefficient

        if (
            k_values.size > 1024
            and float(k_values.min(initial=0.0)) >= 0.0
            and float(k_values.max(initial=0.0)) <= 65536.0
            and np.all(k_values == np.floor(k_values))
        ):
            values = np.arange(int(k_values.max()) + 1, dtype=np.float64)
            return binomial_log_coefficient(values, m)[k_values.astype(np.int64)]
        return binomial_log_coefficient(k_values, m)

    def _membership_fast(self, locations, groups=None) -> np.ndarray:
        """``g_i(θ)`` via the table's uniform-grid fast lookup.

        Same values as :meth:`membership_probabilities` up to floating-point
        rounding; used by the batched likelihood kernels where the table
        lookup dominates the runtime.  *groups* restricts the columns to an
        active subset (bit-identical to the same columns of the full
        matrix).
        """
        distances = self._model.distances_to_groups(as_points(locations), groups)
        return self._gz.fast_lookup(distances)

    def log_likelihood_batch(
        self, locations, observations, *, prune: bool = False
    ) -> np.ndarray:
        """Log-likelihood of every observation at every candidate location.

        The batched form of :meth:`log_likelihood` over a *shared* candidate
        set — the ``(k, candidates, n_groups)`` kernel of the evaluation
        pipeline: the membership probabilities (and their logs) are
        evaluated once per candidate, and each observation row then reduces
        to two matrix products, because the log-pmf is linear in ``k`` and
        ``m − k`` once ``log p`` and ``log (1 − p)`` are tabulated.  The
        observation-only binomial coefficient is hoisted out via
        :func:`~repro.utils.stats.binomial_log_coefficient`.  The result
        equals ``binomial_log_pmf(obs[:, None, :], m, probs[None]).sum(-1)``
        up to floating-point rounding (matrix products accumulate in a
        different order).

        Parameters
        ----------
        locations:
            Candidate locations shared by all observations, shape ``(c, 2)``.
        observations:
            Observation vectors, shape ``(k, n_groups)``.
        prune:
            When ``True``, restrict the kernel to the active group set (the
            union of groups within :attr:`support_radius` of some candidate
            and groups with a non-zero observation entry).  The dropped
            terms are exact zeros, so the result matches the dense kernel up
            to summation order; when the active set covers most groups the
            dense path is used regardless.

        Returns
        -------
        Array of shape ``(k, c)`` with the total log-likelihood of each
        observation at each candidate.
        """
        from repro.utils.stats import binomial_log_coefficient

        obs = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        if obs.shape[1] != self.n_groups:
            raise ValueError(
                f"observations must have {self.n_groups} columns, "
                f"got {obs.shape[1]}"
            )
        m = float(self._group_size)
        locs = as_points(locations)
        active = self._shared_active_set(locs, obs) if prune else None
        if active is not None:
            obs = obs[:, active]
            probs = self._membership_fast(locs, active)
        else:
            probs = self._membership_fast(locs)

        coeff = binomial_log_coefficient(obs, m)
        coeff = np.where((obs < 0) | (obs > m), -np.inf, coeff)
        row_coeff = coeff.sum(axis=1)

        with np.errstate(divide="ignore", invalid="ignore"):
            log_p = np.log(np.where(probs > 0, probs, 1.0))
            log_q = np.log(np.where(probs < 1, 1.0 - probs, 1.0))
        ll = self._backend.binomial_loglik(row_coeff, obs, m, log_p, log_q)

        # Degenerate probabilities force the count: p == 0 requires k == 0
        # and p == 1 requires k == m at that group; one float matmul counts
        # the violating groups per (observation, candidate) pair.  Real
        # ``g(z)`` tables never reach exactly 0 or 1, so this usually skips.
        zero_p = probs <= 0
        one_p = probs >= 1
        if np.any(zero_p):
            impossible = self._backend.matmul(
                (obs > 0).astype(np.float64), zero_p.T.astype(np.float64)
            )
            ll = np.where(impossible > 0, -np.inf, ll)
        if np.any(one_p):
            impossible = self._backend.matmul(
                (obs < m).astype(np.float64), one_p.T.astype(np.float64)
            )
            ll = np.where(impossible > 0, -np.inf, ll)
        return ll

    def log_likelihood_segmented(
        self,
        locations,
        observations,
        segment_counts,
        *,
        active: Optional[Sequence[np.ndarray]] = None,
    ) -> np.ndarray:
        """Log-likelihoods for per-row candidate segments in one flat pass.

        ``locations`` concatenates one candidate block per observation row;
        ``segment_counts[i]`` says how many of its rows belong to
        ``observations[i]``.  The returned flat array matches calling
        :meth:`log_likelihood` once per row on its block up to
        floating-point rounding, at a fraction of the cost:

        * the table lookup uses the uniform-grid fast path instead of a
          binary search per element;
        * the observation-dependent ``gammaln`` terms and ``log p`` factors
          are only evaluated at the ``(candidate, group)`` pairs the row
          actually observed (``k_i > 0`` — a few percent of all pairs);
        * the unobserved pairs keep just the dense
          ``(m − k) · log(1 − p)`` term, whose far-group entries are exact
          zeros.

        Parameters
        ----------
        locations:
            Concatenated candidate locations, shape ``(sum(counts), 2)``.
        observations:
            Observation vectors, shape ``(k, n_groups)``.
        segment_counts:
            Number of candidates per observation row, shape ``(k,)``.
        active:
            Optional per-row active group sets (one index array per row,
            e.g. from :meth:`active_groups` on the rows' search centres).
            The kernel then scores only the ``(candidate, group)`` pairs in
            each row's active set — unioned with the groups the row actually
            observed, so every skipped pair has ``k == 0`` and
            ``1 − p == 1.0``, i.e. contributes an exact zero.  Dropping
            exact zeros still changes the floating-point *summation order*
            (the same rounding-level caveat the batched engine already
            carries against the per-row reference), which leaves the
            estimates unchanged whenever candidate likelihoods are
            separated by more than accumulated rounding; the tie-prone
            all-zero rows never reach this kernel.  When the active sets
            cover most pairs the dense path runs instead, so callers may
            pass ``active`` unconditionally.

        Returns
        -------
        Flat array of shape ``(sum(counts),)``.
        """
        obs = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        counts = np.asarray(segment_counts, dtype=np.int64)
        if counts.shape != (obs.shape[0],):
            raise ValueError("need one segment count per observation row")
        locs = as_points(locations)
        if locs.shape[0] != int(counts.sum()):
            raise ValueError("segment counts do not add up to len(locations)")
        m = float(self._group_size)
        if active is not None:
            pruned = self._segmented_pruned(locs, obs, counts, active)
            if pruned is not None:
                return pruned
        probs = self._membership_fast(locs)

        obs_rep = np.repeat(obs, counts, axis=0)
        reaches_one = bool(np.any(self._gz.table.values >= 1.0))
        out = self._backend.segmented_loglik(
            obs_rep,
            probs,
            m,
            reaches_one=reaches_one,
            log_coefficients=self._log_coefficients,
        )

        # Out-of-support observations poison their whole segment, exactly as
        # the reference -inf masking does (every element of such a row is
        # -inf before the row sum there, so forcing the summed value is the
        # same number).
        invalid = np.any((obs < 0) | (obs > m), axis=1)
        if np.any(invalid):
            out[np.repeat(invalid, counts)] = -np.inf
        return out

    def _segmented_pruned(
        self,
        locs: np.ndarray,
        obs: np.ndarray,
        counts: np.ndarray,
        active: Sequence[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Sparse evaluation of the segmented kernel over per-row active sets.

        Returns ``None`` when the active sets would cover at least the
        backend's dense-fallback fraction of the ``(candidate, group)``
        pairs — the dense matmul path wins there.
        Every scored pair reuses the exact distance (``cdist`` evaluates
        pairs independently) and the same per-pair arithmetic as the dense
        kernel, so the flat result differs from it only by the summation
        order of terms that are exact zeros in both.
        """
        if len(active) != obs.shape[0]:
            raise ValueError("need one active-group set per observation row")
        rows_active = [
            np.union1d(
                np.asarray(active[row], dtype=np.int64),
                np.flatnonzero(obs[row] != 0),
            )
            for row in range(obs.shape[0])
        ]
        sizes = np.array([a.size for a in rows_active], dtype=np.int64)
        total = int(counts.sum())
        n_pairs = int((sizes * counts).sum())
        if n_pairs >= self._dense_fallback * total * self.n_groups:
            return None

        m = float(self._group_size)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        dist_parts: list[np.ndarray] = []
        k_parts: list[np.ndarray] = []
        cand_parts: list[np.ndarray] = []
        for row, groups in enumerate(rows_active):
            c = int(counts[row])
            if c == 0 or groups.size == 0:
                continue
            block = locs[offsets[row] : offsets[row + 1]]
            dist_parts.append(
                self._model.distances_to_groups(block, groups).ravel()
            )
            k_parts.append(np.tile(obs[row, groups], c))
            cand_parts.append(
                np.repeat(np.arange(offsets[row], offsets[row + 1]), groups.size)
            )

        out = np.zeros(total, dtype=np.float64)
        reaches_one = bool(np.any(self._gz.table.values >= 1.0))
        if dist_parts:
            probs = self._gz.fast_lookup(np.concatenate(dist_parts))
            k = np.concatenate(k_parts)
            cand = np.concatenate(cand_parts)
            out = self._backend.sparse_segment_loglik(
                k,
                probs,
                m,
                cand,
                total,
                reaches_one=reaches_one,
                log_coefficients=self._log_coefficients,
            )

        invalid = np.any((obs < 0) | (obs > m), axis=1)
        if np.any(invalid):
            out[np.repeat(invalid, counts)] = -np.inf
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeploymentKnowledge(n_groups={self.n_groups}, m={self._group_size}, "
            f"R={self._radio_range:g})"
        )
