"""The deployment knowledge carried by every sensor.

:class:`DeploymentKnowledge` bundles exactly the information the paper
assumes each sensor stores before deployment:

* the coordinates of every deployment point;
* the number of sensors deployed per group (``m``);
* the wireless transmission range ``R``;
* the pre-computed ``g(z)`` table (Section 3.3).

Both the beaconless localization scheme and the LAD detector consume this
object, so it is the natural seam between the deployment substrate and the
rest of the system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.deployment.gz import GzTable
from repro.deployment.models import DeploymentModel
from repro.types import Region, as_points
from repro.utils.validation import check_int, check_positive

__all__ = ["DeploymentKnowledge"]


class DeploymentKnowledge:
    """Per-sensor deployment knowledge (deployment points, ``m``, ``R``, ``g``).

    Parameters
    ----------
    model:
        The deployment model (grid layout + landing distribution).
    group_size:
        Number of sensors per deployment group (``m``).
    radio_range:
        Wireless transmission range ``R`` in metres.
    gz_table:
        Optional pre-built :class:`~repro.deployment.gz.GzTable`.  When
        omitted one is constructed from ``radio_range`` and the model's
        Gaussian ``σ``.
    omega:
        Table resolution used when ``gz_table`` is not supplied.
    """

    def __init__(
        self,
        model: DeploymentModel,
        group_size: int,
        radio_range: float,
        *,
        gz_table: Optional[GzTable] = None,
        omega: int = 1000,
    ):
        self._model = model
        self._group_size = check_int("group_size", group_size, minimum=1)
        self._radio_range = check_positive("radio_range", radio_range)
        if gz_table is None:
            sigma = getattr(model.distribution, "sigma", None)
            if sigma is None:
                raise ValueError(
                    "a GzTable must be supplied explicitly for non-Gaussian "
                    "resident-point distributions"
                )
            z_max = model.region.diagonal + radio_range
            gz_table = GzTable(radio_range, sigma, omega=omega, z_max=z_max)
        self._gz = gz_table

    # -- properties --------------------------------------------------------

    @property
    def model(self) -> DeploymentModel:
        """The deployment model this knowledge was derived from."""
        return self._model

    @property
    def region(self) -> Region:
        """Deployment region."""
        return self._model.region

    @property
    def deployment_points(self) -> np.ndarray:
        """Deployment-point coordinates, shape ``(n_groups, 2)``."""
        return self._model.deployment_points

    @property
    def n_groups(self) -> int:
        """Number of deployment groups ``n``."""
        return self._model.n_groups

    @property
    def group_size(self) -> int:
        """Number of sensors per group ``m``."""
        return self._group_size

    @property
    def radio_range(self) -> float:
        """Wireless transmission range ``R``."""
        return self._radio_range

    @property
    def gz_table(self) -> GzTable:
        """The ``g(z)`` lookup table."""
        return self._gz

    # -- core computations -------------------------------------------------

    def membership_probabilities(self, locations) -> np.ndarray:
        """``g_i(θ)`` for each location ``θ`` and each group ``i``.

        Parameters
        ----------
        locations:
            A single point or an array of shape ``(k, 2)``.

        Returns
        -------
        Array of shape ``(k, n_groups)`` where entry ``[j, i]`` is the
        probability that a given sensor from group ``i`` lands within radio
        range of ``locations[j]``.
        """
        distances = self._model.distances_to_groups(as_points(locations))
        return np.asarray(self._gz(distances), dtype=np.float64)

    def expected_observation(self, locations) -> np.ndarray:
        """Expected observation ``µ_i = m · g_i(θ)`` (paper Eq. (2)).

        Returns an array of shape ``(k, n_groups)``.
        """
        return self._group_size * self.membership_probabilities(locations)

    def expected_neighbor_count(self, locations) -> np.ndarray:
        """Total expected number of neighbours at each location, ``Σ_i µ_i``."""
        return self.expected_observation(locations).sum(axis=1)

    def log_likelihood(self, locations, observation) -> np.ndarray:
        """Log-likelihood of *observation* if the sensor were at *locations*.

        The observation counts of the ``n`` groups are modelled as
        independent ``Binomial(m, g_i(θ))`` variables, which is the
        probabilistic model behind both the beaconless localization scheme
        and the Probability metric.

        Parameters
        ----------
        locations:
            Candidate locations, shape ``(k, 2)``.
        observation:
            A single observation vector of shape ``(n_groups,)``.

        Returns
        -------
        Array of shape ``(k,)`` with the total log-likelihood per location.
        """
        from repro.utils.stats import binomial_log_pmf

        obs = np.asarray(observation, dtype=np.float64)
        if obs.shape != (self.n_groups,):
            raise ValueError(
                f"observation must have shape ({self.n_groups},), got {obs.shape}"
            )
        probs = self.membership_probabilities(locations)
        log_pmf = binomial_log_pmf(obs[None, :], self._group_size, probs)
        return log_pmf.sum(axis=1)

    @staticmethod
    def _log_coefficients(k_values: np.ndarray, m: float) -> np.ndarray:
        """Binomial log-coefficients, via a small value table when possible.

        Honest observations are integer counts drawn from a narrow range, so
        the ``gammaln`` evaluations collapse to one pass over
        ``0 … max(k)`` followed by a gather.  Real-valued observations (the
        tainted ones can be fractional) fall back to the element-wise form.
        """
        from repro.utils.stats import binomial_log_coefficient

        if (
            k_values.size > 1024
            and float(k_values.min(initial=0.0)) >= 0.0
            and float(k_values.max(initial=0.0)) <= 65536.0
            and np.all(k_values == np.floor(k_values))
        ):
            values = np.arange(int(k_values.max()) + 1, dtype=np.float64)
            return binomial_log_coefficient(values, m)[k_values.astype(np.int64)]
        return binomial_log_coefficient(k_values, m)

    def _membership_fast(self, locations) -> np.ndarray:
        """``g_i(θ)`` via the table's uniform-grid fast lookup.

        Same values as :meth:`membership_probabilities` up to floating-point
        rounding; used by the batched likelihood kernels where the table
        lookup dominates the runtime.
        """
        distances = self._model.distances_to_groups(as_points(locations))
        return self._gz.fast_lookup(distances)

    def log_likelihood_batch(self, locations, observations) -> np.ndarray:
        """Log-likelihood of every observation at every candidate location.

        The batched form of :meth:`log_likelihood` over a *shared* candidate
        set — the ``(k, candidates, n_groups)`` kernel of the evaluation
        pipeline: the membership probabilities (and their logs) are
        evaluated once per candidate, and each observation row then reduces
        to two matrix products, because the log-pmf is linear in ``k`` and
        ``m − k`` once ``log p`` and ``log (1 − p)`` are tabulated.  The
        observation-only binomial coefficient is hoisted out via
        :func:`~repro.utils.stats.binomial_log_coefficient`.  The result
        equals ``binomial_log_pmf(obs[:, None, :], m, probs[None]).sum(-1)``
        up to floating-point rounding (matrix products accumulate in a
        different order).

        Parameters
        ----------
        locations:
            Candidate locations shared by all observations, shape ``(c, 2)``.
        observations:
            Observation vectors, shape ``(k, n_groups)``.

        Returns
        -------
        Array of shape ``(k, c)`` with the total log-likelihood of each
        observation at each candidate.
        """
        from repro.utils.stats import binomial_log_coefficient

        obs = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        if obs.shape[1] != self.n_groups:
            raise ValueError(
                f"observations must have {self.n_groups} columns, "
                f"got {obs.shape[1]}"
            )
        m = float(self._group_size)
        probs = self._membership_fast(locations)

        coeff = binomial_log_coefficient(obs, m)
        coeff = np.where((obs < 0) | (obs > m), -np.inf, coeff)
        row_coeff = coeff.sum(axis=1)

        with np.errstate(divide="ignore", invalid="ignore"):
            log_p = np.log(np.where(probs > 0, probs, 1.0))
            log_q = np.log(np.where(probs < 1, 1.0 - probs, 1.0))
        ll = row_coeff[:, None] + obs @ log_p.T + (m - obs) @ log_q.T

        # Degenerate probabilities force the count: p == 0 requires k == 0
        # and p == 1 requires k == m at that group; one float matmul counts
        # the violating groups per (observation, candidate) pair.  Real
        # ``g(z)`` tables never reach exactly 0 or 1, so this usually skips.
        zero_p = probs <= 0
        one_p = probs >= 1
        if np.any(zero_p):
            impossible = (obs > 0).astype(np.float64) @ zero_p.T.astype(np.float64)
            ll = np.where(impossible > 0, -np.inf, ll)
        if np.any(one_p):
            impossible = (obs < m).astype(np.float64) @ one_p.T.astype(np.float64)
            ll = np.where(impossible > 0, -np.inf, ll)
        return ll

    def log_likelihood_segmented(
        self, locations, observations, segment_counts
    ) -> np.ndarray:
        """Log-likelihoods for per-row candidate segments in one flat pass.

        ``locations`` concatenates one candidate block per observation row;
        ``segment_counts[i]`` says how many of its rows belong to
        ``observations[i]``.  The returned flat array matches calling
        :meth:`log_likelihood` once per row on its block up to
        floating-point rounding, at a fraction of the cost:

        * the table lookup uses the uniform-grid fast path instead of a
          binary search per element;
        * the observation-dependent ``gammaln`` terms and ``log p`` factors
          are only evaluated at the ``(candidate, group)`` pairs the row
          actually observed (``k_i > 0`` — a few percent of all pairs);
        * the unobserved pairs keep just the dense
          ``(m − k) · log(1 − p)`` term, whose far-group entries are exact
          zeros.

        Parameters
        ----------
        locations:
            Concatenated candidate locations, shape ``(sum(counts), 2)``.
        observations:
            Observation vectors, shape ``(k, n_groups)``.
        segment_counts:
            Number of candidates per observation row, shape ``(k,)``.

        Returns
        -------
        Flat array of shape ``(sum(counts),)``.
        """
        from repro.utils.stats import binomial_log_coefficient

        obs = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        counts = np.asarray(segment_counts, dtype=np.int64)
        if counts.shape != (obs.shape[0],):
            raise ValueError("need one segment count per observation row")
        m = float(self._group_size)
        probs = self._membership_fast(locations)
        if probs.shape[0] != int(counts.sum()):
            raise ValueError("segment counts do not add up to len(locations)")

        obs_rep = np.repeat(obs, counts, axis=0)
        reaches_one = bool(np.any(self._gz.table.values >= 1.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            # Dense part: (m − k) · log(1 − p).  Groups far from a candidate
            # have p below the rounding threshold of 1 − p, so their term is
            # an exact zero without any masking.
            if reaches_one:
                log_q = np.log(np.where(probs < 1, 1.0 - probs, 1.0))
            else:
                log_q = np.log(1.0 - probs)
            out = (m - obs_rep) * log_q

            # Sparse part: the observed (k > 0) pairs additionally carry the
            # binomial coefficient and k · log p — a few percent of all
            # elements, so gammaln and the second log run on a short vector.
            observed = obs_rep > 0
            k_obs = obs_rep[observed]
            p_obs = probs[observed]
            term = self._log_coefficients(k_obs, m) + k_obs * np.log(p_obs)
        term = np.where(p_obs <= 0, -np.inf, term)
        out[observed] += term

        # Out-of-support observations poison their whole segment, exactly as
        # the reference -inf masking does.
        invalid = np.any((obs < 0) | (obs > m), axis=1)
        if np.any(invalid):
            out[np.repeat(invalid, counts)] = -np.inf
        if reaches_one:
            out = np.where((probs >= 1) & (obs_rep < m), -np.inf, out)
        return out.sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeploymentKnowledge(n_groups={self.n_groups}, m={self._group_size}, "
            f"R={self._radio_range:g})"
        )
