"""Group-based deployment models (paper Section 3.1).

A deployment model is the pair *(deployment points, resident-point
distribution)* plus the deployment region.  The paper arranges the
deployment points on a regular grid (Figure 1); the scheme extends directly
to hexagonal and random layouts, which are provided here too so the
detection pipeline can be exercised on other deployment strategies.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.deployment.distributions import (
    GaussianResidentDistribution,
    ResidentPointDistribution,
)
from repro.registry import Registry
from repro.types import PAPER_REGION, Region, as_points
from repro.utils.rng import as_generator
from repro.utils.validation import check_int

__all__ = [
    "DeploymentModel",
    "GridDeploymentModel",
    "HexDeploymentModel",
    "RandomDeploymentModel",
    "PrebuiltDeploymentModel",
    "DEPLOYMENTS",
    "resolve_deployment_model",
    "paper_deployment_model",
]

#: Registry of deployment models; alternative layouts plug in with
#: ``@DEPLOYMENTS.register(...)`` (also exposed as
#: :func:`repro.deployment.register`).
DEPLOYMENTS = Registry("deployment model")


class DeploymentModel(abc.ABC):
    """Base class bundling deployment points, region and landing distribution."""

    def __init__(
        self,
        region: Region,
        distribution: ResidentPointDistribution,
    ):
        self._region = region
        self._distribution = distribution

    # -- abstract ----------------------------------------------------------

    @property
    @abc.abstractmethod
    def deployment_points(self) -> np.ndarray:
        """Array of shape ``(n_groups, 2)`` with the group deployment points."""

    # -- concrete ----------------------------------------------------------

    @property
    def region(self) -> Region:
        """The deployment region."""
        return self._region

    @property
    def distribution(self) -> ResidentPointDistribution:
        """Resident-point distribution shared by all groups."""
        return self._distribution

    @property
    def n_groups(self) -> int:
        """Number of deployment groups (``n`` in the paper)."""
        return int(self.deployment_points.shape[0])

    def sample_group(
        self, rng: np.random.Generator, group: int, size: int
    ) -> np.ndarray:
        """Sample *size* resident points for group *group*."""
        check_int("group", group, minimum=0, maximum=self.n_groups - 1)
        center = self.deployment_points[group]
        return self._distribution.sample(rng, center, size)

    def sample_network_positions(
        self, rng, group_size: int, *, clip_to_region: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample resident points for every group.

        Parameters
        ----------
        rng:
            Seed or generator.
        group_size:
            Number of sensors per group (``m`` in the paper).
        clip_to_region:
            When ``True`` resident points falling outside the deployment
            region are clamped onto its boundary.  The paper does not clip
            (sensors may land slightly outside the field), so the default is
            ``False``.

        Returns
        -------
        positions, group_ids:
            ``positions`` has shape ``(n_groups * group_size, 2)`` and
            ``group_ids`` the matching group index per row.
        """
        rng = as_generator(rng)
        check_int("group_size", group_size, minimum=1)
        n = self.n_groups
        offsets = self._distribution.sample_offsets(rng, n * group_size)
        centers = np.repeat(self.deployment_points, group_size, axis=0)
        positions = centers + offsets
        if clip_to_region:
            positions = self._region.clip(positions)
        group_ids = np.repeat(np.arange(n, dtype=np.int64), group_size)
        return positions, group_ids

    def distances_to_groups(self, locations, groups=None) -> np.ndarray:
        """Distances from each location to every deployment point.

        Returns an array of shape ``(k, n_groups)`` — the ``z`` values fed
        into ``g(z)`` when computing expected observations.  Evaluated with
        :func:`scipy.spatial.distance.cdist`, whose C loop is an order of
        magnitude faster than broadcasting the difference array while
        producing bit-identical distances.

        Parameters
        ----------
        locations:
            Query locations, shape ``(k, 2)``.
        groups:
            Optional group indices restricting the columns; the pruned
            likelihood kernels only pay for the distances they will use.
            ``cdist`` evaluates every pair independently, so the returned
            sub-matrix is bit-identical to the same columns of the full one.
        """
        from scipy.spatial.distance import cdist

        points = self.deployment_points
        if groups is not None:
            points = points[np.asarray(groups, dtype=np.int64)]
        locs = as_points(locations)
        if locs.shape[0] == 0 or points.shape[0] == 0:
            return np.empty((locs.shape[0], points.shape[0]), dtype=np.float64)
        return cdist(locs, points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_groups={self.n_groups}, "
            f"region={self._region!r}, distribution={self._distribution!r})"
        )


@DEPLOYMENTS.register()
class GridDeploymentModel(DeploymentModel):
    """Deployment points at the centres of a ``rows x cols`` grid (Figure 1).

    The paper's evaluation uses a 1000 m x 1000 m region divided into
    10 x 10 cells of 100 m x 100 m, with the deployment point at each cell
    centre and ``σ = 50`` m.
    """

    name = "grid"

    def __init__(
        self,
        region: Region = PAPER_REGION,
        rows: int = 10,
        cols: int = 10,
        distribution: Optional[ResidentPointDistribution] = None,
    ):
        super().__init__(region, distribution or GaussianResidentDistribution(50.0))
        self._rows = check_int("rows", rows, minimum=1)
        self._cols = check_int("cols", cols, minimum=1)
        cell_w = region.width / cols
        cell_h = region.height / rows
        xs = region.x_min + cell_w * (np.arange(cols) + 0.5)
        ys = region.y_min + cell_h * (np.arange(rows) + 0.5)
        gx, gy = np.meshgrid(xs, ys)
        self._points = np.column_stack([gx.ravel(), gy.ravel()])

    @property
    def rows(self) -> int:
        """Number of grid rows."""
        return self._rows

    @property
    def cols(self) -> int:
        """Number of grid columns."""
        return self._cols

    @property
    def deployment_points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view


@DEPLOYMENTS.register("hexagon")
class HexDeploymentModel(DeploymentModel):
    """Deployment points on a hexagonal (offset-row) lattice.

    Mentioned in the paper as an alternative arrangement ("deployment points
    form hexagon shapes").  Rows are spaced ``spacing * sqrt(3)/2`` apart and
    every other row is shifted by half a spacing.
    """

    name = "hex"

    def __init__(
        self,
        region: Region = PAPER_REGION,
        spacing: float = 100.0,
        distribution: Optional[ResidentPointDistribution] = None,
    ):
        super().__init__(region, distribution or GaussianResidentDistribution(50.0))
        if spacing <= 0:
            raise ValueError("spacing must be > 0")
        self._spacing = float(spacing)
        row_height = spacing * np.sqrt(3.0) / 2.0
        points = []
        y = region.y_min + row_height / 2.0
        row = 0
        while y <= region.y_max:
            offset = 0.0 if row % 2 == 0 else spacing / 2.0
            x = region.x_min + spacing / 2.0 + offset
            while x <= region.x_max:
                points.append((x, y))
                x += spacing
            y += row_height
            row += 1
        if not points:
            raise ValueError("spacing too large: no deployment point fits the region")
        self._points = np.asarray(points, dtype=np.float64)

    @property
    def spacing(self) -> float:
        """Horizontal distance between adjacent deployment points."""
        return self._spacing

    @property
    def deployment_points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view


@DEPLOYMENTS.register("uniform")
class RandomDeploymentModel(DeploymentModel):
    """Deployment points drawn uniformly at random from the region.

    The paper notes the scheme works "as long as their locations are given
    to all sensors"; this model covers that case and is used in tests and
    the ablation study on deployment-knowledge accuracy.
    """

    name = "random"

    def __init__(
        self,
        region: Region = PAPER_REGION,
        n_groups: int = 100,
        distribution: Optional[ResidentPointDistribution] = None,
        rng=None,
    ):
        super().__init__(region, distribution or GaussianResidentDistribution(50.0))
        check_int("n_groups", n_groups, minimum=1)
        generator = as_generator(rng)
        self._points = region.sample_uniform(generator, n_groups)

    @property
    def deployment_points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view


class PrebuiltDeploymentModel(DeploymentModel):
    """A deployment model over externally supplied deployment points.

    The transport-side counterpart of the layout-generating models above:
    rebuilds a model from an existing points array (possibly a read-only
    shared-memory view) without re-deriving any layout.  All concrete
    :class:`DeploymentModel` behaviour works off the points array, so
    distances — and therefore likelihoods — are bit-identical to the model
    the points came from.  Used by
    :meth:`repro.deployment.knowledge.DeploymentKnowledge.from_share_parts`;
    deliberately not registered in :data:`DEPLOYMENTS` (it cannot be built
    from a name alone).
    """

    name = "prebuilt"

    def __init__(
        self,
        region: Region,
        deployment_points,
        distribution: Optional[ResidentPointDistribution] = None,
    ):
        super().__init__(region, distribution or GaussianResidentDistribution(50.0))
        points = as_points(deployment_points)
        if points.shape[0] == 0:
            raise ValueError("deployment_points must contain at least one point")
        self._points = points

    @property
    def deployment_points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view


def resolve_deployment_model(model, **kwargs) -> DeploymentModel:
    """Resolve a deployment-model name through :data:`DEPLOYMENTS`.

    Instances pass through unchanged; names are created with *kwargs*
    forwarded to the model constructor.
    """
    return DEPLOYMENTS.resolve(model, **kwargs)


def paper_deployment_model(sigma: float = 50.0) -> GridDeploymentModel:
    """The exact deployment model of the paper's evaluation (Section 7.1).

    1000 m x 1000 m region, 10 x 10 grid of deployment points at the cell
    centres, two-dimensional Gaussian landing distribution with ``σ`` = 50 m.
    """
    return GridDeploymentModel(
        region=PAPER_REGION,
        rows=10,
        cols=10,
        distribution=GaussianResidentDistribution(sigma),
    )
