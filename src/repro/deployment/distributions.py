"""Resident-point distributions (paper Section 3.2).

A *resident-point distribution* describes where a sensor from a deployment
group finally lands relative to the group's deployment point.  The paper
models it as an isotropic two-dimensional Gaussian with standard deviation
``σ`` (50 m in all experiments); the methodology extends to any radially
symmetric distribution, so a uniform-disk alternative is provided as well
and every consumer of the distribution goes through the abstract interface.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.types import as_point, as_points
from repro.utils.validation import check_positive

__all__ = [
    "ResidentPointDistribution",
    "GaussianResidentDistribution",
    "UniformDiskResidentDistribution",
]


class ResidentPointDistribution(abc.ABC):
    """Radially symmetric distribution of a sensor's landing offset.

    The distribution is always centred at the origin; callers add the
    deployment-point coordinates themselves (the paper's
    ``f_i(x, y) = f(x − x_i, y − y_i)``).
    """

    @abc.abstractmethod
    def sample_offsets(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* landing offsets, shape ``(size, 2)``."""

    @abc.abstractmethod
    def pdf(self, offsets) -> np.ndarray:
        """Probability density at each offset (shape ``(k, 2)`` -> ``(k,)``)."""

    @abc.abstractmethod
    def radial_cdf(self, r) -> np.ndarray:
        """Probability that the landing distance is at most *r* (vectorised)."""

    @abc.abstractmethod
    def effective_radius(self, coverage: float = 0.999) -> float:
        """Radius containing *coverage* of the probability mass.

        Used to size lookup tables and search windows.
        """

    # -- concrete helpers --------------------------------------------------

    def sample(self, rng: np.random.Generator, center, size: int) -> np.ndarray:
        """Draw *size* resident points around *center*."""
        c = as_point(center)
        return c[None, :] + self.sample_offsets(rng, size)

    def pdf_at(self, points, center) -> np.ndarray:
        """Density of resident points (absolute coordinates) for *center*."""
        pts = as_points(points)
        c = as_point(center)
        return self.pdf(pts - c[None, :])


class GaussianResidentDistribution(ResidentPointDistribution):
    """Isotropic two-dimensional Gaussian landing distribution (Section 3.2).

    The pdf is ``f(x, y) = (1 / 2πσ²) · exp(−(x² + y²) / 2σ²)`` and the
    landing *distance* therefore follows a Rayleigh distribution with scale
    ``σ``.
    """

    def __init__(self, sigma: float = 50.0):
        self._sigma = check_positive("sigma", sigma)

    @property
    def sigma(self) -> float:
        """Standard deviation of each coordinate (metres)."""
        return self._sigma

    def sample_offsets(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(0.0, self._sigma, size=(int(size), 2))

    def pdf(self, offsets) -> np.ndarray:
        pts = as_points(offsets)
        sq = pts[:, 0] ** 2 + pts[:, 1] ** 2
        norm = 1.0 / (2.0 * np.pi * self._sigma**2)
        return norm * np.exp(-sq / (2.0 * self._sigma**2))

    def radial_cdf(self, r) -> np.ndarray:
        r_arr = np.asarray(r, dtype=np.float64)
        out = 1.0 - np.exp(-np.clip(r_arr, 0.0, None) ** 2 / (2.0 * self._sigma**2))
        return np.where(r_arr < 0, 0.0, out)

    def effective_radius(self, coverage: float = 0.999) -> float:
        if not 0.0 < coverage < 1.0:
            raise ValueError("coverage must be in (0, 1)")
        # Invert the Rayleigh CDF.
        return float(self._sigma * np.sqrt(-2.0 * np.log(1.0 - coverage)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaussianResidentDistribution(sigma={self._sigma:g})"


class UniformDiskResidentDistribution(ResidentPointDistribution):
    """Uniform landing distribution over a disk of a given radius.

    Provided as an alternative deployment model (the paper notes the
    methodology applies to other distributions); also useful as a simple
    bounded-support distribution in tests.
    """

    def __init__(self, radius: float = 100.0):
        self._radius = check_positive("radius", radius)

    @property
    def radius(self) -> float:
        """Radius of the support disk (metres)."""
        return self._radius

    def sample_offsets(self, rng: np.random.Generator, size: int) -> np.ndarray:
        size = int(size)
        # Inverse-CDF sampling of the radius so the area density is uniform.
        r = self._radius * np.sqrt(rng.uniform(0.0, 1.0, size=size))
        theta = rng.uniform(0.0, 2.0 * np.pi, size=size)
        return np.column_stack([r * np.cos(theta), r * np.sin(theta)])

    def pdf(self, offsets) -> np.ndarray:
        pts = as_points(offsets)
        sq = pts[:, 0] ** 2 + pts[:, 1] ** 2
        density = 1.0 / (np.pi * self._radius**2)
        return np.where(sq <= self._radius**2, density, 0.0)

    def radial_cdf(self, r) -> np.ndarray:
        r_arr = np.asarray(r, dtype=np.float64)
        frac = np.clip(r_arr / self._radius, 0.0, 1.0) ** 2
        return np.where(r_arr < 0, 0.0, frac)

    def effective_radius(self, coverage: float = 0.999) -> float:
        if not 0.0 < coverage < 1.0:
            raise ValueError("coverage must be in (0, 1)")
        return float(self._radius * np.sqrt(coverage))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformDiskResidentDistribution(radius={self._radius:g})"
