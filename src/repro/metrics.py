"""Public registry facade for the anomaly metrics.

The canonical spelling of the plug-in API::

    import repro.metrics

    metric = repro.metrics.create("diff")
    repro.metrics.available()        # ['add_all', 'diff', 'probability']

    @repro.metrics.register("my_metric")
    class MyMetric(repro.metrics.AnomalyMetric):
        name = "my_metric"
        ...

The metric implementations themselves live in :mod:`repro.core.metrics`;
this module re-exports them together with the bound registry operations so
user code never has to touch the ``repro.core`` internals.
"""

from repro.core.metrics import (
    ALL_METRICS,
    METRICS as registry,
    AddAllMetric,
    AnomalyMetric,
    DiffMetric,
    ProbabilityMetric,
    resolve_metric as resolve,
)

__all__ = [
    "registry",
    "register",
    "create",
    "get",
    "resolve",
    "available",
    "aliases",
    "AnomalyMetric",
    "DiffMetric",
    "AddAllMetric",
    "ProbabilityMetric",
    "ALL_METRICS",
]

register = registry.register
create = registry.create
get = registry.get
available = registry.available
aliases = registry.aliases
