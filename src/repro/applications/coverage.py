"""Field-coverage estimation from believed sensor locations.

A common sensor-network management task: estimate which portion of the
deployment region is within sensing range of at least ``k`` sensors.  When
the estimate is computed from *believed* (possibly attacked) locations the
operator may think an area is covered when it is not — another concrete
consequence of localization anomalies that the examples quantify.
"""

from __future__ import annotations


import numpy as np
from scipy.spatial import cKDTree

from repro.types import Region, as_points
from repro.utils.validation import check_int, check_positive

__all__ = ["coverage_map", "coverage_fraction"]


def coverage_map(
    positions,
    region: Region,
    sensing_range: float,
    *,
    resolution: float = 20.0,
    min_sensors: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boolean coverage raster of the region.

    Parameters
    ----------
    positions:
        Sensor positions (true or believed), shape ``(N, 2)``.
    region:
        The deployment region to rasterise.
    sensing_range:
        Sensing radius of each sensor in metres.
    resolution:
        Raster cell size in metres.
    min_sensors:
        Minimum number of sensors that must cover a cell ("k-coverage").

    Returns
    -------
    xs, ys, covered:
        The cell-centre coordinate vectors and a boolean matrix of shape
        ``(len(ys), len(xs))``.
    """
    check_positive("sensing_range", sensing_range)
    check_positive("resolution", resolution)
    check_int("min_sensors", min_sensors, minimum=1)
    pts = as_points(positions)

    xs = np.arange(region.x_min + resolution / 2, region.x_max, resolution)
    ys = np.arange(region.y_min + resolution / 2, region.y_max, resolution)
    gx, gy = np.meshgrid(xs, ys)
    cells = np.column_stack([gx.ravel(), gy.ravel()])

    tree = cKDTree(pts)
    counts = tree.query_ball_point(cells, sensing_range, return_length=True)
    covered = (counts >= min_sensors).reshape(len(ys), len(xs))
    return xs, ys, covered


def coverage_fraction(
    positions,
    region: Region,
    sensing_range: float,
    *,
    resolution: float = 20.0,
    min_sensors: int = 1,
) -> float:
    """Fraction of the region covered by at least ``min_sensors`` sensors."""
    _, _, covered = coverage_map(
        positions,
        region,
        sensing_range,
        resolution=resolution,
        min_sensors=min_sensors,
    )
    return float(covered.mean())
