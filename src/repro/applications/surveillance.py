"""Event-surveillance reporting.

The paper's motivating example: sensors report hazardous events (or "region
is safe" status) together with their own derived location; if an adversary
displaces those locations, the reported event positions are wrong and
response teams are sent to the wrong place.  :class:`SurveillanceField`
simulates event detection and reporting so the examples can measure the
report-position error with and without LAD filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.types import as_point, as_points
from repro.utils.validation import check_positive

__all__ = ["EventReport", "ReportingStats", "SurveillanceField"]


@dataclass(frozen=True)
class EventReport:
    """One sensor's report about a detected event.

    Attributes
    ----------
    sensor:
        Index of the reporting sensor.
    event_position:
        The true event position (for evaluation only).
    reported_position:
        The position the sensor attaches to its report — its *believed*
        location (possibly corrupted by a localization attack).
    suppressed:
        Whether the report was suppressed because the sensor's LAD check
        flagged its own location as anomalous.
    """

    sensor: int
    event_position: np.ndarray
    reported_position: np.ndarray
    suppressed: bool = False

    @property
    def position_error(self) -> float:
        """Distance between the reported and the true event position."""
        return float(np.hypot(*(self.reported_position - self.event_position)))


@dataclass
class ReportingStats:
    """Aggregate quality of a batch of event reports."""

    total_events: int = 0
    detected_events: int = 0
    reports: List[EventReport] = field(default_factory=list)

    def usable_reports(self) -> List[EventReport]:
        """Reports that were not suppressed by the LAD check."""
        return [r for r in self.reports if not r.suppressed]

    @property
    def detection_fraction(self) -> float:
        """Fraction of events detected by at least one sensor."""
        return self.detected_events / self.total_events if self.total_events else 0.0

    @property
    def mean_report_error(self) -> float:
        """Mean position error over the usable reports."""
        usable = self.usable_reports()
        if not usable:
            return float("nan")
        return float(np.mean([r.position_error for r in usable]))

    @property
    def max_report_error(self) -> float:
        """Worst-case position error over the usable reports."""
        usable = self.usable_reports()
        if not usable:
            return float("nan")
        return float(np.max([r.position_error for r in usable]))

    @property
    def suppressed_fraction(self) -> float:
        """Fraction of reports suppressed by the LAD check."""
        if not self.reports:
            return 0.0
        return float(np.mean([r.suppressed for r in self.reports]))


class SurveillanceField:
    """Sensors detecting point events within a sensing radius.

    Parameters
    ----------
    network:
        The deployed sensor network.
    believed_positions:
        Each sensor's believed location (attached to its reports).
        Defaults to the true positions.
    sensing_range:
        Detection radius of each sensor in metres.
    """

    def __init__(
        self,
        network: SensorNetwork,
        believed_positions: Optional[np.ndarray] = None,
        *,
        sensing_range: float = 50.0,
    ):
        self._network = network
        self._index = NeighborIndex(network)
        if believed_positions is None:
            believed_positions = network.positions.copy()
        believed_positions = np.asarray(believed_positions, dtype=np.float64)
        if believed_positions.shape != network.positions.shape:
            raise ValueError("believed_positions must match the network size")
        self._believed = believed_positions
        self._sensing_range = check_positive("sensing_range", sensing_range)
        self._suppressed = np.zeros(network.num_nodes, dtype=bool)

    def suppress_sensors(self, sensors: Sequence[int]) -> None:
        """Mark sensors whose reports should be suppressed (LAD alarms)."""
        idx = np.asarray(sensors, dtype=np.int64)
        self._suppressed[idx] = True

    def detecting_sensors(self, event_position) -> np.ndarray:
        """Indices of the sensors whose sensing range covers the event."""
        event = as_point(event_position)
        diff = self._network.positions - event
        dist = np.hypot(diff[:, 0], diff[:, 1])
        return np.flatnonzero(dist <= self._sensing_range)

    def report_events(self, event_positions) -> ReportingStats:
        """Simulate detection and reporting of a batch of events."""
        events = as_points(event_positions)
        stats = ReportingStats(total_events=events.shape[0])
        for event in events:
            detectors = self.detecting_sensors(event)
            if detectors.size == 0:
                continue
            stats.detected_events += 1
            for sensor in detectors:
                stats.reports.append(
                    EventReport(
                        sensor=int(sensor),
                        event_position=event.copy(),
                        reported_position=self._believed[sensor].copy(),
                        suppressed=bool(self._suppressed[sensor]),
                    )
                )
        return stats
