"""Greedy geographic routing over a sensor network.

Geographic routing protocols forward a packet to the neighbour whose
*believed* location is closest to the destination.  When nodes' derived
locations are corrupted (the attacks LAD is designed to detect), greedy
forwarding loops, detours or dead-ends.  This module implements plain greedy
forwarding (the common core of GPSR-style protocols, without perimeter
recovery) so the ``geographic_routing`` example can measure delivery rate
and path stretch with honest locations, with attacked locations, and with
attacked locations filtered by a :class:`~repro.core.detector.LADDetector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.types import as_point
from repro.utils.validation import check_int

__all__ = ["RouteResult", "RoutingStats", "GreedyGeographicRouter", "evaluate_routing"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a single packet.

    Attributes
    ----------
    delivered:
        Whether the packet reached a node within one radio range of the
        destination point.
    hops:
        The sequence of node indices traversed (including the source).
    path_length:
        Total geographic distance travelled along the true node positions.
    """

    delivered: bool
    hops: List[int]
    path_length: float

    @property
    def hop_count(self) -> int:
        """Number of forwarding steps."""
        return max(len(self.hops) - 1, 0)


@dataclass
class RoutingStats:
    """Aggregate statistics over many routed packets."""

    attempted: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_path_length: float = 0.0

    def record(self, result: RouteResult) -> None:
        """Fold one route outcome into the statistics."""
        self.attempted += 1
        if result.delivered:
            self.delivered += 1
            self.total_hops += result.hop_count
            self.total_path_length += result.path_length

    @property
    def delivery_rate(self) -> float:
        """Fraction of packets that reached their destination region."""
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def mean_hops(self) -> float:
        """Mean hop count of the delivered packets."""
        return self.total_hops / self.delivered if self.delivered else float("nan")

    @property
    def mean_path_length(self) -> float:
        """Mean geographic path length of the delivered packets."""
        return (
            self.total_path_length / self.delivered if self.delivered else float("nan")
        )


class GreedyGeographicRouter:
    """Greedy geographic forwarding using per-node *believed* locations.

    Parameters
    ----------
    network:
        The deployed network (true positions define connectivity).
    believed_positions:
        What each node *thinks* its position is — the output of a
        localization scheme, possibly corrupted.  Defaults to the true
        positions.
    max_hops:
        Abort threshold against forwarding loops.
    """

    def __init__(
        self,
        network: SensorNetwork,
        believed_positions: Optional[np.ndarray] = None,
        *,
        max_hops: int = 256,
    ):
        self._network = network
        self._index = NeighborIndex(network)
        if believed_positions is None:
            believed_positions = network.positions.copy()
        believed_positions = np.asarray(believed_positions, dtype=np.float64)
        if believed_positions.shape != network.positions.shape:
            raise ValueError("believed_positions must match the network size")
        self._believed = believed_positions
        self._max_hops = check_int("max_hops", max_hops, minimum=1)

    @property
    def believed_positions(self) -> np.ndarray:
        """The per-node believed locations used for forwarding decisions."""
        return self._believed

    def route(self, source: int, destination) -> RouteResult:
        """Route a packet from node *source* toward the *destination* point.

        Forwarding rule: hand the packet to the neighbour whose believed
        position is strictly closer to the destination than the current
        node's believed position; stop when a node is physically within one
        radio range of the destination (delivered), when no neighbour makes
        progress (stuck), or when the hop budget is exhausted.
        """
        dest = as_point(destination)
        radio_range = self._network.radio.nominal_range
        current = int(source)
        hops = [current]
        path_length = 0.0

        for _ in range(self._max_hops):
            true_pos = self._network.positions[current]
            if float(np.hypot(*(true_pos - dest))) <= radio_range:
                return RouteResult(delivered=True, hops=hops, path_length=path_length)

            neighbors = self._index.neighbors_of_node(current)
            if neighbors.size == 0:
                break
            believed_current = self._believed[current]
            current_dist = float(np.hypot(*(believed_current - dest)))
            neighbor_believed = self._believed[neighbors]
            dists = np.hypot(
                neighbor_believed[:, 0] - dest[0], neighbor_believed[:, 1] - dest[1]
            )
            best = int(np.argmin(dists))
            if dists[best] >= current_dist:
                break  # no neighbour believed closer: greedy forwarding is stuck
            next_hop = int(neighbors[best])
            path_length += float(
                np.hypot(*(self._network.positions[next_hop] - true_pos))
            )
            current = next_hop
            hops.append(current)

        return RouteResult(delivered=False, hops=hops, path_length=path_length)


def evaluate_routing(
    network: SensorNetwork,
    believed_positions: np.ndarray,
    flows: Sequence[tuple[int, np.ndarray]],
    *,
    max_hops: int = 256,
) -> RoutingStats:
    """Route every ``(source, destination)`` flow and aggregate statistics."""
    router = GreedyGeographicRouter(
        network, believed_positions, max_hops=max_hops
    )
    stats = RoutingStats()
    for source, destination in flows:
        stats.record(router.route(int(source), destination))
    return stats
