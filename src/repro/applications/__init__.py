"""Motivating applications built on top of sensor locations.

The paper's introduction motivates localization security with geographic
routing and battlefield-surveillance reporting; these modules implement
simplified but functional versions of those applications so that the
example scripts can quantify the *application-level* damage of localization
anomalies and the benefit of filtering them out with LAD.
"""

from repro.applications.routing import (
    GreedyGeographicRouter,
    RoutingStats,
    evaluate_routing,
)
from repro.applications.surveillance import (
    SurveillanceField,
    EventReport,
    ReportingStats,
)
from repro.applications.coverage import coverage_fraction, coverage_map

__all__ = [
    "GreedyGeographicRouter",
    "RoutingStats",
    "evaluate_routing",
    "SurveillanceField",
    "EventReport",
    "ReportingStats",
    "coverage_fraction",
    "coverage_map",
]
