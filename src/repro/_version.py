"""Version information for the LAD reproduction package."""

__version__ = "1.0.0"

#: Short identifier of the paper that this package reproduces.
PAPER = (
    "Du, Fang, Ning. LAD: Localization Anomaly Detection for "
    "Wireless Sensor Networks. 2005."
)
