"""The beaconless localization scheme (Fang, Du, Ning, INFOCOM 2005).

This is the localization scheme the paper pairs LAD with (Section 7.2).  A
node estimates its own location *without any beacon* by treating its
observation vector — the per-group neighbour counts — as evidence about
where it landed: the number of neighbours seen from group ``i`` is
(approximately) ``Binomial(m, g_i(θ))`` when the node sits at ``θ``, so the
maximum-likelihood estimate is

.. math::

    L_e = \\arg\\max_{\\theta} \\sum_i \\log \\mathrm{Binom}(o_i; m, g_i(\\theta)).

The implementation runs a coarse-to-fine grid search:

1. an initial guess is the observation-weighted centroid of the deployment
   points (cheap and already close for benign observations);
2. the coarse level scores the lattice points of a *shared* region-wide grid
   (spacing ``coarse_step``, anchored at the region origin) that fall inside
   a ``search_margin`` window around the initial guess;
3. the grid is repeatedly refined around the best candidate until the cell
   size drops below ``resolution``.

Because the likelihood surface is smooth at the scale of the deployment-grid
spacing, this converges to the global optimum for all practical observation
vectors while costing only a few thousand ``g(z)`` table lookups.

Batched pipeline
----------------

The paper's entire evaluation reduces to localizing thousands of
observations against one shared :class:`DeploymentKnowledge`, so
:meth:`BeaconlessLocalizer.localize_observations` runs all rows through a
vectorised engine instead of a Python-level loop:

* because the coarse lattice is anchored at the region origin, every row
  draws its coarse candidates from the *same* global lattice.  One
  ``(k, candidates, n_groups)`` kernel —
  :meth:`DeploymentKnowledge.log_likelihood_batch` — therefore evaluates the
  lattice once and scores all ``k`` rows against it as two matrix products;
  each row then picks its best candidate inside its own search window;
* the refinement levels run in lock-step (the step schedule is
  row-independent): per-row sub-grids are concatenated and scored by one
  flat :meth:`DeploymentKnowledge.log_likelihood_segmented` call, followed
  by per-row best-candidate gathers;
* duplicate observation rows are localized once (all-zero rows — whose
  likelihood surface is symmetric and therefore full of exact ties — are
  routed through the per-row reference search so tie-breaking cannot be
  perturbed by kernel rounding).

The per-row :meth:`_search` is kept as the reference implementation.  The
batched kernels agree with it up to floating-point rounding (matrix
products and the fast table lookup accumulate differently), which leaves
the per-row argmax — and therefore the estimates — unchanged whenever
candidate likelihoods are separated by more than accumulated rounding;
distinct grid candidates of real observation vectors are separated by many
orders of magnitude more.  The equivalence tests and the
``benchmarks/test_bench_batch_pipeline.py`` speedup benchmark pin down
exact estimate equality on seeded networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deployment.knowledge import DeploymentKnowledge
from repro.localization.base import (
    LOCALIZERS,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
)
from repro.types import Region
from repro.utils.validation import check_positive

__all__ = ["BeaconlessLocalizer"]


@LOCALIZERS.register("beaconless_mle", "mle", name="beaconless")
@dataclass
class BeaconlessLocalizer(LocalizationScheme):
    """Maximum-likelihood beaconless localization from group observations.

    Parameters
    ----------
    search_margin:
        Half-width (metres) of the coarse search window centred on the
        observation-weighted centroid of the deployment points.  The default
        of 250 m comfortably covers the deployment-grid spacing (100 m) plus
        the landing spread (σ = 50 m).
    coarse_step:
        Grid spacing of the first search level, metres.  Coarse candidates
        lie on a region-wide lattice with this spacing so that batched
        localization can share their likelihood evaluation across rows.
    resolution:
        Target grid spacing of the final refinement level, metres.  The
        reported estimate is accurate to about this value.
    refine_factor:
        Each refinement level shrinks the grid spacing by this factor.
    coarse_tiers:
        Number of coarse-search tiers.  The default ``1`` scores every
        in-window lattice point densely (the bit-exact historical path).
        ``2`` first scores a ``tier_stride``-subsampled lattice and then
        only the full-lattice points near each row's tier-1 winner,
        cutting the dense group-dimension matmul by ``tier_stride**2`` at
        very large regions; the likelihood surface is smooth at the
        lattice scale, so the same coarse winner emerges for real
        observation vectors (asserted on seeded networks), but the
        two-tier result is not defined to be bit-identical — schemes
        with ``coarse_tiers != 1`` therefore carry a distinct ``repr``
        (and hence distinct artifact-cache keys).
    tier_stride:
        Subsampling stride of the tier-1 lattice when ``coarse_tiers``
        is ``2``.
    """

    search_margin: float = 250.0
    coarse_step: float = 25.0
    resolution: float = 2.0
    refine_factor: float = 5.0
    coarse_tiers: int = 1
    tier_stride: int = 4

    name: str = "beaconless-mle"
    modalities = ("observation",)

    def __post_init__(self) -> None:
        check_positive("search_margin", self.search_margin)
        check_positive("coarse_step", self.coarse_step)
        check_positive("resolution", self.resolution)
        if self.refine_factor <= 1.0:
            raise ValueError("refine_factor must be > 1")
        if self.coarse_step > 2 * self.search_margin:
            raise ValueError("coarse_step must not exceed the search window")
        if self.coarse_tiers not in (1, 2):
            raise ValueError("coarse_tiers must be 1 (dense) or 2 (hierarchical)")
        if self.tier_stride < 2:
            raise ValueError("tier_stride must be at least 2")

    def __repr__(self) -> str:
        # The repr feeds artifact-cache fingerprints, so the hierarchical
        # fields appear only when they can change results: the default
        # one-tier form stays byte-identical to the historical repr and
        # keeps hitting pre-existing cache entries.
        extra = ""
        if self.coarse_tiers != 1:
            extra = (
                f", coarse_tiers={self.coarse_tiers!r}"
                f", tier_stride={self.tier_stride!r}"
            )
        return (
            f"{type(self).__name__}(search_margin={self.search_margin!r}, "
            f"coarse_step={self.coarse_step!r}, resolution={self.resolution!r}, "
            f"refine_factor={self.refine_factor!r}, name={self.name!r}{extra})"
        )

    # -- public API ----------------------------------------------------------

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        if context.observation is None or context.knowledge is None:
            raise ValueError(
                "the beaconless scheme needs both an observation and "
                "deployment knowledge"
            )
        position, loglik, iterations = self._search(
            context.knowledge, np.asarray(context.observation, dtype=np.float64)
        )
        return LocalizationResult(
            position=position,
            converged=True,
            iterations=iterations,
            log_likelihood=loglik,
        )

    def localize_observations(
        self,
        knowledge: DeploymentKnowledge,
        observations: np.ndarray,
        *,
        batched: bool = True,
        prune: bool = True,
    ) -> np.ndarray:
        """Batch entry point: estimate one location per observation row.

        Parameters
        ----------
        knowledge:
            Shared deployment knowledge.
        observations:
            Array of shape ``(k, n_groups)``.
        batched:
            When ``True`` (default) all rows are localized by the vectorised
            engine (shared coarse lattice + lock-step refinement); when
            ``False`` each row runs the per-row reference :meth:`_search`.
            Both paths produce the same estimates.
        prune:
            When ``True`` (default) the refinement levels score only each
            row's active group set (groups within the knowledge's support
            radius of the row's search window, plus observed groups); the
            skipped likelihood terms are exact zeros, so the estimates are
            unchanged.  Dense deployments whose active sets cover most
            groups fall back to the dense kernels automatically.

        Returns
        -------
        Array of shape ``(k, 2)`` with the estimated locations.
        """
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim == 1:
            observations = observations[None, :]
        if not batched:
            out = np.empty((observations.shape[0], 2), dtype=np.float64)
            for row, obs in enumerate(observations):
                out[row], _, _ = self._search(knowledge, obs)
            return out
        return self._search_batch(knowledge, observations, prune=prune)

    # -- candidate grids -----------------------------------------------------

    @staticmethod
    def initial_guess(
        knowledge: DeploymentKnowledge,
        observation: np.ndarray,
    ) -> np.ndarray:
        """Observation-weighted centroid of the deployment points.

        When the node heard nobody the centre of the region is returned.
        """
        weights = np.clip(np.asarray(observation, dtype=np.float64), 0.0, None)
        total = weights.sum()
        if total <= 0:
            return knowledge.region.center
        return (weights[:, None] * knowledge.deployment_points).sum(axis=0) / total

    def _coarse_lattice(self, region: Region) -> tuple[np.ndarray, np.ndarray]:
        """Axes of the region-wide coarse lattice shared by all searches."""
        step = self.coarse_step

        def axis(lo: float, hi: float) -> np.ndarray:
            values = np.arange(lo, hi + step / 2, step)
            values = values[values <= hi]
            if values.size == 0 or values[-1] < hi:
                values = np.append(values, hi)
            return values

        return axis(region.x_min, region.x_max), axis(region.y_min, region.y_max)

    def _axis_window(self, axis: np.ndarray, center: float) -> np.ndarray:
        """Lattice values within ``search_margin`` of *center* (never empty)."""
        window = axis[
            (axis >= center - self.search_margin)
            & (axis <= center + self.search_margin)
        ]
        if window.size == 0:  # pragma: no cover - needs margin < step / 2
            window = axis[[int(np.argmin(np.abs(axis - center)))]]
        return window

    @staticmethod
    def _grid_from_axes(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Candidate points of an axis-aligned grid, y-major / x-minor order."""
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def _candidate_grid(
        self, center: np.ndarray, half_width: float, step: float, region: Region
    ) -> np.ndarray:
        """Axis-aligned candidate grid clipped to the deployment region."""
        xs = np.arange(center[0] - half_width, center[0] + half_width + step / 2, step)
        ys = np.arange(center[1] - half_width, center[1] + half_width + step / 2, step)
        xs = np.unique(np.clip(xs, region.x_min, region.x_max))
        ys = np.unique(np.clip(ys, region.y_min, region.y_max))
        return self._grid_from_axes(xs, ys)

    def _candidate_grids_batch(
        self, centers: np.ndarray, half_width: float, step: float, region: Region
    ) -> list[np.ndarray]:
        """Per-row refinement grids, built without a per-row numpy cascade.

        Interior rows all share the same grid shape and offset arithmetic
        (``np.arange`` fills ``start + i · step`` element by element, which
        broadcasting reproduces exactly), so their grids come from one
        vectorised construction.  Rows whose window crosses the region
        boundary — where clipping merges candidates — fall back to
        :meth:`_candidate_grid`; both constructions enumerate candidates in
        the same y-major order.
        """
        k = centers.shape[0]
        offsets = np.arange(
            np.ceil((2 * half_width + step / 2) / step).astype(np.int64)
        ) * step
        xs = centers[:, 0][:, None] - half_width + offsets[None, :]
        ys = centers[:, 1][:, None] - half_width + offsets[None, :]
        np.clip(xs, region.x_min, region.x_max, out=xs)
        np.clip(ys, region.y_min, region.y_max, out=ys)
        clean = (
            np.all(np.diff(xs, axis=1) > 0, axis=1)
            & np.all(np.diff(ys, axis=1) > 0, axis=1)
        )
        n = offsets.size
        grid_x = np.broadcast_to(xs[:, None, :], (k, n, n))
        grid_y = np.broadcast_to(ys[:, :, None], (k, n, n))
        stacked = np.stack([grid_x, grid_y], axis=-1).reshape(k, n * n, 2)
        return [
            stacked[row]
            if clean[row]
            else self._candidate_grid(centers[row], half_width, step, region)
            for row in range(k)
        ]

    # -- per-row reference search --------------------------------------------

    def _search(
        self, knowledge: DeploymentKnowledge, observation: np.ndarray
    ) -> tuple[np.ndarray, float, int]:
        """Coarse-to-fine grid search for a single observation.

        This is the reference implementation the batched engine must agree
        with; both evaluate the same candidate sets in the same order.
        """
        region = knowledge.region
        center = self.initial_guess(knowledge, observation)
        xs_full, ys_full = self._coarse_lattice(region)
        candidates = self._grid_from_axes(
            self._axis_window(xs_full, center[0]),
            self._axis_window(ys_full, center[1]),
        )
        step = self.coarse_step
        best = center
        best_ll = -np.inf
        iterations = 0

        while True:
            iterations += 1
            lls = knowledge.log_likelihood(candidates, observation)
            idx = int(np.argmax(lls))
            if lls[idx] > best_ll:
                best_ll = float(lls[idx])
                best = candidates[idx]
            if step <= self.resolution:
                break
            half_width = step  # next level only needs to cover one cell
            step = max(step / self.refine_factor, self.resolution)
            candidates = self._candidate_grid(best, half_width, step, region)

        return np.asarray(best, dtype=np.float64), best_ll, iterations

    # -- batched engine ------------------------------------------------------

    def _search_batch(
        self,
        knowledge: DeploymentKnowledge,
        observations: np.ndarray,
        *,
        prune: bool = True,
    ) -> np.ndarray:
        """Localize every observation row through the vectorised engine.

        Duplicate rows are localized once; all-zero (and non-positive) rows
        are delegated to the per-row reference because their symmetric
        likelihood surface is decided by exact floating-point ties that only
        the reference's evaluation order reproduces.
        """
        unique, inverse = np.unique(observations, axis=0, return_inverse=True)
        estimates = np.empty((unique.shape[0], 2), dtype=np.float64)

        degenerate = unique.sum(axis=1) <= 0
        for row in np.flatnonzero(degenerate):
            estimates[row], _, _ = self._search(knowledge, unique[row])
        regular = np.flatnonzero(~degenerate)
        if regular.size:
            estimates[regular] = self._batch_core(
                knowledge, unique[regular], prune=prune
            )
        return estimates[np.asarray(inverse).ravel()]

    def _batch_core(
        self,
        knowledge: DeploymentKnowledge,
        observations: np.ndarray,
        *,
        prune: bool = True,
    ) -> np.ndarray:
        """Shared-lattice coarse scoring + lock-step refinement for all rows.

        The coarse level stays dense in the group dimension (its lattice is
        shared by all rows, so the matmul kernel amortises it); the
        refinement levels thread each row's active group set — groups within
        the support radius of the row's search window — through the
        segmented kernel, which skips the ``(candidate, group)`` pairs whose
        likelihood terms are exact zeros.
        """
        region = knowledge.region
        k = observations.shape[0]
        backend = knowledge.backend
        prune = prune and np.isfinite(knowledge.support_radius)

        # Vectorised initial guesses: the observation-weighted centroids of
        # the deployment points (every row has a positive weight total here;
        # non-positive rows were routed to the reference search).
        weights = np.clip(observations, 0.0, None)
        centers = weights @ knowledge.deployment_points
        centers /= weights.sum(axis=1)[:, None]

        # Coarse level: one (k, candidates) kernel over the shared lattice,
        # then per-row argmax restricted to each row's search window.  The
        # lattice stays dense in the group dimension, but lattice points
        # inside no row's window are dropped up front: every kernel entry is
        # an independent dot product, so the surviving columns are bitwise
        # unchanged and the per-row argmax (which masks out-of-window
        # candidates to -inf anyway) picks the same winner.
        xs_full, ys_full = self._coarse_lattice(region)
        lattice = self._grid_from_axes(xs_full, ys_full)
        margin = self.search_margin
        in_window = (
            (lattice[None, :, 0] >= centers[:, 0, None] - margin)
            & (lattice[None, :, 0] <= centers[:, 0, None] + margin)
            & (lattice[None, :, 1] >= centers[:, 1, None] - margin)
            & (lattice[None, :, 1] <= centers[:, 1, None] + margin)
        )
        covered = in_window.any(axis=0)
        if not covered.all():
            lattice = lattice[covered]
            in_window = in_window[:, covered]
        if self.coarse_tiers == 2:
            coarse_pos, values = self._coarse_hierarchical(
                knowledge, lattice, in_window, observations, prune=prune
            )
        else:
            lls = knowledge.log_likelihood_batch(lattice, observations)
            lls = np.where(in_window, lls, -np.inf)
            idx, values = backend.rowwise_argmax(lls)
            coarse_pos = lattice[idx]

        best = centers.copy()
        best_ll = np.full(k, -np.inf)
        update = values > best_ll
        best[update] = coarse_pos[update]
        best_ll[update] = values[update]

        # Refinement levels in lock-step: the step schedule is shared, the
        # per-row sub-grids are concatenated into one segmented kernel call
        # followed by one segmented argmax (same first-max winner per row
        # as the historical per-row argmax loop, without the Python pass).
        step = self.coarse_step
        while step > self.resolution:
            half_width = step
            step = max(step / self.refine_factor, self.resolution)
            grids = self._candidate_grids_batch(best, half_width, step, region)
            counts = np.array([grid.shape[0] for grid in grids], dtype=np.int64)
            active = None
            if prune:
                # Candidates lie within the (clipped) square of half-width
                # ``half_width`` around each row's current best, so a ball of
                # ``support + half_width * sqrt(2)`` around the centre covers
                # every group any candidate of the row could interact with.
                reach = knowledge.support_radius + half_width * np.sqrt(2.0)
                active = knowledge.active_groups(best, radius=reach)
            stacked = np.vstack(grids)
            flat = knowledge.log_likelihood_segmented(
                stacked, observations, counts, active=active
            )
            seg_idx, seg_best = backend.segment_argmax(flat, counts)
            update = seg_best > best_ll
            best_ll[update] = seg_best[update]
            best[update] = stacked[seg_idx[update]]

        return best

    def _coarse_hierarchical(
        self,
        knowledge: DeploymentKnowledge,
        lattice: np.ndarray,
        in_window: np.ndarray,
        observations: np.ndarray,
        *,
        prune: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Two-tier coarse search over the shared lattice.

        Tier 1 scores a ``tier_stride``-subsampled lattice with the dense
        matmul kernel; tier 2 re-scores only the full-lattice points within
        one tier-1 cell (Chebyshev radius ``tier_stride * coarse_step``) of
        each row's tier-1 winner through the segmented kernel.  Every row's
        tier-1 winner is itself a full-lattice in-window point, so tier-2
        candidate sets are never empty and the returned value never falls
        below the tier-1 score.

        Returns ``(positions, values)``: the per-row coarse winner and its
        log-likelihood.
        """
        backend = knowledge.backend
        k = observations.shape[0]
        stride = int(self.tier_stride)

        # Tier 1: stride-subsample the surviving lattice spatially (unique
        # axis values, every stride-th coordinate in each dimension).
        xs = np.unique(lattice[:, 0])
        ys = np.unique(lattice[:, 1])
        sub_x = np.isin(lattice[:, 0], xs[::stride])
        sub_y = np.isin(lattice[:, 1], ys[::stride])
        sub = sub_x & sub_y
        # Keep each row's window non-empty at tier 1: rows whose window
        # misses every subsampled point fall back to their full window.
        window_sub = in_window[:, sub]
        empty = ~window_sub.any(axis=1)
        if np.any(empty):  # pragma: no cover - needs margin < stride * step
            sub = np.ones(lattice.shape[0], dtype=bool)
            window_sub = in_window
        lls1 = knowledge.log_likelihood_batch(lattice[sub], observations)
        lls1 = np.where(window_sub, lls1, -np.inf)
        idx1, _ = backend.rowwise_argmax(lls1)
        winners = lattice[sub][idx1]

        # Tier 2: full-lattice points inside the row window and within one
        # tier-1 cell of the winner, scored through the segmented kernel.
        reach = stride * self.coarse_step
        near = (
            in_window
            & (np.abs(lattice[None, :, 0] - winners[:, 0, None]) <= reach)
            & (np.abs(lattice[None, :, 1] - winners[:, 1, None]) <= reach)
        )
        grids = [lattice[near[row]] for row in range(k)]
        counts = np.array([grid.shape[0] for grid in grids], dtype=np.int64)
        active = None
        if prune:
            active = knowledge.active_groups(
                winners, radius=knowledge.support_radius + reach * np.sqrt(2.0)
            )
        stacked = np.vstack(grids)
        flat = knowledge.log_likelihood_segmented(
            stacked, observations, counts, active=active
        )
        idx2, values = backend.segment_argmax(flat, counts)
        return stacked[idx2], values
