"""The beaconless localization scheme (Fang, Du, Ning, INFOCOM 2005).

This is the localization scheme the paper pairs LAD with (Section 7.2).  A
node estimates its own location *without any beacon* by treating its
observation vector — the per-group neighbour counts — as evidence about
where it landed: the number of neighbours seen from group ``i`` is
(approximately) ``Binomial(m, g_i(θ))`` when the node sits at ``θ``, so the
maximum-likelihood estimate is

.. math::

    L_e = \\arg\\max_{\\theta} \\sum_i \\log \\mathrm{Binom}(o_i; m, g_i(\\theta)).

The implementation runs a coarse-to-fine grid search:

1. an initial guess is the observation-weighted centroid of the deployment
   points (cheap and already close for benign observations);
2. a coarse grid around the initial guess (and, optionally, around the most
   observed deployment points) is scored in a single vectorised
   log-likelihood evaluation;
3. the grid is repeatedly refined around the best candidate until the cell
   size drops below ``resolution``.

Because the likelihood surface is smooth at the scale of the deployment-grid
spacing, this converges to the global optimum for all practical observation
vectors while costing only a few thousand ``g(z)`` table lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.deployment.knowledge import DeploymentKnowledge
from repro.localization.base import (
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
)
from repro.types import Region
from repro.utils.validation import check_int, check_positive

__all__ = ["BeaconlessLocalizer"]


@dataclass
class BeaconlessLocalizer(LocalizationScheme):
    """Maximum-likelihood beaconless localization from group observations.

    Parameters
    ----------
    search_margin:
        Half-width (metres) of the initial search window centred on the
        observation-weighted centroid of the deployment points.  The default
        of 250 m comfortably covers the deployment-grid spacing (100 m) plus
        the landing spread (σ = 50 m).
    coarse_step:
        Grid spacing of the first search level, metres.
    resolution:
        Target grid spacing of the final refinement level, metres.  The
        reported estimate is accurate to about this value.
    refine_factor:
        Each refinement level shrinks the grid spacing by this factor.
    """

    search_margin: float = 250.0
    coarse_step: float = 25.0
    resolution: float = 2.0
    refine_factor: float = 5.0

    name: str = "beaconless-mle"

    def __post_init__(self) -> None:
        check_positive("search_margin", self.search_margin)
        check_positive("coarse_step", self.coarse_step)
        check_positive("resolution", self.resolution)
        if self.refine_factor <= 1.0:
            raise ValueError("refine_factor must be > 1")
        if self.coarse_step > 2 * self.search_margin:
            raise ValueError("coarse_step must not exceed the search window")

    # -- public API ----------------------------------------------------------

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        if context.observation is None or context.knowledge is None:
            raise ValueError(
                "the beaconless scheme needs both an observation and "
                "deployment knowledge"
            )
        position, loglik, iterations = self._search(
            context.knowledge, np.asarray(context.observation, dtype=np.float64)
        )
        return LocalizationResult(
            position=position,
            converged=True,
            iterations=iterations,
            log_likelihood=loglik,
        )

    def localize_observations(
        self, knowledge: DeploymentKnowledge, observations: np.ndarray
    ) -> np.ndarray:
        """Batch entry point: estimate one location per observation row.

        Parameters
        ----------
        knowledge:
            Shared deployment knowledge.
        observations:
            Array of shape ``(k, n_groups)``.

        Returns
        -------
        Array of shape ``(k, 2)`` with the estimated locations.
        """
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim == 1:
            observations = observations[None, :]
        out = np.empty((observations.shape[0], 2), dtype=np.float64)
        for row, obs in enumerate(observations):
            out[row], _, _ = self._search(knowledge, obs)
        return out

    # -- internals -----------------------------------------------------------

    @staticmethod
    def initial_guess(knowledge: DeploymentKnowledge, observation: np.ndarray) -> np.ndarray:
        """Observation-weighted centroid of the deployment points.

        When the node heard nobody the centre of the region is returned.
        """
        weights = np.clip(np.asarray(observation, dtype=np.float64), 0.0, None)
        total = weights.sum()
        if total <= 0:
            return knowledge.region.center
        return (weights[:, None] * knowledge.deployment_points).sum(axis=0) / total

    def _candidate_grid(
        self, center: np.ndarray, half_width: float, step: float, region: Region
    ) -> np.ndarray:
        """Axis-aligned candidate grid clipped to the deployment region."""
        xs = np.arange(center[0] - half_width, center[0] + half_width + step / 2, step)
        ys = np.arange(center[1] - half_width, center[1] + half_width + step / 2, step)
        xs = np.clip(xs, region.x_min, region.x_max)
        ys = np.clip(ys, region.y_min, region.y_max)
        xs = np.unique(xs)
        ys = np.unique(ys)
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def _search(
        self, knowledge: DeploymentKnowledge, observation: np.ndarray
    ) -> tuple[np.ndarray, float, int]:
        region = knowledge.region
        center = self.initial_guess(knowledge, observation)
        half_width = self.search_margin
        step = self.coarse_step
        best = center
        best_ll = -np.inf
        iterations = 0

        while True:
            iterations += 1
            candidates = self._candidate_grid(best, half_width, step, region)
            lls = knowledge.log_likelihood(candidates, observation)
            idx = int(np.argmax(lls))
            if lls[idx] > best_ll:
                best_ll = float(lls[idx])
                best = candidates[idx]
            if step <= self.resolution:
                break
            half_width = step  # next level only needs to cover one coarse cell
            step = max(step / self.refine_factor, self.resolution)

        return np.asarray(best, dtype=np.float64), best_ll, iterations
